"""Ties the implementation back to the paper's formal model (Fig. 1).

Every counting query the engine answers corresponds to a 0/1 linear
query vector ``q`` over ``Tup`` with exact answer ``⟨q, n^I⟩``; the
summary's estimate is the model expectation of that inner product.
These tests keep the formal objects and the production code in sync.
"""

import numpy as np
import pytest

from repro.core.naive import NaivePolynomial
from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import solve_statistics
from repro.core.inference import InferenceEngine
from repro.data.frequency import frequency_vector
from repro.query.linear import LinearQuery
from repro.stats.predicates import Conjunction, RangePredicate, SetPredicate


@pytest.fixture(scope="module")
def model(request):
    import numpy as np

    from repro.data.domain import integer_domain
    from repro.data.relation import Relation
    from repro.data.schema import Schema
    from repro.stats.statistic import StatisticSet, range_statistic_2d

    schema = Schema(
        [integer_domain("A", 3), integer_domain("B", 4), integer_domain("C", 3)]
    )
    rng = np.random.default_rng(321)
    relation = Relation(
        schema,
        [rng.integers(0, 3, 300), rng.integers(0, 4, 300), rng.integers(0, 3, 300)],
    )
    masks = {
        "A": np.array([True, True, False]),
        "B": np.array([False, True, True, False]),
    }
    statistic = range_statistic_2d(
        schema, "A", (0, 1), "B", (1, 2), float(relation.count_where(masks))
    )
    statistic_set = StatisticSet.from_relation(relation, [statistic])
    poly = CompressedPolynomial(statistic_set)
    params, _ = solve_statistics(poly, max_iterations=150)
    engine = InferenceEngine(poly, params, statistic_set.total)
    return relation, statistic_set, poly, params, engine


PREDICATES = [
    {"A": RangePredicate.point(0)},
    {"B": RangePredicate(1, 2)},
    {"A": RangePredicate(0, 1), "C": SetPredicate([0, 2])},
    {"A": SetPredicate([0, 2]), "B": RangePredicate.point(3), "C": RangePredicate(1, 2)},
]


class TestLinearQueryCorrespondence:
    @pytest.mark.parametrize("spec", PREDICATES)
    def test_exact_answer_is_inner_product(self, model, spec):
        relation, *_ = model
        predicate = Conjunction(relation.schema, spec)
        query = LinearQuery.from_conjunction(relation.schema, predicate)
        direct = relation.count_where(predicate.attribute_masks())
        assert query.answer(relation) == direct
        assert np.dot(query.vector, frequency_vector(relation)) == direct

    @pytest.mark.parametrize("spec", PREDICATES)
    def test_estimate_is_model_expectation_of_q(self, model, spec):
        """``E[⟨q, I⟩] = n · Σ_t q_t p_t`` — the engine must equal the
        formal expectation computed from the tuple distribution."""
        relation, statistic_set, poly, params, engine = model
        predicate = Conjunction(relation.schema, spec)
        query = LinearQuery.from_conjunction(relation.schema, predicate)
        naive = NaivePolynomial(statistic_set)
        probabilities = naive.tuple_probabilities(params)
        formal = statistic_set.total * float(
            np.dot(query.vector, probabilities)
        )
        estimate = engine.estimate(predicate).expectation
        assert estimate == pytest.approx(formal, rel=1e-9, abs=1e-9)

    def test_sum_query_is_weighted_linear_query(self, model):
        """SUM(B) equals the linear query with coordinates b(t)."""
        relation, statistic_set, poly, params, engine = model
        naive = NaivePolynomial(statistic_set)
        weights_per_tuple = naive.tuple_indices[:, 1].astype(float)
        query = LinearQuery(relation.schema, weights_per_tuple)
        probabilities = naive.tuple_probabilities(params)
        formal = statistic_set.total * float(
            np.dot(query.vector, probabilities)
        )
        estimate = engine.sum_estimate(1, np.arange(4, dtype=float))
        assert estimate == pytest.approx(formal, rel=1e-9)

    def test_group_by_top_k_matches_paper_template(self, model):
        """The paper's 'GROUP BY A ORDER BY cnt DESC LIMIT k' equals
        per-group linear queries, sorted."""
        relation, statistic_set, poly, params, engine = model
        grouped = engine.group_by([0])
        linear_answers = {}
        for value in range(3):
            predicate = Conjunction(
                relation.schema, {"A": RangePredicate.point(value)}
            )
            query = LinearQuery.from_conjunction(relation.schema, predicate)
            naive = NaivePolynomial(statistic_set)
            linear_answers[value] = statistic_set.total * float(
                np.dot(query.vector, naive.tuple_probabilities(params))
            )
        for (value,), estimate in grouped.items():
            assert estimate.expectation == pytest.approx(
                linear_answers[value], rel=1e-9
            )
