"""Unit tests for the modified KD-tree (COMPOSITE heuristic)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BudgetError
from repro.stats.kdtree import best_split, composite_rectangles, region_sse


class TestRegionSSE:
    def test_uniform_region_zero(self):
        assert region_sse(np.full((4, 5), 7.0)) == 0.0

    def test_known_value(self):
        region = np.array([[0.0, 2.0]])  # mean 1, deviations 1 each
        assert region_sse(region) == pytest.approx(2.0)

    def test_empty(self):
        assert region_sse(np.empty((0, 3))) == 0.0


class TestBestSplit:
    def test_width_one_returns_none(self):
        assert best_split(np.array([[1.0, 2.0]]), axis=0) is None

    def test_paper_example_split(self):
        # Fig 2(a): counts where the first column differs from the rest;
        # the modified KD-tree splits after column 0 (min SSE), not at
        # the median.
        grid = np.array(
            [
                [2, 10, 10, 10],
                [1, 10, 10, 10],
                [1, 12, 10, 10],
            ],
            dtype=float,
        )
        offset, _ = best_split(grid, axis=1)
        assert offset == 0

    def test_split_minimizes_sse(self):
        rng = np.random.default_rng(3)
        grid = rng.random((6, 8)) * 10
        offset, combined = best_split(grid, axis=0)
        # brute-force check
        best = min(
            region_sse(grid[: cut + 1]) + region_sse(grid[cut + 1 :])
            for cut in range(5)
        )
        assert combined == pytest.approx(best)
        assert (
            region_sse(grid[: offset + 1]) + region_sse(grid[offset + 1 :])
            == pytest.approx(best)
        )

    def test_axis_one_equivalent_to_transpose(self):
        rng = np.random.default_rng(4)
        grid = rng.random((5, 7))
        assert best_split(grid, axis=1) == best_split(grid.T, axis=0)


class TestCompositeRectangles:
    def test_budget_one_returns_root(self):
        grid = np.arange(12, dtype=float).reshape(3, 4)
        leaves = composite_rectangles(grid, 1)
        assert len(leaves) == 1
        assert leaves[0].ranges == ((0, 2), (0, 3))

    def test_respects_budget(self):
        rng = np.random.default_rng(5)
        grid = rng.random((10, 12)) * 100
        for budget in (2, 5, 17, 50):
            leaves = composite_rectangles(grid, budget)
            assert len(leaves) <= budget

    def test_partition_covers_grid_exactly(self):
        rng = np.random.default_rng(6)
        grid = rng.integers(0, 50, size=(9, 11)).astype(float)
        leaves = composite_rectangles(grid, 20)
        cover = np.zeros_like(grid, dtype=int)
        for leaf in leaves:
            cover[leaf.a_lo : leaf.a_hi + 1, leaf.b_lo : leaf.b_hi + 1] += 1
        assert (cover == 1).all()

    def test_counts_match_data(self):
        rng = np.random.default_rng(7)
        grid = rng.integers(0, 50, size=(8, 8)).astype(float)
        leaves = composite_rectangles(grid, 12)
        for leaf in leaves:
            region = grid[leaf.a_lo : leaf.a_hi + 1, leaf.b_lo : leaf.b_hi + 1]
            assert leaf.count == pytest.approx(region.sum())
        assert sum(leaf.count for leaf in leaves) == pytest.approx(grid.sum())

    def test_uniform_grid_not_oversplit(self):
        grid = np.full((6, 6), 3.0)
        leaves = composite_rectangles(grid, 10)
        # Perfectly uniform regions gain nothing from splitting.
        assert len(leaves) == 1

    def test_full_budget_isolates_every_cell(self):
        rng = np.random.default_rng(8)
        grid = rng.random((4, 4)) * 10
        leaves = composite_rectangles(grid, 16)
        assert len(leaves) == 16
        assert all(leaf.num_cells() == 1 for leaf in leaves)

    def test_invalid_inputs(self):
        with pytest.raises(BudgetError):
            composite_rectangles(np.zeros((3, 3)), 0)
        with pytest.raises(BudgetError):
            composite_rectangles(np.zeros(5), 3)

    @given(
        st.integers(2, 8),
        st.integers(2, 8),
        st.integers(1, 30),
        st.integers(0, 2**31 - 1),
    )
    def test_partition_property(self, height, width, budget, seed):
        grid = np.random.default_rng(seed).integers(
            0, 20, size=(height, width)
        ).astype(float)
        leaves = composite_rectangles(grid, budget)
        assert 1 <= len(leaves) <= budget
        cover = np.zeros_like(grid, dtype=int)
        total = 0.0
        for leaf in leaves:
            cover[leaf.a_lo : leaf.a_hi + 1, leaf.b_lo : leaf.b_hi + 1] += 1
            total += leaf.count
        assert (cover == 1).all()
        assert total == pytest.approx(grid.sum())
