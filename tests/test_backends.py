"""Tests for the SummaryBackend adapter and ExactBackend."""

import numpy as np
import pytest

from repro.baselines.exact import ExactBackend
from repro.core.summary import EntropySummary
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.query.backends import SummaryBackend
from repro.stats.predicates import Conjunction, RangePredicate


@pytest.fixture
def relation():
    schema = Schema([Domain("s", ["u", "v"]), integer_domain("h", 3)])
    rng = np.random.default_rng(13)
    return Relation(
        schema,
        [rng.integers(0, 2, 200), rng.integers(0, 3, 200)],
    )


@pytest.fixture
def summary(relation):
    return EntropySummary.build(relation, max_iterations=50)


class TestSummaryBackend:
    def test_count(self, summary, relation):
        backend = SummaryBackend(summary)
        predicate = Conjunction(relation.schema, {"s": RangePredicate.point(0)})
        assert backend.count(predicate) == pytest.approx(
            relation.marginal("s")[0], abs=0.1
        )

    def test_rounded_mode(self, summary, relation):
        backend = SummaryBackend(summary, rounded=True)
        predicate = Conjunction(relation.schema, {"s": RangePredicate.point(0)})
        value = backend.count(predicate)
        assert value == int(value)

    def test_group_counts(self, summary, relation):
        backend = SummaryBackend(summary)
        grouped = backend.group_counts(["s"], None)
        assert set(grouped) == {("u",), ("v",)}
        assert sum(grouped.values()) == pytest.approx(relation.num_rows, rel=1e-6)

    def test_group_counts_rounded(self, summary):
        backend = SummaryBackend(summary, rounded=True)
        grouped = backend.group_counts(["h"], None)
        assert all(value == int(value) for value in grouped.values())


class TestExactBackend:
    def test_count(self, relation):
        backend = ExactBackend(relation)
        predicate = Conjunction(relation.schema, {"h": RangePredicate(0, 1)})
        assert backend.count(predicate) == relation.count_where(
            predicate.attribute_masks()
        )

    def test_group_counts_only_existing(self, relation):
        backend = ExactBackend(relation)
        grouped = backend.group_counts(["s", "h"], None)
        assert sum(grouped.values()) == relation.num_rows
        assert all(count > 0 for count in grouped.values())

    def test_group_counts_with_predicate(self, relation):
        backend = ExactBackend(relation)
        predicate = Conjunction(relation.schema, {"s": RangePredicate.point(1)})
        grouped = backend.group_counts(["h"], predicate)
        assert sum(grouped.values()) == relation.marginal("s")[1]
