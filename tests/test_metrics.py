"""Tests for evaluation metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.evaluation.metrics import (
    f_measure,
    mean_relative_error,
    precision_recall,
    relative_error,
)


class TestRelativeError:
    def test_exact_estimate(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_both_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_truth_positive_estimate(self):
        assert relative_error(0.0, 5.0) == 1.0

    def test_positive_truth_zero_estimate(self):
        assert relative_error(7.0, 0.0) == 1.0

    def test_known_value(self):
        # |10-30|/(10+30) = 0.5
        assert relative_error(10.0, 30.0) == pytest.approx(0.5)

    def test_negative_estimates_clamped(self):
        assert relative_error(5.0, -2.0) == 1.0

    def test_negative_truth_rejected(self):
        with pytest.raises(ReproError):
            relative_error(-1.0, 2.0)

    @given(
        st.floats(0, 1e6, allow_nan=False),
        st.floats(0, 1e6, allow_nan=False),
    )
    def test_bounded_and_symmetric(self, true, est):
        error = relative_error(true, est)
        assert 0.0 <= error <= 1.0
        assert error == pytest.approx(relative_error(est, true))


class TestMeanRelativeError:
    def test_average(self):
        assert mean_relative_error([10, 0], [10, 5]) == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            mean_relative_error([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ReproError):
            mean_relative_error([], [])


class TestFMeasure:
    def test_perfect_discrimination(self):
        # All light hitters estimated positive, all nulls zero.
        assert f_measure([1.0, 2.0, 3.0], [0.0, 0.0]) == 1.0

    def test_rounding_threshold(self):
        # 0.4 rounds to 0 -> missed light hitter.
        light = [0.4, 2.0]
        precision, recall = precision_recall(light, [0.0])
        assert recall == 0.5
        assert precision == 1.0

    def test_false_positives_hurt_precision(self):
        light = [1.0, 1.0]
        null = [1.0, 1.0]  # both nulls estimated positive
        precision, recall = precision_recall(light, null)
        assert precision == 0.5
        assert recall == 1.0
        assert f_measure(light, null) == pytest.approx(2 * 0.5 / 1.5)

    def test_all_zero_estimates(self):
        assert f_measure([0.0, 0.0], [0.0]) == 0.0

    def test_requires_light_hitters(self):
        with pytest.raises(ReproError):
            f_measure([], [1.0])

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20),
        st.lists(st.floats(0, 100, allow_nan=False), max_size=20),
    )
    def test_bounds(self, light, null):
        value = f_measure(light, null)
        assert 0.0 <= value <= 1.0
