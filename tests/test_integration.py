"""End-to-end integration tests: data → statistics → model → SQL.

These exercise the full pipeline the way the examples and benchmarks
do, including the paper's headline behaviours on small instances.
"""

import numpy as np
import pytest

from repro.baselines.exact import ExactBackend
from repro.baselines.uniform import uniform_sample
from repro.core.summary import EntropySummary
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.evaluation.metrics import f_measure
from repro.query.backends import SummaryBackend
from repro.query.engine import SQLEngine
from repro.workloads.selection_queries import light_hitters, nonexistent_values


@pytest.fixture(scope="module")
def relation():
    """Correlated, skewed data: s determines the likely range of d."""
    schema = Schema(
        [
            Domain("s", ["a", "b", "c", "d"]),
            integer_domain("d", 8),
            integer_domain("u", 3),  # uniform, uncorrelated
        ]
    )
    rng = np.random.default_rng(99)
    num_rows = 3000
    s = rng.choice(4, size=num_rows, p=[0.55, 0.3, 0.12, 0.03])
    d = np.clip(s * 2 + rng.integers(0, 3, num_rows), 0, 7)
    u = rng.integers(0, 3, num_rows)
    return Relation(schema, [s, d, u])


class TestFullyDeterminedModel:
    """When statistics pin down every 2D cell of the correlated pair,
    the model reproduces the exact (s, d) joint distribution."""

    def test_point_queries_exact(self, relation):
        summary = EntropySummary.build(
            relation,
            pairs=[("s", "d")],
            per_pair_budget=32,  # every (s, d) cell gets a statistic
            max_iterations=100,
        )
        truth = relation.contingency("s", "d")
        for s_value in range(4):
            for d_value in range(8):
                estimate = summary.engine.point_estimate(
                    {"s": s_value, "d": d_value}
                )
                assert estimate.expectation == pytest.approx(
                    truth[s_value, d_value], abs=0.51
                )


class TestCorrelationCorrection:
    """2D statistics must beat the independence (No2D) model on
    correlated point queries — the core EntropyDB value proposition."""

    def test_2d_summary_beats_no2d(self, relation):
        no2d = EntropySummary.build(relation, max_iterations=60)
        with2d = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=16, max_iterations=60
        )
        truth = relation.contingency("s", "d")
        errors = {"no2d": 0.0, "with2d": 0.0}
        for summary, key in ((no2d, "no2d"), (with2d, "with2d")):
            for s_value in range(4):
                for d_value in range(8):
                    estimate = summary.engine.point_estimate(
                        {"s": s_value, "d": d_value}
                    ).expectation
                    errors[key] += abs(estimate - truth[s_value, d_value])
        assert errors["with2d"] < 0.5 * errors["no2d"]

    def test_uniform_attribute_needs_no_statistics(self, relation):
        summary = EntropySummary.build(relation, max_iterations=60)
        truth = relation.contingency("s", "u")
        worst = 0.0
        for s_value in range(4):
            for u_value in range(3):
                estimate = summary.engine.point_estimate(
                    {"s": s_value, "u": u_value}
                ).expectation
                worst = max(
                    worst,
                    abs(estimate - truth[s_value, u_value])
                    / max(truth[s_value, u_value], 1),
                )
        # Independence is the right model here; errors stay moderate.
        assert worst < 0.35


class TestSQLAgainstExact:
    def test_sql_pipeline(self, relation):
        summary = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=16, max_iterations=60
        )
        approx = SQLEngine(SummaryBackend(summary), table_name="flights")
        exact = SQLEngine(ExactBackend(relation), table_name="flights")
        queries = [
            "SELECT COUNT(*) FROM flights WHERE s = 'a'",
            "SELECT COUNT(*) FROM flights WHERE s = 'b' AND d BETWEEN 2 AND 4",
            "SELECT COUNT(*) FROM flights WHERE d >= 6",
            "SELECT COUNT(*) FROM flights WHERE s IN ('c', 'd') AND u = 1",
        ]
        for sql in queries:
            estimate = approx.count(sql)
            truth = exact.count(sql)
            assert estimate == pytest.approx(truth, rel=0.2, abs=10)

    def test_group_by_top_k(self, relation):
        summary = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=16, max_iterations=60
        )
        engine = SQLEngine(SummaryBackend(summary), table_name="flights")
        result = engine.execute(
            "SELECT s, COUNT(*) AS cnt FROM flights GROUP BY s "
            "ORDER BY cnt DESC LIMIT 2"
        )
        # The two most popular s values in the data are 'a' then 'b'.
        assert [row.labels[0] for row in result.rows] == ["a", "b"]


class TestRareVersusNonexistent:
    """The paper's headline: summaries distinguish rare from missing
    better than a small uniform sample."""

    def test_f_measure_beats_uniform_sample(self, relation):
        summary = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=32, max_iterations=100
        )
        backend = SummaryBackend(summary, rounded=True)
        sample = uniform_sample(relation, fraction=0.02, seed=1)
        light = light_hitters(relation, ["s", "d"], 5)
        null = nonexistent_values(relation, ["s", "d"], 8, seed=2)
        schema = relation.schema

        def score(method):
            light_est = [
                float(method.count(q.conjunction(schema))) for q in light
            ]
            null_est = [
                float(method.count(q.conjunction(schema))) for q in null
            ]
            return f_measure(light_est, null_est)

        assert score(backend) > score(sample)


class TestPersistenceEndToEnd:
    def test_save_load_same_sql_answers(self, relation, tmp_path):
        summary = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=8, max_iterations=40
        )
        summary.save(tmp_path / "model")
        loaded = EntropySummary.load(tmp_path / "model")
        sql = "SELECT COUNT(*) FROM R WHERE s = 'b' AND d = 3"
        original = SQLEngine(SummaryBackend(summary)).count(sql)
        restored = SQLEngine(SummaryBackend(loaded)).count(sql)
        assert restored == pytest.approx(original, rel=1e-12)


class TestModelInvariants:
    def test_group_by_partitions_total(self, relation):
        summary = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=8, max_iterations=40
        )
        for attrs in (["s"], ["d"], ["s", "u"]):
            grouped = summary.group_by(attrs)
            assert sum(e.expectation for e in grouped.values()) == pytest.approx(
                relation.num_rows, rel=1e-9
            )

    def test_estimates_never_negative(self, relation, rng):
        summary = EntropySummary.build(
            relation, pairs=[("s", "d")], per_pair_budget=8, max_iterations=40
        )
        from repro.stats.predicates import Conjunction, RangePredicate

        for _ in range(30):
            masks = {}
            for pos, size in enumerate(relation.schema.sizes()):
                if rng.random() < 0.5:
                    low = int(rng.integers(0, size))
                    high = int(rng.integers(low, size))
                    masks[pos] = RangePredicate(low, min(high, size - 1))
            predicate = Conjunction(relation.schema, masks)
            estimate = summary.count(predicate)
            assert estimate.expectation >= 0.0
            assert 0.0 <= estimate.probability <= 1.0
