"""Tests for the evaluation harness and reporting utilities."""

import numpy as np
import pytest

from repro.baselines.exact import ExactBackend
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.evaluation.harness import (
    error_difference_table,
    f_measure_over,
    predicate_for_labels,
    run_methods,
    run_workload,
)
from repro.evaluation.reporting import (
    ExperimentResult,
    ascii_table,
    markdown_table,
)
from repro.workloads.selection_queries import (
    heavy_hitters,
    light_hitters,
    nonexistent_values,
)


@pytest.fixture
def relation():
    schema = Schema([integer_domain("a", 5), integer_domain("b", 5)])
    rng = np.random.default_rng(21)
    cells = [(0, 0)] * 60 + [(1, 1)] * 30 + [(2, 2)] * 8 + [(3, 3)] * 2
    rng.shuffle(cells)
    return Relation.from_rows(schema, cells)


class _HalfBackend:
    """Backend answering exactly half the truth — known error 1/3."""

    def __init__(self, relation):
        self.exact = ExactBackend(relation)
        self.schema = relation.schema

    def count(self, predicate):
        return self.exact.count(predicate) / 2.0


class TestRunWorkload:
    def test_exact_backend_zero_error(self, relation):
        workload = heavy_hitters(relation, ["a", "b"], 3)
        run = run_workload(ExactBackend(relation), "exact", workload, relation.schema)
        assert run.mean_error == 0.0
        assert len(run.estimates) == 3

    def test_half_backend_known_error(self, relation):
        workload = heavy_hitters(relation, ["a", "b"], 3)
        run = run_workload(_HalfBackend(relation), "half", workload, relation.schema)
        # |t - t/2| / (t + t/2) = 1/3 for every query.
        assert run.mean_error == pytest.approx(1.0 / 3.0)

    def test_latency_recorded(self, relation):
        workload = heavy_hitters(relation, ["a", "b"], 2)
        run = run_workload(ExactBackend(relation), "exact", workload, relation.schema)
        assert run.seconds >= 0.0
        assert run.mean_latency >= 0.0


class TestRunMethods:
    def test_multiple_methods(self, relation):
        workload = heavy_hitters(relation, ["a", "b"], 2)
        runs = run_methods(
            {"exact": ExactBackend(relation), "half": _HalfBackend(relation)},
            workload,
            relation.schema,
        )
        assert set(runs) == {"exact", "half"}
        assert runs["exact"].mean_error < runs["half"].mean_error

    def test_error_difference_table(self, relation):
        workload = heavy_hitters(relation, ["a", "b"], 2)
        runs = run_methods(
            {"exact": ExactBackend(relation), "half": _HalfBackend(relation)},
            workload,
            relation.schema,
        )
        diff = error_difference_table(runs, "exact")
        assert set(diff) == {"half"}
        assert diff["half"] == pytest.approx(1.0 / 3.0)


class TestFMeasureOver:
    def test_exact_backend_perfect(self, relation):
        light = light_hitters(relation, ["a", "b"], 2)
        null = nonexistent_values(relation, ["a", "b"], 5, seed=1)
        score = f_measure_over(ExactBackend(relation), light, null, relation.schema)
        assert score == 1.0


class TestPredicateForLabels:
    def test_builds_point_conjunction(self, relation):
        predicate = predicate_for_labels(relation.schema, [("a", 2), ("b", 2)])
        assert relation.count_where(predicate.attribute_masks()) == 8


class TestReporting:
    def test_ascii_table_alignment(self):
        rows = [{"x": 1, "y": 0.12345}, {"x": 22, "y": 3.0}]
        text = ascii_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert "0.1235" in text
        assert len(lines) == 4

    def test_ascii_table_empty(self):
        assert ascii_table([]) == "(no rows)"

    def test_markdown_table(self):
        rows = [{"a": "m", "b": 2}]
        text = markdown_table(rows)
        assert text.splitlines()[0] == "| a | b |"
        assert "| m | 2 |" in text

    def test_experiment_result_sections(self):
        result = ExperimentResult("test", "description")
        result.add_section("one", [{"k": 1}])
        assert result.rows("one") == [{"k": 1}]
        with pytest.raises(KeyError):
            result.rows("missing")
        assert "== test ==" in result.to_text()
        assert "### test" in result.to_markdown()

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = ascii_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].startswith("c")
        assert "b" not in text.splitlines()[0]
