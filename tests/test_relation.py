"""Unit tests for repro.data.relation."""

import numpy as np
import pytest

from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema([Domain("a", ["x", "y"]), integer_domain("b", 3)])


@pytest.fixture
def relation(schema):
    return Relation.from_rows(
        schema,
        [("x", 0), ("x", 1), ("y", 2), ("x", 0), ("y", 1)],
    )


class TestConstruction:
    def test_from_rows(self, relation):
        assert relation.num_rows == 5
        assert relation.row_labels(2) == ("y", 2)

    def test_from_index_rows(self, schema):
        rows = np.array([[0, 0], [1, 2]])
        relation = Relation.from_index_rows(schema, rows)
        assert relation.num_rows == 2
        assert relation.row_labels(1) == ("y", 2)

    def test_empty_relation(self, schema):
        relation = Relation.from_rows(schema, [])
        assert relation.num_rows == 0
        assert len(relation) == 0

    def test_wrong_column_count(self, schema):
        with pytest.raises(SchemaError, match="expected 2 columns"):
            Relation(schema, [np.zeros(3, dtype=np.int64)])

    def test_mismatched_lengths(self, schema):
        with pytest.raises(SchemaError, match="same length"):
            Relation(
                schema,
                [np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64)],
            )

    def test_out_of_domain_indices(self, schema):
        with pytest.raises(SchemaError, match="outside"):
            Relation(
                schema,
                [np.array([0, 5]), np.array([0, 0])],
            )

    def test_bad_index_matrix_shape(self, schema):
        with pytest.raises(SchemaError, match="index matrix"):
            Relation.from_index_rows(schema, np.zeros((2, 3), dtype=np.int64))


class TestSelection:
    def test_count_where(self, relation):
        mask_a = np.array([True, False])  # a = 'x'
        assert relation.count_where({"a": mask_a}) == 3

    def test_count_where_conjunction(self, relation):
        masks = {"a": np.array([True, False]), "b": np.array([True, False, False])}
        assert relation.count_where(masks) == 2

    def test_filter(self, relation):
        filtered = relation.filter({"a": np.array([False, True])})
        assert filtered.num_rows == 2
        assert set(filtered.column("b").tolist()) == {1, 2}

    def test_bad_mask_size(self, relation):
        with pytest.raises(SchemaError, match="wrong size"):
            relation.count_where({"a": np.array([True])})

    def test_sample_rows(self, relation):
        sampled = relation.sample_rows(np.array([0, 4]))
        assert sampled.num_rows == 2
        assert sampled.row_labels(1) == ("y", 1)


class TestAggregation:
    def test_marginal(self, relation):
        assert relation.marginal("a").tolist() == [3, 2]
        assert relation.marginal("b").tolist() == [2, 2, 1]

    def test_marginal_sums_to_cardinality(self, relation):
        for attr in ("a", "b"):
            assert relation.marginal(attr).sum() == relation.num_rows

    def test_contingency(self, relation):
        table = relation.contingency("a", "b")
        assert table.shape == (2, 3)
        assert table.sum() == relation.num_rows
        assert table[0, 0] == 2  # ('x', 0) twice
        assert table[1, 2] == 1  # ('y', 2) once

    def test_contingency_matches_marginals(self, relation):
        table = relation.contingency("a", "b")
        assert table.sum(axis=1).tolist() == relation.marginal("a").tolist()
        assert table.sum(axis=0).tolist() == relation.marginal("b").tolist()

    def test_group_by_counts(self, relation):
        counts = relation.group_by_counts(["a", "b"])
        assert counts[(0, 0)] == 2
        assert counts[(1, 1)] == 1
        assert sum(counts.values()) == relation.num_rows

    def test_group_by_counts_single_attr(self, relation):
        counts = relation.group_by_counts(["b"])
        assert counts == {(0,): 2, (1,): 2, (2,): 1}

    def test_group_by_requires_attrs(self, relation):
        with pytest.raises(SchemaError):
            relation.group_by_counts([])

    def test_project(self, relation):
        projected = relation.project(["b"])
        assert projected.schema.attribute_names == ["b"]
        assert projected.num_rows == relation.num_rows
        assert projected.marginal("b").tolist() == relation.marginal("b").tolist()
