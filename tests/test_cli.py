"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_pairs, main
from repro.errors import ReproError


@pytest.fixture
def data_prefix(tmp_path, capsys):
    prefix = tmp_path / "flights"
    code = main(
        ["generate", "flights", "--rows", "3000", "--seed", "3",
         "--out", str(prefix)]
    )
    assert code == 0
    capsys.readouterr()
    return prefix


@pytest.fixture
def model_prefix(data_prefix, tmp_path, capsys):
    prefix = tmp_path / "model"
    code = main(
        [
            "build",
            "--data", str(data_prefix),
            "--pairs", "fl_time:distance",
            "--budget", "20",
            "--iterations", "5",
            "--out", str(prefix),
        ]
    )
    assert code == 0
    capsys.readouterr()
    return prefix


class TestArgParser:
    def test_all_experiment_names_accepted(self):
        from repro.cli import build_arg_parser

        parser = build_arg_parser()
        for name in (
            "fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
            "compression", "latency", "solver", "variance", "strategy",
        ):
            args = parser.parse_args(["experiment", name])
            assert args.name == name
            assert args.scale is None

    def test_scale_flag(self):
        from repro.cli import build_arg_parser

        args = build_arg_parser().parse_args(
            ["experiment", "fig3", "--scale", "small"]
        )
        assert args.scale == "small"

    def test_unknown_experiment_rejected(self):
        from repro.cli import build_arg_parser

        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["experiment", "fig9"])

    def test_command_required(self):
        from repro.cli import build_arg_parser

        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])


class TestParsePairs:
    def test_empty(self):
        assert _parse_pairs("") == []

    def test_multiple(self):
        assert _parse_pairs("a:b, c:d") == [("a", "b"), ("c", "d")]

    def test_malformed(self):
        with pytest.raises(ReproError, match="attrA:attrB"):
            _parse_pairs("ab")


class TestGenerate:
    def test_writes_files(self, data_prefix):
        assert data_prefix.with_suffix(".schema.json").exists()
        assert data_prefix.with_suffix(".columns.npz").exists()

    def test_round_trip(self, data_prefix):
        from repro.data.serialize import load_relation

        relation = load_relation(data_prefix)
        assert relation.num_rows == 3000
        assert relation.schema.sizes() == [307, 54, 54, 62, 81]

    def test_particles(self, tmp_path, capsys):
        prefix = tmp_path / "particles"
        assert main(
            ["generate", "particles", "--rows", "500", "--out", str(prefix)]
        ) == 0
        from repro.data.serialize import load_relation

        relation = load_relation(prefix)
        assert relation.num_rows == 1500  # 3 snapshots


class TestBuildAndQuery:
    def test_build_writes_model(self, model_prefix):
        assert model_prefix.with_suffix(".json").exists()
        assert model_prefix.with_suffix(".npz").exists()

    def test_scalar_query(self, model_prefix, capsys):
        code = main(
            [
                "query",
                "--model", str(model_prefix),
                "--sql", "SELECT COUNT(*) FROM R WHERE origin_state = 'CA'",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert value >= 0.0

    def test_group_query(self, model_prefix, capsys):
        code = main(
            [
                "query",
                "--model", str(model_prefix),
                "--sql",
                "SELECT origin_state, COUNT(*) AS cnt FROM R "
                "GROUP BY origin_state ORDER BY cnt DESC LIMIT 3",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        counts = [float(line.rsplit("\t", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_rounded_query(self, model_prefix, capsys):
        code = main(
            [
                "query", "--rounded",
                "--model", str(model_prefix),
                "--sql",
                "SELECT COUNT(*) FROM R WHERE origin_state = 'CA' "
                "AND dest_state = 'NY' AND fl_date = 5",
            ]
        )
        assert code == 0
        value = float(capsys.readouterr().out.strip())
        assert value == int(value)

    def test_batch_file(self, model_prefix, tmp_path, capsys):
        queries = tmp_path / "queries.sql"
        queries.write_text(
            "-- repeated-equivalent workload\n"
            "SELECT COUNT(*) FROM R WHERE distance >= 20\n"
            "\n"
            "SELECT COUNT(*) FROM R WHERE origin_state = 'CA'\n"
            "SELECT origin_state, COUNT(*) AS cnt FROM R "
            "GROUP BY origin_state ORDER BY cnt DESC LIMIT 2\n"
        )
        code = main(
            ["query", "--model", str(model_prefix), "--file", str(queries)]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # one result line per query, in order
        assert float(lines[0]) >= 0.0
        assert float(lines[1]) >= 0.0
        assert ";" in lines[2]  # grouped rows collapse onto one line

    def test_batch_stdin(self, model_prefix, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("SELECT COUNT(*) FROM R\nSELECT COUNT(*) FROM R\n"),
        )
        code = main(["query", "--model", str(model_prefix), "--file", "-"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0] == lines[1]

    def test_batch_empty_file_reports_error(self, model_prefix, tmp_path, capsys):
        queries = tmp_path / "empty.sql"
        queries.write_text("-- nothing here\n")
        code = main(
            ["query", "--model", str(model_prefix), "--file", str(queries)]
        )
        assert code == 1
        assert "no queries" in capsys.readouterr().err

    def test_sql_and_file_mutually_exclusive(self, model_prefix, capsys):
        code = main(
            [
                "query",
                "--model", str(model_prefix),
                "--sql", "SELECT COUNT(*) FROM R",
                "--file", "queries.sql",
            ]
        )
        assert code == 1
        assert "exactly one" in capsys.readouterr().err

    def test_explain(self, model_prefix, capsys):
        code = main(
            [
                "query", "--explain",
                "--model", str(model_prefix),
                "--sql",
                "SELECT COUNT(*) FROM R WHERE distance >= 20 AND distance <= 40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "normalize:" in out
        assert "route:" in out
        assert "execute:" in out

    def test_info(self, model_prefix, capsys):
        assert main(["info", "--model", str(model_prefix)]) == 0
        out = capsys.readouterr().out
        assert "statistics" in out
        assert "polynomial" in out

    def test_bad_pair_spec_reports_error(self, data_prefix, tmp_path, capsys):
        code = main(
            [
                "build",
                "--data", str(data_prefix),
                "--pairs", "nonsense",
                "--out", str(tmp_path / "x"),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServeCli:
    def test_bench_serve_json_report(self, model_prefix, capsys):
        code = main(
            [
                "bench-serve",
                "--model", str(model_prefix),
                "--clients", "2",
                "--requests", "10",
                "--window-ms", "1.0",
                "--json",
            ]
        )
        assert code == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 20
        assert report["errors"] == 0
        assert report["qps"] > 0
        assert report["coalesce"] is True

    def test_bench_serve_writes_report_file(self, model_prefix, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        code = main(
            [
                "bench-serve",
                "--model", str(model_prefix),
                "--clients", "2",
                "--requests", "5",
                "--no-coalesce",
                "--out", str(out),
            ]
        )
        assert code == 0
        import json

        report = json.loads(out.read_text())
        assert report["coalesce"] is False
        assert report["requests"] == 10
        assert "report written" in capsys.readouterr().out

    def test_bench_serve_validates_flags(self, model_prefix, capsys):
        code = main(
            ["bench-serve", "--model", str(model_prefix), "--clients", "0"]
        )
        assert code == 1
        assert "--clients" in capsys.readouterr().err

        code = main(
            ["bench-serve", "--model", str(model_prefix), "--max-queue", "0"]
        )
        assert code == 1
        assert "--max-queue" in capsys.readouterr().err

    def test_serve_source_flag_errors(self, tmp_path, capsys):
        code = main(["bench-serve", "--store", str(tmp_path / "models")])
        assert code == 1
        assert "--name" in capsys.readouterr().err

        code = main(["bench-serve"])
        assert code == 1
        assert "--model" in capsys.readouterr().err

    def test_ping_unreachable_server(self, capsys):
        # Port 1 on localhost: reliably refused, no server there.
        code = main(["ping", "--port", "1"])
        assert code == 1
        assert "transport error" in capsys.readouterr().err

    def test_ping_running_server(self, model_prefix, capsys):
        from repro.core.sharding import load_model
        from repro.serve import ServeConfig, ServerThread, SummaryServer

        server = SummaryServer(
            load_model(str(model_prefix)), config=ServeConfig()
        )
        with ServerThread(server):
            code = main(
                ["ping", "--port", str(server.port), "--json"]
            )
        assert code == 0
        import json

        pong = json.loads(capsys.readouterr().out)
        assert pong["ok"] is True
        assert pong["version"] == 0
        assert pong["latency_ms"] > 0

    def test_metrics_prometheus_text(self, model_prefix, capsys):
        from repro.core.sharding import load_model
        from repro.obs import parse_prometheus
        from repro.serve import ServeClient, ServeConfig, ServerThread, SummaryServer

        server = SummaryServer(
            load_model(str(model_prefix)), config=ServeConfig()
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                client.call("ping")
            code = main(["metrics", "--port", str(server.port)])
        assert code == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        assert "repro_requests_total" in parsed["types"]
        ping_key = ("repro_requests_total", (("op", "ping"),))
        assert parsed["samples"][ping_key] >= 1

    def test_metrics_json_snapshot(self, model_prefix, capsys):
        import json

        from repro.core.sharding import load_model
        from repro.serve import ServeConfig, ServerThread, SummaryServer

        server = SummaryServer(
            load_model(str(model_prefix)), config=ServeConfig()
        )
        with ServerThread(server):
            code = main(
                ["metrics", "--port", str(server.port), "--json", "--traces"]
            )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["snapshot"]["repro_requests_total"]["type"] == "counter"
        assert "traces" in payload

    def test_top_once(self, model_prefix, capsys):
        from repro.core.sharding import load_model
        from repro.serve import ServeClient, ServeConfig, ServerThread, SummaryServer

        server = SummaryServer(
            load_model(str(model_prefix)), config=ServeConfig()
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                client.call("ping")
            code = main(["top", "--port", str(server.port), "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "requests" in out
        assert "ping" in out

    def test_metrics_unreachable_server(self, capsys):
        code = main(["metrics", "--port", "1"])
        assert code == 1
        assert "transport error" in capsys.readouterr().err
