"""Tests for workload builders (heavy / light / nonexistent)."""

import numpy as np
import pytest

from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError
from repro.workloads.selection_queries import (
    heavy_hitters,
    light_hitters,
    nonexistent_values,
    standard_workloads,
)


@pytest.fixture
def relation():
    schema = Schema([integer_domain("a", 6), integer_domain("b", 6)])
    rng = np.random.default_rng(9)
    # Zipf-ish skew over a few cells; most of the 36 cells stay empty.
    cells = [(0, 0)] * 100 + [(1, 1)] * 50 + [(2, 2)] * 20 + [(3, 3)] * 5 + [(4, 4)] * 2 + [(5, 5)] * 1
    rng.shuffle(cells)
    return Relation.from_rows(schema, cells)


class TestHeavyHitters:
    def test_picks_largest(self, relation):
        workload = heavy_hitters(relation, ["a", "b"], 2)
        counts = [query.true_count for query in workload]
        assert counts == [100.0, 50.0]

    def test_true_counts_correct(self, relation):
        for query in heavy_hitters(relation, ["a", "b"], 4):
            masks = query.conjunction(relation.schema).attribute_masks()
            assert relation.count_where(masks) == query.true_count

    def test_single_attribute(self, relation):
        workload = heavy_hitters(relation, ["a"], 3)
        assert workload.queries[0].true_count == 100.0


class TestLightHitters:
    def test_picks_smallest_nonzero(self, relation):
        workload = light_hitters(relation, ["a", "b"], 2)
        counts = sorted(query.true_count for query in workload)
        assert counts == [1.0, 2.0]

    def test_all_nonzero(self, relation):
        for query in light_hitters(relation, ["a", "b"], 6):
            assert query.true_count > 0

    def test_count_larger_than_population(self, relation):
        workload = light_hitters(relation, ["a", "b"], 100)
        assert len(workload) == 6  # only 6 existing cells


class TestNonexistent:
    def test_all_zero(self, relation):
        workload = nonexistent_values(relation, ["a", "b"], 10, seed=1)
        assert all(query.true_count == 0 for query in workload)
        for query in workload:
            masks = query.conjunction(relation.schema).attribute_masks()
            assert relation.count_where(masks) == 0

    def test_distinct(self, relation):
        workload = nonexistent_values(relation, ["a", "b"], 20, seed=2)
        indices = [query.indices for query in workload]
        assert len(set(indices)) == len(indices)

    def test_deterministic(self, relation):
        first = nonexistent_values(relation, ["a", "b"], 10, seed=3)
        second = nonexistent_values(relation, ["a", "b"], 10, seed=3)
        assert [q.indices for q in first] == [q.indices for q in second]

    def test_enumeration_path_when_scarce(self, relation):
        # 30 zero cells exist; asking for 29 forces enumeration.
        workload = nonexistent_values(relation, ["a", "b"], 29, seed=4)
        assert len(workload) == 29
        assert all(query.true_count == 0 for query in workload)

    def test_too_many_requested(self, relation):
        with pytest.raises(ReproError, match="empty cells"):
            nonexistent_values(relation, ["a", "b"], 31, seed=5)


class TestStandardWorkloads:
    def test_shapes(self, relation):
        workloads = standard_workloads(
            relation, ["a", "b"], num_heavy=3, num_light=3, num_null=6
        )
        assert set(workloads) == {"heavy", "light", "null"}
        assert len(workloads["heavy"]) == 3
        assert len(workloads["null"]) == 6

    def test_labels_resolved(self, relation):
        workloads = standard_workloads(
            relation, ["a", "b"], num_heavy=1, num_light=1, num_null=1
        )
        query = workloads["heavy"].queries[0]
        assert query.labels == (0, 0)
