"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

# tools/ lives next to src/ at the repo root; the lock-order watchdog
# (tools.analyze.lockorder) is opt-in and only imported when enabled.
_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.stats.statistic import StatisticSet, range_statistic_2d

settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# Lock-order watchdog (opt-in: --lockorder or REPRO_LOCKORDER=1)
# ----------------------------------------------------------------------

def pytest_addoption(parser):
    parser.addoption(
        "--lockorder",
        action="store_true",
        default=False,
        help="instrument threading.Lock/RLock and fail the session on "
        "inconsistent lock-acquisition order (see tools/analyze/lockorder.py)",
    )
    parser.addoption(
        "--soak",
        action="store_true",
        default=False,
        help="run the chaos soak scenarios (tests marked @pytest.mark.soak): "
        "short fault-injected multi-tenant runs against a live server "
        "(see docs/testing.md)",
    )


def _lockorder_enabled(config) -> bool:
    if config.getoption("--lockorder"):
        return True
    return os.environ.get("REPRO_LOCKORDER", "") not in ("", "0")


def _soak_enabled(config) -> bool:
    if config.getoption("--soak"):
        return True
    return os.environ.get("REPRO_SOAK", "") not in ("", "0")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: chaos soak scenario (seconds of live traffic); "
        "skipped unless --soak or REPRO_SOAK=1",
    )


def pytest_collection_modifyitems(config, items):
    if _soak_enabled(config):
        return
    skip_soak = pytest.mark.skip(reason="needs --soak (or REPRO_SOAK=1)")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip_soak)


@pytest.fixture(autouse=True, scope="session")
def _lockorder_watchdog(request):
    """Record lock-acquisition order across the whole session when enabled.

    Inconsistent ordering (a cycle in the waits-for graph between lock
    creation sites) is a latent deadlock even if no run has hung yet;
    the watchdog turns it into a loud session failure.
    """
    if not _lockorder_enabled(request.config):
        yield None
        return
    from tools.analyze.lockorder import LockOrderWatchdog

    watchdog = LockOrderWatchdog()
    watchdog.install()
    try:
        yield watchdog
    finally:
        watchdog.uninstall()
        watchdog.assert_no_cycles()


# ----------------------------------------------------------------------
# Deterministic fixtures
# ----------------------------------------------------------------------

@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_schema():
    """A 3-attribute schema small enough for the naive polynomial."""
    return Schema(
        [integer_domain("A", 4), integer_domain("B", 5), integer_domain("C", 3)]
    )


@pytest.fixture
def small_relation(small_schema, rng):
    """A skewed random relation over the small schema."""
    num_rows = 400
    # Skew: value 0 of each attribute is much more likely.
    columns = []
    for size in small_schema.sizes():
        weights = 1.0 / (np.arange(size) + 1.0)
        weights /= weights.sum()
        columns.append(rng.choice(size, size=num_rows, p=weights))
    return Relation(small_schema, columns)


@pytest.fixture
def small_statistics(small_relation):
    """Statistic set with three overlapping 2D statistics."""
    relation = small_relation
    schema = relation.schema

    def count(attr_a, range_a, attr_b, range_b):
        masks = {}
        for attr, (low, high) in ((attr_a, range_a), (attr_b, range_b)):
            size = schema.domain(attr).size
            mask = np.zeros(size, dtype=bool)
            mask[low : high + 1] = True
            masks[attr] = mask
        return float(relation.count_where(masks))

    stats = [
        range_statistic_2d(
            schema, "A", (1, 2), "B", (0, 2), count("A", (1, 2), "B", (0, 2))
        ),
        range_statistic_2d(
            schema, "B", (2, 4), "C", (0, 1), count("B", (2, 4), "C", (0, 1))
        ),
        range_statistic_2d(
            schema, "A", (0, 0), "C", (2, 2), count("A", (0, 0), "C", (2, 2))
        ),
    ]
    return StatisticSet.from_relation(relation, stats)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

@st.composite
def schemas(draw, max_attrs=4, max_size=6):
    """Random small schemas."""
    num_attrs = draw(st.integers(2, max_attrs))
    sizes = [draw(st.integers(2, max_size)) for _ in range(num_attrs)]
    return Schema(
        [integer_domain(f"X{index}", size) for index, size in enumerate(sizes)]
    )


@st.composite
def relations(draw, schema_strategy=None, max_rows=200):
    """Random relations (rows drawn uniformly, some skew via seed)."""
    schema = draw(schema_strategy or schemas())
    num_rows = draw(st.integers(10, max_rows))
    seed = draw(st.integers(0, 2**31 - 1))
    generator = np.random.default_rng(seed)
    columns = []
    for size in schema.sizes():
        weights = generator.random(size) + 0.1
        weights /= weights.sum()
        columns.append(generator.choice(size, size=num_rows, p=weights))
    return Relation(schema, columns)


@st.composite
def relations_with_stats(draw, max_stats=4):
    """A relation plus a set of measured (consistent) 2D statistics.

    Statistics are disjoint within each attribute pair (rejection-
    sampled), overlapping freely across pairs — the structural setting
    of Theorem 4.1.
    """
    relation = draw(relations())
    schema = relation.schema
    num_stats = draw(st.integers(0, max_stats))
    chosen: list = []
    stats = []
    for _ in range(num_stats):
        pos_a = draw(st.integers(0, schema.num_attributes - 2))
        pos_b = draw(st.integers(pos_a + 1, schema.num_attributes - 1))
        size_a = schema.domain(pos_a).size
        size_b = schema.domain(pos_b).size
        low_a = draw(st.integers(0, size_a - 1))
        high_a = draw(st.integers(low_a, size_a - 1))
        low_b = draw(st.integers(0, size_b - 1))
        high_b = draw(st.integers(low_b, size_b - 1))
        candidate = (pos_a, pos_b, low_a, high_a, low_b, high_b)
        if _overlaps_existing(chosen, candidate):
            continue
        chosen.append(candidate)
        masks = {
            pos_a: _range_mask(size_a, low_a, high_a),
            pos_b: _range_mask(size_b, low_b, high_b),
        }
        value = float(relation.count_where(masks))
        stats.append(
            range_statistic_2d(
                schema, pos_a, (low_a, high_a), pos_b, (low_b, high_b), value
            )
        )
    return relation, StatisticSet.from_relation(relation, stats)


def _range_mask(size, low, high):
    mask = np.zeros(size, dtype=bool)
    mask[low : high + 1] = True
    return mask


def _overlaps_existing(chosen, candidate):
    pos_a, pos_b, low_a, high_a, low_b, high_b = candidate
    for other in chosen:
        if other[:2] != (pos_a, pos_b):
            continue
        if max(low_a, other[2]) <= min(high_a, other[3]) and max(
            low_b, other[4]
        ) <= min(high_b, other[5]):
            return True
    return False


@st.composite
def parameters_for(draw, polynomial):
    """Random positive parameters shaped for a polynomial."""
    from repro.core.variables import ModelParameters

    seed = draw(st.integers(0, 2**31 - 1))
    generator = np.random.default_rng(seed)
    alphas = [
        generator.random(size) * 2.0 + 0.05 for size in polynomial.sizes
    ]
    deltas = generator.random(polynomial.num_deltas) * 2.0 + 0.05
    return ModelParameters(alphas, deltas)
