"""Unit tests for repro.stats.statistic."""

import pytest

from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import StatisticError
from repro.stats.predicates import Conjunction, RangePredicate, SetPredicate
from repro.stats.statistic import (
    Statistic,
    StatisticSet,
    point_statistic,
    range_statistic_2d,
)


@pytest.fixture
def schema():
    return Schema([integer_domain("a", 3), integer_domain("b", 4)])


@pytest.fixture
def relation(schema):
    return Relation.from_rows(
        schema, [(0, 0), (0, 1), (1, 1), (2, 3), (2, 3), (1, 0)]
    )


class TestStatistic:
    def test_point_statistic(self, schema):
        statistic = point_statistic(schema, "a", 1, 7.0)
        assert statistic.positions == (0,)
        assert statistic.dimension == 1
        assert statistic.value == 7.0

    def test_range_statistic_2d(self, schema):
        statistic = range_statistic_2d(schema, "a", (0, 1), "b", (2, 3), 5.0)
        assert statistic.positions == (0, 1)
        assert statistic.range_at(0) == RangePredicate(0, 1)
        assert statistic.range_at(1) == RangePredicate(2, 3)

    def test_range_at_unconstrained_is_full(self, schema):
        statistic = point_statistic(schema, "a", 1, 7.0)
        assert statistic.range_at(1) == RangePredicate(0, 3)

    def test_range_at_rejects_set_predicate(self, schema):
        statistic = Statistic(
            Conjunction(schema, {"a": SetPredicate([0, 2])}), 3.0
        )
        with pytest.raises(StatisticError, match="range predicates"):
            statistic.range_at(0)

    def test_measure(self, schema, relation):
        statistic = range_statistic_2d(schema, "a", (2, 2), "b", (3, 3), 0.0)
        assert statistic.measure(relation) == 2

    def test_negative_value_rejected(self, schema):
        with pytest.raises(StatisticError):
            point_statistic(schema, "a", 0, -1.0)

    def test_same_attribute_twice_rejected(self, schema):
        with pytest.raises(StatisticError, match="distinct"):
            range_statistic_2d(schema, "a", (0, 1), "a", (1, 2), 1.0)


class TestStatisticSet:
    def test_from_relation_builds_marginals(self, relation):
        statistic_set = StatisticSet.from_relation(relation)
        assert statistic_set.total == 6
        assert statistic_set.one_dim[0] == [2.0, 2.0, 2.0]
        assert statistic_set.one_dim[1] == [2.0, 2.0, 0.0, 2.0]
        assert statistic_set.num_one_dim == 7
        assert statistic_set.num_statistics == 7

    def test_overcompleteness_enforced(self, schema):
        with pytest.raises(StatisticError, match="overcompleteness"):
            StatisticSet(schema, 6, [[1.0, 1.0, 1.0], [2.0, 2.0, 0.0, 2.0]])

    def test_wrong_vector_length(self, schema):
        with pytest.raises(StatisticError, match="length"):
            StatisticSet(schema, 6, [[6.0], [2.0, 2.0, 0.0, 2.0]])

    def test_disjointness_enforced(self, schema, relation):
        first = range_statistic_2d(schema, "a", (0, 1), "b", (0, 1), 3.0)
        overlapping = range_statistic_2d(schema, "a", (1, 2), "b", (1, 2), 1.0)
        statistic_set = StatisticSet.from_relation(relation, [first])
        with pytest.raises(StatisticError, match="disjoint"):
            statistic_set.add_multi_dim(overlapping)

    def test_disjoint_same_pair_allowed(self, schema, relation):
        first = range_statistic_2d(schema, "a", (0, 0), "b", (0, 1), 2.0)
        second = range_statistic_2d(schema, "a", (1, 2), "b", (0, 1), 2.0)
        statistic_set = StatisticSet.from_relation(relation, [first, second])
        assert statistic_set.num_multi_dim == 2

    def test_overlap_on_other_pair_allowed(self, schema, relation):
        # Statistics over different attribute sets may overlap freely.
        range_statistic_2d(schema, "a", (0, 1), "b", (0, 1), 3.0)
        schema3 = Schema(
            [integer_domain("a", 3), integer_domain("b", 4), integer_domain("c", 2)]
        )
        relation3 = Relation.from_rows(
            schema3, [(0, 0, 0), (1, 1, 1), (2, 3, 0)]
        )
        stats = [
            range_statistic_2d(schema3, "a", (0, 1), "b", (0, 1), 2.0),
            range_statistic_2d(schema3, "b", (0, 2), "c", (0, 0), 1.0),
        ]
        statistic_set = StatisticSet.from_relation(relation3, stats)
        assert statistic_set.num_multi_dim == 2

    def test_one_dim_statistic_rejected_as_multi(self, schema, relation):
        statistic_set = StatisticSet.from_relation(relation)
        with pytest.raises(StatisticError, match=">= 2 attributes"):
            statistic_set.add_multi_dim(point_statistic(schema, "a", 0, 2.0))

    def test_value_above_cardinality_rejected(self, schema, relation):
        statistic_set = StatisticSet.from_relation(relation)
        too_big = range_statistic_2d(schema, "a", (0, 2), "b", (0, 3), 100.0)
        with pytest.raises(StatisticError, match="exceeds cardinality"):
            statistic_set.add_multi_dim(too_big)

    def test_verify_against_passes_for_measured(self, relation):
        schema = relation.schema
        statistic = range_statistic_2d(
            schema, "a", (2, 2), "b", (3, 3), 2.0
        )
        statistic_set = StatisticSet.from_relation(relation, [statistic])
        statistic_set.verify_against(relation)

    def test_verify_against_detects_mismatch(self, relation):
        schema = relation.schema
        statistic = range_statistic_2d(schema, "a", (2, 2), "b", (3, 3), 1.0)
        statistic_set = StatisticSet.from_relation(relation, [statistic])
        with pytest.raises(StatisticError, match="mismatch"):
            statistic_set.verify_against(relation)

    def test_attribute_pairs(self, relation):
        schema = relation.schema
        stats = [
            range_statistic_2d(schema, "a", (0, 0), "b", (0, 0), 1.0),
            range_statistic_2d(schema, "a", (1, 1), "b", (1, 1), 1.0),
        ]
        statistic_set = StatisticSet.from_relation(relation, stats)
        assert statistic_set.attribute_pairs() == {(0, 1)}
