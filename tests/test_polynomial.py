"""Unit + property tests for the compressed polynomial.

The central correctness claim: the compressed polynomial is *identical*
to the naive one-monomial-per-tuple polynomial of Eq. (5) — values,
masked values, and all first derivatives — on any statistic set
satisfying the structural assumptions.
"""

import numpy as np
import pytest
from hypothesis import given

from repro.core.naive import NaivePolynomial
from repro.core.polynomial import (
    CompressedPolynomial,
    check_parameter_shapes,
    initial_parameters,
    product_excluding,
)
from repro.core.variables import ModelParameters
from repro.errors import SolverError

from tests.conftest import relations_with_stats


class TestProductExcluding:
    def test_simple(self):
        values = np.array([2.0, 3.0, 4.0])
        assert product_excluding(values).tolist() == [12.0, 8.0, 6.0]

    def test_single_zero(self):
        values = np.array([2.0, 0.0, 4.0])
        assert product_excluding(values).tolist() == [0.0, 8.0, 0.0]

    def test_two_zeros(self):
        values = np.array([0.0, 3.0, 0.0])
        assert product_excluding(values).tolist() == [0.0, 0.0, 0.0]

    def test_single_element(self):
        assert product_excluding(np.array([5.0])).tolist() == [1.0]

    def test_axis(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = product_excluding(values, axis=0)
        assert out.tolist() == [[3.0, 4.0], [1.0, 2.0]]


class TestAgainstNaive:
    def test_uniform_parameters_count_tuples(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        params.deltas[:] = 1.0
        assert poly.evaluate(params) == pytest.approx(
            small_statistics.schema.num_possible_tuples()
        )

    def test_evaluation_matches(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        naive = NaivePolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) * 3
        params.deltas[:] = rng.random(params.deltas.size) * 3
        assert poly.evaluate(params) == pytest.approx(naive.evaluate(params))

    def test_masked_evaluation_matches(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        naive = NaivePolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) + 0.2
        masks = {0: np.array([True, False, True, False]), 2: np.array([False, True, True])}
        assert poly.evaluate(params, masks) == pytest.approx(
            naive.evaluate(params, masks)
        )

    def test_attribute_gradients_match(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        naive = NaivePolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) + 0.1
        params.deltas[:] = rng.random(params.deltas.size) + 0.1
        parts = poly.evaluation_parts(params)
        for pos in range(3):
            expected = naive.attribute_gradient(params, pos)
            actual = poly.attribute_gradient(parts, pos)
            np.testing.assert_allclose(actual, expected, rtol=1e-10)

    def test_delta_gradients_match(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        naive = NaivePolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) + 0.1
        params.deltas[:] = rng.random(params.deltas.size) + 0.1
        parts = poly.evaluation_parts(params)
        for stat_id in range(small_statistics.num_multi_dim):
            expected = naive.delta_gradient(params, stat_id)
            actual = poly.delta_gradient(parts, params, stat_id)
            assert actual == pytest.approx(expected, rel=1e-10)

    def test_gradient_with_zero_alphas(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        naive = NaivePolynomial(small_statistics)
        params = initial_parameters(poly)
        params.alphas[0][0] = 0.0
        params.alphas[1][2] = 0.0
        params.deltas[0] = 0.0
        parts = poly.evaluation_parts(params)
        for pos in range(3):
            np.testing.assert_allclose(
                poly.attribute_gradient(parts, pos),
                naive.attribute_gradient(params, pos),
                rtol=1e-10,
            )

    @given(relations_with_stats())
    def test_property_evaluation_equals_naive(self, data):
        relation, statistic_set = data
        poly = CompressedPolynomial(statistic_set)
        naive = NaivePolynomial(statistic_set)
        generator = np.random.default_rng(relation.num_rows)
        params = ModelParameters(
            [generator.random(size) + 0.05 for size in poly.sizes],
            generator.random(poly.num_deltas) + 0.05,
        )
        assert poly.evaluate(params) == pytest.approx(
            naive.evaluate(params), rel=1e-9
        )

    @given(relations_with_stats())
    def test_property_masked_and_gradients_equal_naive(self, data):
        relation, statistic_set = data
        poly = CompressedPolynomial(statistic_set)
        naive = NaivePolynomial(statistic_set)
        generator = np.random.default_rng(relation.num_rows + 1)
        params = ModelParameters(
            [generator.random(size) + 0.05 for size in poly.sizes],
            generator.random(poly.num_deltas) + 0.05,
        )
        masks = {
            0: generator.random(poly.sizes[0]) > 0.4,
        }
        if not masks[0].any():
            masks[0][0] = True
        assert poly.evaluate(params, masks) == pytest.approx(
            naive.evaluate(params, masks), rel=1e-9, abs=1e-9
        )
        parts = poly.evaluation_parts(params)
        for pos in range(statistic_set.schema.num_attributes):
            np.testing.assert_allclose(
                poly.attribute_gradient(parts, pos),
                naive.attribute_gradient(params, pos),
                rtol=1e-8,
            )
        for stat_id in range(statistic_set.num_multi_dim):
            assert poly.delta_gradient(parts, params, stat_id) == pytest.approx(
                naive.delta_gradient(params, stat_id), rel=1e-8, abs=1e-9
            )


class TestLinearity:
    """P is multi-linear: degree 1 in every variable (Sec 3.1)."""

    def test_linear_in_each_alpha(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) + 0.1
        for pos in range(3):
            for index in range(poly.sizes[pos]):
                values = []
                for setting in (0.0, 1.0, 2.0):
                    params.alphas[pos][index] = setting
                    values.append(poly.evaluate(params))
                # f(2) - f(1) == f(1) - f(0) for linear functions.
                assert values[2] - values[1] == pytest.approx(
                    values[1] - values[0], rel=1e-9
                )

    def test_linear_in_each_delta(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        for stat_id in range(poly.num_deltas):
            values = []
            for setting in (0.0, 1.0, 2.0):
                params.deltas[stat_id] = setting
                values.append(poly.evaluate(params))
            assert values[2] - values[1] == pytest.approx(
                values[1] - values[0], rel=1e-9
            )
            params.deltas[stat_id] = 1.0


class TestOvercompleteness:
    """Eq. (7): P = Σ_{j∈J_i} α_j P_j — Euler's identity for functions
    linear and homogeneous in one attribute's variables."""

    def test_euler_identity(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) + 0.1
        parts = poly.evaluation_parts(params)
        for pos in range(3):
            gradient = poly.attribute_gradient(parts, pos)
            total = float(np.dot(params.alphas[pos], gradient))
            assert total == pytest.approx(parts.value, rel=1e-9)


class TestShapesAndSizes:
    def test_size_report(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        report = poly.size_report()
        assert report["num_uncompressed_monomials"] == 60
        assert report["num_terms"] < 60
        assert report["num_variables"] == 12 + 3

    def test_check_parameter_shapes(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        good = initial_parameters(poly)
        check_parameter_shapes(poly, good)
        bad = ModelParameters([np.ones(2)] * 3, np.ones(3))
        with pytest.raises(SolverError):
            check_parameter_shapes(poly, bad)

    def test_component_of_stat(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        for stat_id in range(poly.num_deltas):
            index = poly.component_of_stat(stat_id)
            assert stat_id in poly.components[index].stat_terms
        with pytest.raises(SolverError):
            poly.component_of_stat(99)

    def test_masked_alphas_shape_mismatch(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        with pytest.raises(SolverError, match="mask"):
            poly.evaluate(params, {0: np.array([True, False])})
