"""Unit tests for repro.data.schema."""

import pytest

from repro.data.domain import integer_domain
from repro.data.schema import Schema
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema(
        [integer_domain("a", 3), integer_domain("b", 4), integer_domain("c", 5)]
    )


class TestSchema:
    def test_counts(self, schema):
        assert schema.num_attributes == 3
        assert schema.sizes() == [3, 4, 5]
        assert schema.num_possible_tuples() == 60

    def test_position_by_name_and_index(self, schema):
        assert schema.position("b") == 1
        assert schema.position(1) == 1

    def test_domain_lookup(self, schema):
        assert schema.domain("c").size == 5
        assert schema.domain(0).name == "a"

    def test_unknown_attribute(self, schema):
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.position("zzz")

    def test_position_out_of_range(self, schema):
        with pytest.raises(SchemaError, match="out of range"):
            schema.position(7)

    def test_contains(self, schema):
        assert "a" in schema
        assert "z" not in schema

    def test_project_preserves_order_given(self, schema):
        projected = schema.project(["c", "a"])
        assert projected.attribute_names == ["c", "a"]
        assert projected.sizes() == [5, 3]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([integer_domain("a", 2), integer_domain("a", 3)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            Schema([])

    def test_equality(self, schema):
        other = Schema(
            [integer_domain("a", 3), integer_domain("b", 4), integer_domain("c", 5)]
        )
        assert schema == other
        assert hash(schema) == hash(other)
