"""Tests for the CSV loading pipeline."""

import pytest

from repro.data.binning import Bucket
from repro.data.loaders import (
    CategoricalColumn,
    GroupedColumn,
    NumericColumn,
    load_csv,
)
from repro.errors import DomainError, SchemaError

CSV = """state,city,distance,delay
WA,Seattle,120.5,3
WA,Seattle,130.0,5
WA,Spokane,300.0,
CA,LA,90.0,1
CA,LA,95.5,2
CA,SF,110.0,4
CA,Fresno,700.0,9
NY,NYC,450.0,2
"""


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "flights.csv"
    path.write_text(CSV)
    return path


class TestLoadCsv:
    def test_categorical_and_numeric(self, csv_path):
        relation = load_csv(
            csv_path,
            [
                CategoricalColumn("state"),
                NumericColumn("distance", num_buckets=4),
            ],
        )
        assert relation.schema.attribute_names == ["state", "distance"]
        assert relation.num_rows == 8
        assert relation.schema.domain("state").labels == ["CA", "NY", "WA"]
        assert all(
            isinstance(label, Bucket)
            for label in relation.schema.domain("distance").labels
        )

    def test_null_rows_dropped(self, csv_path):
        relation = load_csv(
            csv_path,
            [CategoricalColumn("state"), NumericColumn("delay", num_buckets=3)],
        )
        # The Spokane row has an empty delay cell.
        assert relation.num_rows == 7

    def test_grouped_column(self, csv_path):
        relation = load_csv(
            csv_path,
            [GroupedColumn("city", group_column="state", k=1)],
        )
        labels = relation.schema.domain("city").labels
        assert ("WA", "Seattle") in labels
        assert ("WA", "Other") in labels
        assert ("CA", "LA") in labels
        # SF and Fresno fold into CA/Other.
        counts = relation.marginal("city")
        other_index = relation.schema.domain("city").index_of(("CA", "Other"))
        assert counts[other_index] == 2

    def test_appearance_order_labels(self, csv_path):
        relation = load_csv(
            csv_path, [CategoricalColumn("state", sort_labels=False)]
        )
        assert relation.schema.domain("state").labels == ["WA", "CA", "NY"]

    def test_max_rows(self, csv_path):
        relation = load_csv(
            csv_path, [CategoricalColumn("state")], max_rows=3
        )
        assert relation.num_rows == 3

    def test_explicit_numeric_range(self, csv_path):
        relation = load_csv(
            csv_path,
            [NumericColumn("distance", num_buckets=10, low=0.0, high=1000.0)],
        )
        domain = relation.schema.domain("distance")
        assert domain.label_of(0).low == 0.0
        assert domain.label_of(9).high == 1000.0

    def test_missing_column(self, csv_path):
        with pytest.raises(SchemaError, match="missing columns"):
            load_csv(csv_path, [CategoricalColumn("airline")])

    def test_non_numeric_value(self, csv_path):
        with pytest.raises(DomainError, match="non-numeric"):
            load_csv(csv_path, [NumericColumn("city", num_buckets=3)])

    def test_empty_specs(self, csv_path):
        with pytest.raises(SchemaError):
            load_csv(csv_path, [])

    def test_all_rows_null(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n,1\n,2\n")
        with pytest.raises(SchemaError, match="no complete rows"):
            load_csv(path, [CategoricalColumn("a")])

    def test_end_to_end_summary(self, csv_path):
        """CSV → relation → summary → query."""
        from repro.core.summary import EntropySummary
        from repro.query import SQLEngine, SummaryBackend

        relation = load_csv(
            csv_path,
            [
                CategoricalColumn("state"),
                NumericColumn("distance", num_buckets=4),
            ],
        )
        summary = EntropySummary.build(relation, max_iterations=30)
        engine = SQLEngine(SummaryBackend(summary))
        estimate = engine.count("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        assert estimate == pytest.approx(4.0, abs=0.2)
