"""Smoke tests for every experiment driver at a micro scale.

These do not assert the paper's shapes (the benchmarks do, at real
scale); they verify that each driver runs end-to-end and produces the
expected table structure.
"""

import pytest

from repro.experiments.configs import ExperimentStore, Scale

TINY = Scale(
    name="tiny",
    flights_rows=4000,
    particles_rows_per_snapshot=1500,
    budget_two_pairs=12,
    budget_three_pairs=8,
    fig2_budgets=(10, 20),
    particles_pair_budget=8,
    particles_sample_rows=300,
    num_heavy=5,
    num_light=5,
    num_null=10,
    sample_fraction=0.02,
    solver_iterations=4,
)


@pytest.fixture(scope="module")
def store():
    return ExperimentStore(TINY)


class TestDrivers:
    def test_fig2(self, store):
        from repro.experiments.fig2 import run_fig2

        result = run_fig2(store)
        rows = result.rows("error by heuristic and budget")
        assert len(rows) == 2 * 3  # budgets x heuristics
        assert {"heavy_error", "light_error", "null_error"} <= set(rows[0])

    def test_fig3(self, store):
        from repro.experiments.fig3 import run_fig3

        result = run_fig3(store)
        assert len(result.rows("Flights")) == 6
        assert len(result.rows("Particles")) == 9

    def test_fig5(self, store):
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(store)
        heavy = result.rows("heavy hitters")
        light = result.rows("light hitters")
        assert len(heavy) == 3 and len(light) == 3
        for row in heavy + light:
            assert "Uni" in row and "Ent3&4" in row

    def test_fig5_fine_variant(self, store):
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(store, variant="fine")
        assert "FlightsFine" in result.name

    def test_fig6(self, store):
        from repro.experiments.fig6 import fig6_templates, run_fig6

        assert len(fig6_templates("coarse")) == 15
        assert len(fig6_templates("fine")) == 15
        result = run_fig6(store)
        for section in ("FlightsCoarse", "FlightsFine"):
            rows = result.rows(section)
            assert len(rows) == 8
            for row in rows:
                assert 0.0 <= row["f_measure"] <= 1.0

    def test_fig7(self, store):
        from repro.experiments.fig7 import run_fig7

        result = run_fig7(store)
        heavy = result.rows("heavy hitters")
        assert len(heavy) == 9  # 3 snapshots x 3 templates
        for row in heavy:
            assert row["EntAll_ms"] >= 0.0

    def test_fig8(self, store):
        from repro.experiments.fig8 import fig8_templates, run_fig8

        assert len(fig8_templates("coarse")) == 6
        result = run_fig8(store)
        for section in ("FlightsCoarse", "FlightsFine"):
            assert len(result.rows(section)) == 4

    def test_compression(self, store):
        from repro.experiments.compression import run_compression

        result = run_compression(store)
        rows = result.rows("polynomial size on restricted flights")
        assert len(rows) == 2
        for row in rows:
            assert row["compressed_terms"] < row["uncompressed_monomials"]

    def test_latency(self, store):
        from repro.experiments.latency import run_latency

        result = run_latency(store)
        rows = result.rows("per-query latency")
        assert rows
        for row in rows:
            assert row["mean_ms"] <= row["max_ms"]

    def test_solver_trace(self, store):
        from repro.experiments.solver_trace import run_solver_trace

        result = run_solver_trace(store)
        cost = result.rows("per-configuration cost")
        assert {row["method"] for row in cost} == {
            "No2D", "Ent1&2", "Ent3&4", "Ent1&2&3",
        }
        trace = result.rows("error trace")
        assert all(row["iteration"] >= 1 for row in trace)

    def test_variance(self, store):
        from repro.experiments.variance import run_variance

        result = run_variance(store)
        rows = result.rows("95% interval coverage")
        assert len(rows) == 6  # 3 templates x heavy/light
        for row in rows:
            assert 0.0 <= row["coverage"] <= 1.0
            assert row["mean_ci_width"] >= 0.0

    def test_strategy_ablation(self, store):
        from repro.experiments.strategy_ablation import run_strategy_ablation

        result = run_strategy_ablation(store)
        pairs = {row["strategy"] for row in result.rows("chosen pairs")}
        assert pairs == {"correlation", "cover"}
        aggregate = result.rows("accuracy over six 2-attribute templates")
        assert len(aggregate) == 2
        assert len(result.rows("per-template heavy-hitter error")) == 12

    def test_markdown_rendering(self, store):
        from repro.experiments.fig3 import run_fig3

        text = run_fig3(store).to_markdown()
        assert "| attribute |" in text
