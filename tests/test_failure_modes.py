"""Failure-injection tests: corrupted persistence, degenerate models,
and infeasible inputs must fail loudly and precisely."""

import json

import numpy as np
import pytest

from repro.core.inference import InferenceEngine
from repro.core.polynomial import CompressedPolynomial, initial_parameters
from repro.core.summary import EntropySummary
from repro.core.variables import ModelParameters
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError, SolverError
from repro.stats.statistic import StatisticSet


@pytest.fixture
def summary(tmp_path):
    schema = Schema([integer_domain("a", 3), integer_domain("b", 4)])
    rng = np.random.default_rng(8)
    relation = Relation(
        schema, [rng.integers(0, 3, 200), rng.integers(0, 4, 200)]
    )
    summary = EntropySummary.build(relation, max_iterations=20)
    summary.save(tmp_path / "model")
    return summary, tmp_path / "model"


class TestCorruptedPersistence:
    def test_truncated_json(self, summary):
        _, prefix = summary
        text = prefix.with_suffix(".json").read_text()
        prefix.with_suffix(".json").write_text(text[: len(text) // 2])
        with pytest.raises(json.JSONDecodeError):
            EntropySummary.load(prefix)

    def test_missing_npz(self, summary):
        _, prefix = summary
        prefix.with_suffix(".npz").unlink()
        with pytest.raises(FileNotFoundError):
            EntropySummary.load(prefix)

    def test_missing_alpha_array(self, summary, tmp_path):
        _, prefix = summary
        with np.load(prefix.with_suffix(".npz")) as arrays:
            kept = {
                key: arrays[key] for key in arrays.files if key != "alpha_1"
            }
        np.savez(prefix.with_suffix(".npz"), **kept)
        with pytest.raises(SolverError, match="alpha"):
            EntropySummary.load(prefix)

    def test_tampered_statistic_value(self, summary):
        original, prefix = summary
        document = json.loads(prefix.with_suffix(".json").read_text())
        document["one_dim"][0][0] = -5.0
        prefix.with_suffix(".json").write_text(json.dumps(document))
        with pytest.raises(ReproError):
            EntropySummary.load(prefix)

    def test_unknown_label_tag(self, summary):
        _, prefix = summary
        document = json.loads(prefix.with_suffix(".json").read_text())
        document["schema"][0]["labels"][0] = {"t": "alien", "v": 1}
        prefix.with_suffix(".json").write_text(json.dumps(document))
        with pytest.raises(ReproError, match="unknown label tag"):
            EntropySummary.load(prefix)


class TestDegenerateModels:
    def test_all_zero_parameters_rejected_by_engine(self):
        schema = Schema([integer_domain("a", 2), integer_domain("b", 2)])
        relation = Relation.from_rows(schema, [(0, 0), (1, 1)])
        statistic_set = StatisticSet.from_relation(relation)
        poly = CompressedPolynomial(statistic_set)
        params = ModelParameters(
            [np.zeros(2), np.zeros(2)], np.zeros(0)
        )
        with pytest.raises(SolverError, match="degenerate"):
            InferenceEngine(poly, params, 2)

    def test_negative_parameters_rejected(self):
        with pytest.raises(SolverError, match="non-negative"):
            ModelParameters([np.array([1.0, -0.1])], np.zeros(0))

    def test_inconsistent_statistics_surface_as_solver_error(self):
        """Statistics that contradict the cardinality collapse P to 0."""
        schema = Schema([integer_domain("a", 2), integer_domain("b", 2)])
        # n = 10 but attribute a claims all mass on value 0 while the 2D
        # statistic claims 10 rows at a = 1: infeasible.
        from repro.stats.statistic import range_statistic_2d

        statistic_set = StatisticSet(
            schema,
            10,
            [[10.0, 0.0], [5.0, 5.0]],
        )
        from repro.core.solver import MirrorDescentSolver

        statistic_set.multi_dim.append(
            range_statistic_2d(schema, "a", (1, 1), "b", (0, 1), 10.0)
        )
        poly = CompressedPolynomial(statistic_set)
        solver = MirrorDescentSolver(poly, max_iterations=20)
        params, report = solver.solve()
        # The solver cannot satisfy both; it must either flag failure
        # via the error trace or keep the model consistent (never
        # crash, never return a negative polynomial).
        assert report.final_error > 1e-3
        assert poly.evaluate(params) >= 0.0

    def test_uniform_init_evaluates_to_tuple_count(self):
        schema = Schema([integer_domain("a", 3), integer_domain("b", 5)])
        relation = Relation.from_rows(schema, [(0, 0)] * 5)
        statistic_set = StatisticSet.from_relation(relation)
        poly = CompressedPolynomial(statistic_set)
        assert poly.evaluate(initial_parameters(poly)) == pytest.approx(15.0)
