"""Tests for the binary wire protocol (:mod:`repro.serve.wire`).

Three layers: the value codec and frame parser in isolation (including
a Hypothesis encode→decode≡identity sweep over every opcode), the
request/response framing helpers, and socket-level round trips against
a live server — partial frames split across TCP writes, oversized and
version-mismatched frames, JSON and binary clients interleaved on one
port, and the strict-encoder 500 path.
"""

from __future__ import annotations

import json
import socket
import struct
import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import SummaryBuilder
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    SummaryServer,
    wire,
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def summary():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(7)
    relation = Relation(
        schema,
        [rng.choice(3, size=300, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, 300)],
    )
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(50)
        .name("wire-test")
        .fit()
    )


@pytest.fixture(scope="module")
def running(summary):
    server = SummaryServer(
        summary, config=ServeConfig(window_ms=1.0, cache_ttl=None)
    )
    with ServerThread(server) as live:
        yield live


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**63 - 1,
            -(2**63),
            0.0,
            3.5,
            float("inf"),
            "",
            "héllo",
            b"",
            b"\x00\xff",
            [],
            {},
            [1, "two", None, [True, 2.5]],
            {"a": 1, "b": {"c": [None, False]}, "d": "x"},
        ],
    )
    def test_round_trip(self, value):
        assert wire.unpackb(wire.packb(value)) == value

    def test_nan_round_trips(self):
        decoded = wire.unpackb(wire.packb(float("nan")))
        assert decoded != decoded  # NaN survives as NaN

    def test_float64_vector_round_trips_zero_copy(self):
        vector = np.array([1.5, -2.0, 0.0, 1e300])
        decoded = wire.unpackb(wire.packb(vector))
        assert isinstance(decoded, np.ndarray)
        assert decoded.dtype == np.float64
        np.testing.assert_array_equal(decoded, vector)
        # A decoded vector is a view over the frame bytes, not a copy.
        assert decoded.base is not None

    def test_numpy_scalars_decode_as_python_scalars(self):
        packed = wire.packb(
            {"i": np.int64(4), "f": np.float64(2.5), "b": np.bool_(True)}
        )
        assert wire.unpackb(packed) == {"i": 4, "f": 2.5, "b": True}

    def test_tuples_decode_as_lists(self):
        assert wire.unpackb(wire.packb((1, 2))) == [1, 2]

    def test_oversize_int_rejected(self):
        with pytest.raises(wire.WireError, match="64 bits"):
            wire.packb(2**63)

    def test_non_string_keys_rejected(self):
        with pytest.raises(wire.WireError, match="keys must be strings"):
            wire.packb({1: "x"})

    def test_matrix_rejected(self):
        with pytest.raises(wire.WireError, match="1-D"):
            wire.packb(np.zeros((2, 2)))

    def test_unserializable_type_rejected(self):
        with pytest.raises(wire.WireError, match="not wire-serializable"):
            wire.packb(object())

    def test_trailing_garbage_rejected(self):
        with pytest.raises(wire.WireError, match="trailing"):
            wire.unpackb(wire.packb(1) + b"x")

    def test_truncated_body_rejected(self):
        with pytest.raises(wire.WireError, match="truncated"):
            wire.unpackb(wire.packb("hello")[:-2])

    def test_unknown_tag_rejected(self):
        with pytest.raises(wire.WireError, match="unknown codec tag"):
            wire.unpackb(b"Z")


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCodecProperties:
    @given(value=_values)
    def test_encode_decode_is_identity(self, value):
        assert wire.unpackb(wire.packb(value)) == value

    @given(
        value=_values,
        opcode=st.sampled_from(wire.ALL_OPCODES),
        request_id=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    )
    def test_frame_round_trip_every_opcode(self, value, opcode, request_id):
        frame = wire.encode_frame(opcode, request_id, value)
        got_opcode, length, got_id = wire.decode_header(
            frame[: wire.HEADER_SIZE]
        )
        assert (got_opcode, got_id) == (opcode, request_id)
        body = frame[wire.HEADER_SIZE :]
        assert len(body) == length
        assert wire.unpackb(body) == value

    @given(
        value=_values,
        opcode=st.sampled_from(wire.ALL_OPCODES),
        chunk=st.integers(min_value=1, max_value=7),
    )
    def test_decoder_reassembles_any_chunking(self, value, opcode, chunk):
        frame = wire.encode_frame(opcode, 42, value)
        decoder = wire.FrameDecoder()
        frames = []
        for start in range(0, len(frame), chunk):
            frames.extend(decoder.feed(frame[start : start + chunk]))
        assert frames == [(opcode, 42, value)]
        assert decoder.pending_bytes == 0


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

class TestFrames:
    def test_bad_magic_rejected(self):
        header = b"XX" + wire.encode_frame(wire.OP_PING, 1, {})[2:16]
        with pytest.raises(wire.WireError, match="magic"):
            wire.decode_header(header)

    def test_version_mismatch_names_both_versions(self):
        header = struct.Struct(">2sBBIq").pack(
            wire.MAGIC, wire.WIRE_VERSION + 1, wire.OP_PING, 0, 1
        )
        with pytest.raises(wire.WireVersionError) as caught:
            wire.decode_header(header)
        assert str(wire.WIRE_VERSION + 1) in str(caught.value)
        assert str(wire.WIRE_VERSION) in str(caught.value)

    def test_oversized_declared_length_rejected(self):
        header = struct.Struct(">2sBBIq").pack(
            wire.MAGIC, wire.WIRE_VERSION, wire.OP_PING, wire.MAX_BODY + 1, 1
        )
        with pytest.raises(wire.WireError, match="MAX_BODY"):
            wire.decode_header(header)

    def test_oversized_body_rejected_at_encode(self):
        with pytest.raises(wire.WireError, match="MAX_BODY"):
            wire.encode_frame(
                wire.OP_REPLY, 1, b"x" * (wire.MAX_BODY + 1)
            )

    def test_unknown_opcode_rejected(self):
        header = struct.Struct(">2sBBIq").pack(
            wire.MAGIC, wire.WIRE_VERSION, 0x7F, 0, 1
        )
        with pytest.raises(wire.WireError, match="opcode"):
            wire.decode_header(header)

    def test_decoder_streams_multiple_frames_byte_by_byte(self):
        stream = b"".join(
            wire.encode_frame(wire.OP_REPLY, index, {"n": index})
            for index in range(3)
        )
        decoder = wire.FrameDecoder()
        frames = []
        for index in range(len(stream)):
            frames.extend(decoder.feed(stream[index : index + 1]))
        assert frames == [
            (wire.OP_REPLY, 0, {"n": 0}),
            (wire.OP_REPLY, 1, {"n": 1}),
            (wire.OP_REPLY, 2, {"n": 2}),
        ]

    def test_truncated_frame_is_half_a_header(self):
        stub = wire.truncated_frame()
        assert len(stub) == wire.HEADER_SIZE // 2
        assert stub.startswith(wire.MAGIC)


class TestRequests:
    @pytest.mark.parametrize("op", sorted(wire.OPCODE_OF_OP))
    def test_known_ops_round_trip(self, op):
        frame = wire.encode_request({"op": op, "sql": "SELECT 1"}, 9)
        opcode, length, request_id = wire.decode_header(
            frame[: wire.HEADER_SIZE]
        )
        assert opcode == wire.OPCODE_OF_OP[op]
        assert request_id == 9
        request = wire.decode_request(opcode, frame[wire.HEADER_SIZE :])
        assert request == {"op": op, "sql": "SELECT 1"}

    def test_unknown_op_travels_as_generic_request(self):
        frame = wire.encode_request({"op": "explain", "sql": "x"}, 2)
        opcode, _, _ = wire.decode_header(frame[: wire.HEADER_SIZE])
        assert opcode == wire.OP_REQUEST
        request = wire.decode_request(opcode, frame[wire.HEADER_SIZE :])
        assert request == {"op": "explain", "sql": "x"}

    def test_generic_request_without_op_rejected(self):
        body = wire.packb({"sql": "x"})
        with pytest.raises(wire.WireError, match="missing 'op'"):
            wire.decode_request(wire.OP_REQUEST, body)

    def test_response_opcode_is_not_a_request(self):
        with pytest.raises(wire.WireError, match="not a request"):
            wire.decode_request(wire.OP_REPLY, wire.packb({}))

    def test_client_id_field_stays_out_of_the_body(self):
        frame = wire.encode_request({"id": 7, "op": "ping"}, 7)
        request = wire.decode_request(
            wire.OP_PING, frame[wire.HEADER_SIZE :]
        )
        assert "id" not in request


# ----------------------------------------------------------------------
# Result views and the strict JSON encoder
# ----------------------------------------------------------------------

class TestViews:
    PACKED = {
        "kind": "rows",
        "group_by": ["state"],
        "labels": [["CA"], ["NY"]],
        "counts": np.array([10.0, 4.0]),
    }

    def test_rows_view_renders_documented_shape(self):
        assert wire.rows_view(self.PACKED) == {
            "kind": "rows",
            "group_by": ["state"],
            "rows": [["CA", 10.0], ["NY", 4.0]],
        }

    def test_client_view_passes_scalars_through(self):
        payload = {"kind": "scalar", "value": 3.0}
        assert wire.client_view(payload) is payload

    def test_jsonify_converts_nested_packed_rows(self):
        encoded = wire.encode_json_line(
            {"ok": True, "results": [self.PACKED]}
        )
        decoded = json.loads(encoded)
        assert decoded["results"][0]["rows"] == [["CA", 10.0], ["NY", 4.0]]

    def test_jsonify_rejects_unknown_types(self):
        with pytest.raises(wire.WireError, match="not wire-serializable"):
            wire.encode_json_line({"ok": True, "result": object()})

    def test_jsonify_rejects_non_string_keys(self):
        with pytest.raises(wire.WireError, match="keys must be strings"):
            wire.encode_json_line({"ok": True, "result": {1: 2}})


# ----------------------------------------------------------------------
# Socket-level round trips against a live server
# ----------------------------------------------------------------------

def _recv_frame(sock) -> tuple[int, int, object]:
    data = b""
    while len(data) < wire.HEADER_SIZE:
        chunk = sock.recv(wire.HEADER_SIZE - len(data))
        if not chunk:
            raise ConnectionError("closed before header")
        data += chunk
    opcode, length, request_id = wire.decode_header(data)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            raise ConnectionError("closed mid-body")
        body += chunk
    return opcode, request_id, wire.unpackb(body)


class TestServerBinary:
    def test_ping_stats_describe_reload_round_trip(self, running):
        with ServeClient(port=running.port) as client:
            assert client.protocol == "binary"
            assert client.ping() == {"version": 0}
            assert "cache" in client.stats()
            assert client.describe()["name"] == "wire-test"

    def test_grouped_query_matches_json_protocol(self, running):
        sql = "SELECT COUNT(*) FROM R GROUP BY state"
        with ServeClient(port=running.port) as binary:
            with ServeClient(port=running.port, protocol="json") as debug:
                assert binary.query(sql) == debug.query(sql)

    def test_query_batch_answers_in_order(self, running):
        sqls = [
            "SELECT COUNT(*) FROM R",
            "SELECT COUNT(*) FROM R GROUP BY state",
            "SELECT COUNT(*) FROM R WHERE hour >= 2",
        ]
        with ServeClient(port=running.port) as client:
            batch = client.query_many(sqls)
            singles = [client.query(sql) for sql in sqls]
        assert batch == singles

    def test_unknown_op_maps_to_400(self, running):
        with ServeClient(port=running.port) as client:
            with pytest.raises(ServeError, match="unknown op") as caught:
                client.call("explain", sql="SELECT COUNT(*) FROM R")
            assert caught.value.status == 400

    def test_partial_frames_across_tcp_writes(self, running):
        frame = wire.encode_request({"op": "ping"}, 5)
        with socket.create_connection(
            ("127.0.0.1", running.port), timeout=10
        ) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            for index in range(len(frame)):
                sock.sendall(frame[index : index + 1])
                if index % 7 == 0:
                    time.sleep(0.001)
            opcode, reply_id, payload = _recv_frame(sock)
        assert opcode == wire.OP_REPLY
        # The low 32 bits echo the request id; the bits above carry the
        # server's trace hint (see wire.pack_trace_hint).
        echo_id, trace_hint = wire.split_trace_hint(reply_id)
        assert echo_id == 5
        assert trace_hint > 0
        assert payload["result"] == "pong"

    def test_version_mismatch_answered_then_closed(self, running):
        header = struct.Struct(">2sBBIq").pack(
            wire.MAGIC, wire.WIRE_VERSION + 1, wire.OP_PING, 0, 3
        )
        with socket.create_connection(
            ("127.0.0.1", running.port), timeout=10
        ) as sock:
            sock.sendall(header)
            opcode, request_id, payload = _recv_frame(sock)
            assert opcode == wire.OP_ERROR
            assert payload["status"] == 400
            assert "version" in payload["error"]
            assert sock.recv(1) == b""  # then the connection closes

    def test_oversized_frame_rejected_cleanly(self, running):
        header = struct.Struct(">2sBBIq").pack(
            wire.MAGIC, wire.WIRE_VERSION, wire.OP_PING, wire.MAX_BODY + 1, 3
        )
        with socket.create_connection(
            ("127.0.0.1", running.port), timeout=10
        ) as sock:
            sock.sendall(header)
            opcode, _, payload = _recv_frame(sock)
            assert opcode == wire.OP_ERROR
            assert payload["status"] == 400
            assert "MAX_BODY" in payload["error"]
            assert sock.recv(1) == b""

    def test_bad_body_answers_400_and_connection_survives(self, running):
        bad = struct.Struct(">2sBBIq").pack(
            wire.MAGIC, wire.WIRE_VERSION, wire.OP_PING, 3, 8
        ) + b"\xff\xff\xff"
        with socket.create_connection(
            ("127.0.0.1", running.port), timeout=10
        ) as sock:
            sock.sendall(bad)
            opcode, request_id, payload = _recv_frame(sock)
            assert (opcode, request_id) == (wire.OP_ERROR, 8)
            assert payload["status"] == 400
            # Stream is still frame-aligned: the next request works.
            sock.sendall(wire.encode_request({"op": "ping"}, 9))
            opcode, reply_id, payload = _recv_frame(sock)
            assert opcode == wire.OP_REPLY
            assert wire.split_trace_hint(reply_id)[0] == 9
            assert payload["result"] == "pong"

    def test_json_and_binary_clients_interleave_on_one_port(self, running):
        sql = "SELECT COUNT(*) FROM R WHERE state = 'CA'"
        with ServeClient(port=running.port) as binary:
            with ServeClient(port=running.port, protocol="json") as debug:
                for _ in range(3):
                    assert binary.query(sql) == debug.query(sql)
                    assert debug.ping() == binary.ping()

    def test_strict_encoder_maps_to_500_on_both_protocols(self, summary):
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=1.0, cache_ttl=None)
        )
        server.stats = lambda: {"bad": object()}  # type: ignore[method-assign]
        with ServerThread(server) as live:
            for protocol in ("binary", "json"):
                with ServeClient(port=live.port, protocol=protocol) as client:
                    with pytest.raises(
                        ServeError, match="not serializable"
                    ) as caught:
                        client.stats()
                    assert caught.value.status == 500

    def test_binary_disabled_closes_binary_clients(self, summary):
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=1.0, binary=False)
        )
        with ServerThread(server) as live:
            with pytest.raises(ServeError):
                with ServeClient(port=live.port) as client:
                    client.ping()
            with ServeClient(port=live.port, protocol="json") as client:
                assert client.ping() == {"version": 0}
