"""Tests for the sampling baselines (uniform + stratified)."""

import numpy as np
import pytest

from repro.baselines.sampling import WeightedSampleBackend
from repro.baselines.stratified import _house_allocation_cap, stratified_sample
from repro.baselines.uniform import uniform_sample
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError
from repro.stats.predicates import Conjunction, RangePredicate


@pytest.fixture
def relation():
    schema = Schema([integer_domain("g", 5), integer_domain("v", 8)])
    rng = np.random.default_rng(17)
    # Skewed group sizes: group 0 huge, group 4 tiny.
    sizes = [4000, 800, 150, 40, 10]
    g = np.concatenate([np.full(size, index) for index, size in enumerate(sizes)])
    v = rng.integers(0, 8, g.shape[0])
    return Relation(schema, [g, v])


class TestUniform:
    def test_sample_size_fraction(self, relation):
        sample = uniform_sample(relation, fraction=0.01, seed=1)
        assert sample.num_rows == 50

    def test_sample_size_absolute(self, relation):
        sample = uniform_sample(relation, size=100, seed=1)
        assert sample.num_rows == 100

    def test_total_estimate_exact(self, relation):
        sample = uniform_sample(relation, fraction=0.05, seed=1)
        trivial = Conjunction(relation.schema, {})
        assert sample.count(trivial) == pytest.approx(relation.num_rows)

    def test_unbiased_over_seeds(self, relation):
        predicate = Conjunction(relation.schema, {"g": RangePredicate.point(1)})
        true = relation.count_where(predicate.attribute_masks())
        estimates = [
            uniform_sample(relation, fraction=0.05, seed=seed).count(predicate)
            for seed in range(30)
        ]
        assert np.mean(estimates) == pytest.approx(true, rel=0.15)

    def test_misses_rare_groups(self, relation):
        # The motivating failure of uniform sampling: tiny strata vanish.
        predicate = Conjunction(relation.schema, {"g": RangePredicate.point(4)})
        zero_estimates = sum(
            1
            for seed in range(20)
            if uniform_sample(relation, fraction=0.01, seed=seed).count(predicate)
            == 0.0
        )
        assert zero_estimates > 5

    def test_argument_validation(self, relation):
        with pytest.raises(ReproError):
            uniform_sample(relation)
        with pytest.raises(ReproError):
            uniform_sample(relation, fraction=0.5, size=10)
        with pytest.raises(ReproError):
            uniform_sample(relation, fraction=1.5)
        with pytest.raises(ReproError):
            uniform_sample(relation, size=0)


class TestHouseAllocation:
    def test_cap_within_budget(self):
        sizes = np.array([100, 50, 10, 5])
        cap = _house_allocation_cap(sizes, 60)
        assert np.minimum(sizes, cap).sum() <= 60
        assert np.minimum(sizes, cap + 1).sum() > 60

    def test_cap_covers_all_when_budget_large(self):
        sizes = np.array([10, 20])
        assert _house_allocation_cap(sizes, 100) == 20


class TestStratified:
    def test_rare_strata_survive(self, relation):
        sample = stratified_sample(relation, ["g"], fraction=0.01, seed=2)
        predicate = Conjunction(relation.schema, {"g": RangePredicate.point(4)})
        # Group 4 has 10 rows; stratified keeps some and weights them.
        assert sample.count(predicate) == pytest.approx(10.0)

    def test_stratum_totals_exact(self, relation):
        # Per-stratum weighted counts reproduce the stratum sizes exactly.
        sample = stratified_sample(relation, ["g"], size=200, seed=3)
        for group in range(5):
            predicate = Conjunction(
                relation.schema, {"g": RangePredicate.point(group)}
            )
            true = relation.count_where(predicate.attribute_masks())
            assert sample.count(predicate) == pytest.approx(true)

    def test_budget_respected(self, relation):
        sample = stratified_sample(relation, ["g"], size=100, seed=4)
        assert sample.num_rows <= 100

    def test_pair_stratification(self, relation):
        sample = stratified_sample(relation, ["g", "v"], size=300, seed=5)
        assert sample.num_rows <= 300
        trivial = Conjunction(relation.schema, {})
        assert sample.count(trivial) == pytest.approx(relation.num_rows)

    def test_requires_attrs(self, relation):
        with pytest.raises(ReproError):
            stratified_sample(relation, [], size=10)

    def test_default_name(self, relation):
        sample = stratified_sample(relation, ["g"], size=10, seed=1)
        assert sample.name == "Strat(g)"


class TestWeightedBackend:
    def test_group_counts_match_weighted_sums(self, relation):
        sample = stratified_sample(relation, ["g"], size=200, seed=6)
        grouped = sample.group_counts(["g"], None)
        for group in range(5):
            predicate = Conjunction(
                relation.schema, {"g": RangePredicate.point(group)}
            )
            assert grouped[(group,)] == pytest.approx(sample.count(predicate))

    def test_group_counts_with_predicate(self, relation):
        sample = uniform_sample(relation, fraction=0.2, seed=7)
        predicate = Conjunction(relation.schema, {"v": RangePredicate(0, 3)})
        grouped = sample.group_counts(["g"], predicate)
        total = sum(grouped.values())
        assert total == pytest.approx(sample.count(predicate))

    def test_empty_group_counts(self, relation):
        sample = uniform_sample(relation, size=10, seed=8)
        predicate = Conjunction(relation.schema, {"v": RangePredicate(0, 7)})
        # A predicate nothing matches: filter on an empty value set is
        # impossible by construction, so instead check no-rows path via
        # a group whose rows were not sampled.
        grouped = sample.group_counts(["g"], predicate)
        assert sum(grouped.values()) == pytest.approx(
            sample.count(predicate)
        )

    def test_weight_validation(self, relation):
        sample = relation.sample_rows(np.arange(10))
        with pytest.raises(ReproError):
            WeightedSampleBackend(sample, np.ones(5))
        with pytest.raises(ReproError):
            WeightedSampleBackend(sample, np.zeros(10))

    def test_storage_bytes(self, relation):
        sample = uniform_sample(relation, size=100, seed=9)
        assert sample.storage_bytes() == 100 * 3 * 8
