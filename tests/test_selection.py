"""Unit tests for attribute-pair selection strategies (Sec 4.3)."""

import numpy as np
import pytest

from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import BudgetError
from repro.stats.selection import (
    build_statistic_set,
    choose_pairs_by_correlation,
    choose_pairs_by_cover,
    select_statistics,
)

# The paper's example: pairs ranked BC > AB > CD > AD; with Ba = 2,
# correlation picks {BC, AB}, cover picks {BC, AD} or {AB, CD}-style
# complements (the first pair is the top-ranked, the second must add
# two new attributes).
RANKED = [
    ((1, 2), 0.9),  # BC
    ((0, 1), 0.8),  # AB
    ((2, 3), 0.7),  # CD
    ((0, 3), 0.6),  # AD
]


class TestChoosePairs:
    def test_correlation_strategy_matches_paper_example(self):
        assert choose_pairs_by_correlation(RANKED, 2) == [(1, 2), (0, 1)]

    def test_cover_strategy_matches_paper_example(self):
        # BC first (2 new attrs), then AD (the only pair adding 2 more).
        assert choose_pairs_by_cover(RANKED, 2) == [(1, 2), (0, 3)]

    def test_correlation_skips_fully_covered_pairs(self):
        ranked = [((0, 1), 0.9), ((0, 1), 0.8)]
        # Second pair covers no new attribute -> skipped.
        assert choose_pairs_by_correlation(ranked, 2) == [(0, 1)]

    def test_cover_falls_back_to_correlation_ties(self):
        ranked = [((0, 1), 0.9), ((2, 3), 0.5), ((1, 2), 0.8)]
        chosen = choose_pairs_by_cover(ranked, 3)
        assert chosen[0] == (0, 1)
        assert chosen[1] == (2, 3)  # adds 2 attrs, beats (1,2) adding 1
        assert chosen[2] == (1, 2)

    def test_invalid_num_pairs(self):
        with pytest.raises(BudgetError):
            choose_pairs_by_cover(RANKED, 0)
        with pytest.raises(BudgetError):
            choose_pairs_by_correlation(RANKED, 0)


@pytest.fixture
def correlated_relation():
    schema = Schema(
        [
            integer_domain("w", 4),
            integer_domain("x", 4),
            integer_domain("y", 4),
            integer_domain("z", 4),
        ]
    )
    rng = np.random.default_rng(12)
    w = rng.integers(0, 4, 2000)
    x = (w + rng.integers(0, 2, 2000)) % 4  # strongly tied to w
    y = rng.integers(0, 4, 2000)
    z = (y + rng.integers(0, 2, 2000)) % 4  # strongly tied to y
    return Relation(schema, [w, x, y, z])


class TestSelectStatistics:
    def test_end_to_end_selection(self, correlated_relation):
        stats = select_statistics(
            correlated_relation, budget=8, num_pairs=2, strategy="cover"
        )
        assert stats
        pairs = {stat.positions for stat in stats}
        assert pairs == {(0, 1), (2, 3)}
        # Budget split evenly: 4 rectangles per pair at most.
        assert len(stats) <= 8

    def test_exclude_attrs(self, correlated_relation):
        stats = select_statistics(
            correlated_relation,
            budget=8,
            num_pairs=2,
            exclude_attrs=["w"],
        )
        assert all(0 not in stat.positions for stat in stats)

    def test_unknown_strategy(self, correlated_relation):
        with pytest.raises(BudgetError, match="unknown strategy"):
            select_statistics(
                correlated_relation, budget=8, num_pairs=2, strategy="best"
            )

    def test_budget_must_fund_pairs(self, correlated_relation):
        with pytest.raises(BudgetError):
            select_statistics(correlated_relation, budget=1, num_pairs=2)

    def test_all_uniform_returns_empty(self):
        schema = Schema([integer_domain("p", 3), integer_domain("q", 3)])
        rng = np.random.default_rng(5)
        relation = Relation(
            schema,
            [rng.integers(0, 3, 5000), rng.integers(0, 3, 5000)],
        )
        stats = select_statistics(relation, budget=4, num_pairs=1)
        assert stats == []


class TestBuildStatisticSet:
    def test_explicit_pairs(self, correlated_relation):
        statistic_set = build_statistic_set(
            correlated_relation,
            pairs=[("w", "x")],
            per_pair_budget=4,
        )
        assert statistic_set.num_multi_dim <= 4
        assert statistic_set.attribute_pairs() == {(0, 1)}

    def test_no_pairs_gives_one_dim_only(self, correlated_relation):
        statistic_set = build_statistic_set(correlated_relation)
        assert statistic_set.num_multi_dim == 0
        assert statistic_set.num_one_dim == 16

    def test_explicit_pairs_need_budget(self, correlated_relation):
        with pytest.raises(BudgetError, match="per_pair_budget"):
            build_statistic_set(correlated_relation, pairs=[("w", "x")])

    def test_budget_divided_across_pairs(self, correlated_relation):
        statistic_set = build_statistic_set(
            correlated_relation,
            pairs=[("w", "x"), ("y", "z")],
            budget=8,
        )
        per_pair = {}
        for stat in statistic_set.multi_dim:
            per_pair.setdefault(stat.positions, 0)
            per_pair[stat.positions] += 1
        assert all(count <= 4 for count in per_pair.values())
