"""Unit tests for the LARGE / ZERO / COMPOSITE selection heuristics."""

import numpy as np
import pytest

from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import BudgetError
from repro.stats.heuristics import (
    composite,
    large_single_cell,
    select_pair_statistics,
    zero_single_cell,
)


@pytest.fixture
def relation():
    schema = Schema([integer_domain("a", 4), integer_domain("b", 4)])
    rng = np.random.default_rng(2)
    # Heavy diagonal plus noise; several empty cells.
    rows = []
    for value in range(4):
        rows.extend([(value, value)] * (20 * (value + 1)))
    rows.extend([(0, 1)] * 3 + [(1, 2)] * 2)
    rng.shuffle(rows)
    return Relation.from_rows(schema, rows)


class TestLarge:
    def test_picks_most_popular(self, relation):
        stats = large_single_cell(relation, "a", "b", 2)
        values = sorted(stat.value for stat in stats)
        counts = relation.contingency("a", "b")
        top2 = sorted(np.sort(counts, axis=None)[-2:].tolist())
        assert values == [float(v) for v in top2]

    def test_point_statistics(self, relation):
        stats = large_single_cell(relation, "a", "b", 3)
        for stat in stats:
            assert stat.range_at(0).is_point
            assert stat.range_at(1).is_point

    def test_values_match_data(self, relation):
        for stat in large_single_cell(relation, "a", "b", 5):
            assert stat.measure(relation) == stat.value

    def test_budget_capped_at_cells(self, relation):
        stats = large_single_cell(relation, "a", "b", 1000)
        assert len(stats) == 16


class TestZero:
    def test_selects_empty_cells_first(self, relation):
        counts = relation.contingency("a", "b")
        num_zero = int((counts == 0).sum())
        stats = zero_single_cell(relation, "a", "b", num_zero)
        assert all(stat.value == 0.0 for stat in stats)

    def test_fills_remainder_with_popular(self, relation):
        counts = relation.contingency("a", "b")
        num_zero = int((counts == 0).sum())
        stats = zero_single_cell(relation, "a", "b", num_zero + 2)
        zero_stats = [stat for stat in stats if stat.value == 0.0]
        nonzero_stats = [stat for stat in stats if stat.value > 0.0]
        assert len(zero_stats) == num_zero
        assert len(nonzero_stats) == 2
        assert max(stat.value for stat in nonzero_stats) == counts.max()

    def test_deterministic_with_seed(self, relation):
        first = zero_single_cell(relation, "a", "b", 3, seed=9)
        second = zero_single_cell(relation, "a", "b", 3, seed=9)
        assert [s.predicate for s in first] == [s.predicate for s in second]


class TestComposite:
    def test_disjoint_rectangles_cover_grid(self, relation):
        stats = composite(relation, "a", "b", 6)
        covered = np.zeros((4, 4), dtype=int)
        for stat in stats:
            a = stat.range_at(0)
            b = stat.range_at(1)
            covered[a.low : a.high + 1, b.low : b.high + 1] += 1
        assert (covered == 1).all()

    def test_counts_consistent(self, relation):
        stats = composite(relation, "a", "b", 6)
        assert sum(stat.value for stat in stats) == relation.num_rows
        for stat in stats:
            assert stat.measure(relation) == stat.value


class TestDispatch:
    def test_by_name(self, relation):
        for name in ("large", "zero", "composite"):
            stats = select_pair_statistics(relation, "a", "b", 4, name)
            assert stats

    def test_unknown_heuristic(self, relation):
        with pytest.raises(BudgetError, match="unknown heuristic"):
            select_pair_statistics(relation, "a", "b", 4, "magic")

    def test_invalid_budget(self, relation):
        with pytest.raises(BudgetError):
            large_single_cell(relation, "a", "b", 0)
