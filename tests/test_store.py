"""Tests for the versioned SummaryStore."""

import json

import numpy as np
import pytest

from repro.api import Explorer, SummaryBuilder, SummaryStore
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError


@pytest.fixture
def relation():
    schema = Schema(
        [Domain("g", ["a", "b"]), integer_domain("v", 5)]
    )
    rng = np.random.default_rng(11)
    return Relation(
        schema, [rng.integers(0, 2, 200), rng.integers(0, 5, 200)]
    )


@pytest.fixture
def summary(relation):
    return (
        SummaryBuilder(relation)
        .pairs(("g", "v"))
        .per_pair_budget(3)
        .iterations(30)
        .name("demo")
        .fit()
    )


@pytest.fixture
def store(tmp_path):
    return SummaryStore(tmp_path / "store")


class TestSaveLoadList:
    def test_round_trip(self, store, summary):
        record = store.save(summary)
        assert record.name == "demo"
        assert record.version == 1
        assert record.total == summary.total
        loaded = store.load("demo")
        assert loaded.total == summary.total
        assert (
            loaded.statistic_set.num_statistics
            == summary.statistic_set.num_statistics
        )
        original = Explorer.attach(summary).query().where(g="a").value()
        reloaded = Explorer.attach(loaded).query().where(g="a").value()
        assert reloaded == pytest.approx(original)

    def test_versions_increment(self, store, summary):
        assert store.save(summary).version == 1
        assert store.save(summary).version == 2
        assert store.save(summary).version == 3
        assert store.latest_version("demo") == 3
        assert [record.version for record in store.versions("demo")] == [1, 2, 3]

    def test_list_across_names(self, store, summary):
        store.save(summary, "alpha")
        store.save(summary, "beta")
        store.save(summary, "alpha")
        listed = [(record.name, record.version) for record in store.list()]
        assert listed == [("alpha", 1), ("alpha", 2), ("beta", 1)]
        assert len(store) == 2
        assert "alpha" in store
        assert "gamma" not in store

    def test_explicit_name_overrides_summary_name(self, store, summary):
        record = store.save(summary, "custom")
        assert record.name == "custom"
        assert store.has("custom")
        assert not store.has("demo")

    def test_unsafe_names_get_safe_directories(self, store, summary):
        record = store.save(summary, "Ent1&2&3 (coarse)")
        assert store.load("Ent1&2&3 (coarse)").total == summary.total
        assert "&" not in record.prefix
        assert "(" not in record.prefix

    def test_distinct_names_never_share_directories(self, store, summary):
        first = store.save(summary, "a&b")
        second = store.save(summary, "a_b")
        assert first.prefix.split("/")[0] != second.prefix.split("/")[0]


class TestTagsAndPinning:
    def test_load_by_tag_and_version(self, store, summary):
        store.save(summary, "demo", tag="first")
        store.save(summary, "demo", tag="second")
        assert store.record("demo", tag="first").version == 1
        assert store.record("demo", version=2).tag == "second"
        assert store.record("demo").version == 2  # latest by default

    def test_repeated_tag_resolves_to_newest(self, store, summary):
        store.save(summary, "demo", tag="best")
        store.save(summary, "demo", tag="best")
        assert store.record("demo", tag="best").version == 2

    def test_errors(self, store, summary):
        store.save(summary, "demo", tag="only")
        with pytest.raises(ReproError, match="no summary named"):
            store.load("missing")
        with pytest.raises(ReproError, match="no version 9"):
            store.load("demo", version=9)
        with pytest.raises(ReproError, match="tagged"):
            store.load("demo", tag="nope")
        with pytest.raises(ReproError, match="not both"):
            store.load("demo", version=1, tag="only")


class TestDelete:
    def test_delete_version(self, store, summary):
        store.save(summary, "demo")
        store.save(summary, "demo")
        store.delete("demo", version=1)
        assert [record.version for record in store.versions("demo")] == [2]
        # New saves continue above the highest ever used.
        assert store.save(summary, "demo").version == 3

    def test_delete_name_removes_everything(self, store, summary):
        record = store.save(summary, "demo")
        store.delete("demo")
        assert not store.has("demo")
        assert not (store.root / record.prefix).with_suffix(".json").exists()
        with pytest.raises(ReproError):
            store.delete("demo")


class TestManifest:
    def test_format_version_guard(self, store, summary):
        store.save(summary, "demo")
        manifest = json.loads((store.root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (store.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="format"):
            store.load("demo")

    def test_empty_store(self, store):
        assert store.list() == []
        assert len(store) == 0
        with pytest.raises(ReproError, match="empty store"):
            store.load("anything")

    def test_open_explorer_from_path(self, store, summary, tmp_path):
        store.save(summary, "demo")
        explorer = Explorer.open(store.root, "demo")
        assert explorer.summary.total == summary.total
