"""Tests for experiment configuration and the build cache."""

import pytest

from repro.errors import ReproError
from repro.experiments.configs import (
    COARSE_PAIRS,
    FINE_PAIRS,
    MAXENT_METHODS,
    PAPER,
    SMALL,
    ExperimentStore,
    active_scale,
    method_pair_budget,
    summary_pairs,
)


class TestScales:
    def test_paper_matches_fig4_budgets(self):
        # B = 3000: 1500 over 2 pairs, 1000 over 3 pairs.
        assert PAPER.budget_two_pairs == 750
        assert PAPER.budget_three_pairs == 333
        assert PAPER.fig2_budgets == (500, 1000, 2000)
        assert PAPER.sample_fraction == 0.01
        assert PAPER.solver_iterations == 30

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert active_scale() == SMALL
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert active_scale() == PAPER
        monkeypatch.delenv("REPRO_SCALE")
        assert active_scale() == PAPER

    def test_unknown_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ReproError, match="unknown REPRO_SCALE"):
            active_scale()

    def test_describe(self):
        assert "paper" in PAPER.describe()


class TestFig4Configuration:
    def test_pair_tables(self):
        assert COARSE_PAIRS[3] == ("fl_time", "distance")
        assert FINE_PAIRS[4] == ("origin_city", "dest_city")
        assert set(MAXENT_METHODS) == {"No2D", "Ent1&2", "Ent3&4", "Ent1&2&3"}

    def test_summary_pairs(self):
        assert summary_pairs("Ent1&2", "coarse") == [
            ("origin_state", "distance"),
            ("dest_state", "distance"),
        ]
        assert summary_pairs("No2D", "fine") == []
        assert summary_pairs("Ent1&2&3", "fine") == [
            ("origin_city", "distance"),
            ("dest_city", "distance"),
            ("fl_time", "distance"),
        ]

    def test_method_pair_budget(self):
        assert method_pair_budget("No2D", PAPER) == 0
        assert method_pair_budget("Ent1&2", PAPER) == 750
        assert method_pair_budget("Ent1&2&3", PAPER) == 333


class _TinyScale:
    pass


class TestStore:
    @pytest.fixture
    def store(self):
        from repro.experiments.configs import Scale

        tiny = Scale(
            name="tiny",
            flights_rows=2000,
            particles_rows_per_snapshot=1000,
            budget_two_pairs=10,
            budget_three_pairs=6,
            fig2_budgets=(8,),
            particles_pair_budget=6,
            particles_sample_rows=200,
            num_heavy=5,
            num_light=5,
            num_null=10,
            sample_fraction=0.05,
            solver_iterations=5,
        )
        return ExperimentStore(tiny)

    def test_dataset_caching(self, store):
        assert store.flights() is store.flights()
        assert store.particles() is store.particles()

    def test_flights_variants(self, store):
        assert store.flights_relation("coarse").schema.domain("origin_state")
        assert store.flights_relation("fine").schema.domain("origin_city")
        with pytest.raises(ReproError):
            store.flights_relation("medium")

    def test_summary_caching(self, store):
        first = store.flights_summary("No2D", "coarse")
        second = store.flights_summary("No2D", "coarse")
        assert first is second

    def test_disk_cache_round_trip(self, tmp_path):
        from repro.experiments.configs import Scale

        tiny = Scale(
            name="tiny",
            flights_rows=2000,
            particles_rows_per_snapshot=1000,
            budget_two_pairs=10,
            budget_three_pairs=6,
            fig2_budgets=(8,),
            particles_pair_budget=6,
            particles_sample_rows=200,
            num_heavy=5,
            num_light=5,
            num_null=10,
            sample_fraction=0.05,
            solver_iterations=5,
        )
        first_store = ExperimentStore(tiny, cache_dir=tmp_path)
        built = first_store.flights_summary("No2D", "coarse")
        second_store = ExperimentStore(tiny, cache_dir=tmp_path)
        loaded = second_store.flights_summary("No2D", "coarse")
        assert loaded.total == built.total
        # Persistence now goes through the versioned SummaryStore.
        assert (tmp_path / "manifest.json").exists()
        assert second_store.summary_store.has("tiny-flights-coarse-No2D")
        record = second_store.summary_store.record("tiny-flights-coarse-No2D")
        assert record.version == 1
        assert record.tag == "tiny"

    def test_sample_caching(self, store):
        assert store.flights_uniform("coarse") is store.flights_uniform("coarse")
        strat = store.flights_stratified(3, "coarse")
        assert strat.name == "Strat3"
