"""Tests for hierarchical summaries (Sec 7 future work)."""

import numpy as np
import pytest

from repro.core.hierarchy import HierarchicalSummary
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError, SchemaError
from repro.stats.predicates import Conjunction, RangePredicate, SetPredicate


CITIES = [
    ("WA", "Seattle"), ("WA", "Spokane"), ("WA", "Tacoma"),
    ("CA", "LA"), ("CA", "SF"), ("CA", "Fresno"), ("CA", "Oakland"),
    ("NY", "NYC"), ("NY", "Buffalo"),
]


@pytest.fixture(scope="module")
def relation():
    schema = Schema(
        [Domain("city", CITIES), integer_domain("hour", 5)]
    )
    rng = np.random.default_rng(31)
    weights = np.array([30, 6, 4, 40, 18, 3, 2, 25, 5], dtype=float)
    weights /= weights.sum()
    city = rng.choice(len(CITIES), size=4000, p=weights)
    hour = (city + rng.integers(0, 3, 4000)) % 5
    return Relation(schema, [city, hour])


@pytest.fixture(scope="module")
def hierarchy(relation):
    return HierarchicalSummary(
        relation,
        "city",
        coarsen=lambda label: label[0],  # city -> state
        coarse_kwargs={"max_iterations": 40, "pairs": [("city", "hour")],
                       "per_pair_budget": 6},
        leaf_kwargs={"max_iterations": 40},
    )


class TestConstruction:
    def test_groups(self, hierarchy):
        assert hierarchy.num_groups == 3
        assert hierarchy.leaf_builds == 0  # lazy

    def test_coarse_summary_built(self, hierarchy, relation):
        assert hierarchy.coarse.total == relation.num_rows

    def test_single_group_rejected(self, relation):
        with pytest.raises(SchemaError, match="two groups"):
            HierarchicalSummary(relation, "city", coarsen=lambda label: "all")


class TestCoarseRouting:
    def test_unconstrained_drill_uses_coarse(self, hierarchy, relation):
        predicate = Conjunction(relation.schema, {"hour": RangePredicate(0, 1)})
        estimate = hierarchy.count(predicate)
        truth = relation.count_where(predicate.attribute_masks())
        assert estimate.expectation == pytest.approx(truth, rel=0.15, abs=15)
        assert hierarchy.leaf_builds == 0

    def test_whole_group_selection_uses_coarse(self, hierarchy, relation):
        # All three WA cities = the whole WA group: no leaf needed.
        wa = [index for index, label in enumerate(CITIES) if label[0] == "WA"]
        predicate = Conjunction(
            relation.schema, {"city": SetPredicate(wa)}
        )
        before = hierarchy.leaf_builds
        estimate = hierarchy.count(predicate)
        truth = relation.count_where(predicate.attribute_masks())
        assert estimate.expectation == pytest.approx(truth, rel=0.1, abs=10)
        assert hierarchy.leaf_builds == before


class TestDrillDown:
    def test_single_city_builds_one_leaf(self, hierarchy, relation):
        predicate = Conjunction(
            relation.schema, {"city": RangePredicate.point(0)}  # Seattle
        )
        before = hierarchy.leaf_builds
        estimate = hierarchy.count(predicate)
        truth = relation.count_where(predicate.attribute_masks())
        assert estimate.expectation == pytest.approx(truth, rel=0.1, abs=10)
        assert hierarchy.leaf_builds == before + 1

    def test_leaf_cached(self, hierarchy, relation):
        predicate = Conjunction(
            relation.schema, {"city": RangePredicate.point(1)}  # Spokane (WA)
        )
        hierarchy.count(predicate)
        builds = hierarchy.leaf_builds
        hierarchy.count(predicate)
        assert hierarchy.leaf_builds == builds

    def test_cross_group_partial_selection(self, hierarchy, relation):
        # Seattle + LA: partial selections in two groups.
        predicate = Conjunction(
            relation.schema, {"city": SetPredicate([0, 3])}
        )
        estimate = hierarchy.count(predicate)
        truth = relation.count_where(predicate.attribute_masks())
        assert estimate.expectation == pytest.approx(truth, rel=0.1, abs=15)

    def test_drill_with_other_attribute(self, hierarchy, relation):
        predicate = Conjunction(
            relation.schema,
            {"city": RangePredicate.point(3), "hour": RangePredicate(3, 4)},
        )
        estimate = hierarchy.count(predicate)
        truth = relation.count_where(predicate.attribute_masks())
        # Leaf models capture within-group structure approximately.
        assert estimate.expectation == pytest.approx(truth, rel=0.5, abs=25)

    def test_partition_consistency(self, hierarchy, relation):
        # Drilled per-city estimates must sum approximately to n.
        total = sum(
            hierarchy.count(
                Conjunction(relation.schema, {"city": RangePredicate.point(i)})
            ).expectation
            for i in range(len(CITIES))
        )
        assert total == pytest.approx(relation.num_rows, rel=0.02)


class TestErrors:
    def test_wrong_schema(self, hierarchy):
        other = Schema([integer_domain("x", 3)])
        with pytest.raises(QueryError, match="fine schema"):
            hierarchy.count(Conjunction(other, {}))

    def test_unknown_group(self, hierarchy):
        with pytest.raises(QueryError, match="unknown group"):
            hierarchy.leaf("TX")
