"""Unit tests for repro.data.domain."""

import pytest

from repro.data.domain import Domain, integer_domain
from repro.errors import DomainError


class TestDomain:
    def test_size_and_labels(self):
        domain = Domain("state", ["CA", "NY", "WA"])
        assert domain.size == 3
        assert domain.labels == ["CA", "NY", "WA"]
        assert len(domain) == 3

    def test_index_label_round_trip(self):
        domain = Domain("state", ["CA", "NY", "WA"])
        for index, label in enumerate(domain.labels):
            assert domain.index_of(label) == index
            assert domain.label_of(index) == label

    def test_contains(self):
        domain = Domain("state", ["CA", "NY"])
        assert "CA" in domain
        assert "TX" not in domain

    def test_unknown_label_raises(self):
        domain = Domain("state", ["CA"])
        with pytest.raises(DomainError, match="not in the active domain"):
            domain.index_of("TX")

    def test_out_of_range_index_raises(self):
        domain = Domain("state", ["CA"])
        with pytest.raises(DomainError, match="out of range"):
            domain.label_of(5)
        with pytest.raises(DomainError):
            domain.label_of(-1)

    def test_empty_domain_rejected(self):
        with pytest.raises(DomainError, match="at least one value"):
            Domain("empty", [])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DomainError, match="duplicate"):
            Domain("state", ["CA", "CA"])

    def test_indices_of_preserves_order(self):
        domain = Domain("state", ["CA", "NY", "WA"])
        assert domain.indices_of(["WA", "CA"]) == [2, 0]

    def test_labels_returns_copy(self):
        domain = Domain("state", ["CA", "NY"])
        labels = domain.labels
        labels.append("XX")
        assert domain.size == 2

    def test_equality_and_hash(self):
        a = Domain("s", [1, 2, 3])
        b = Domain("s", [1, 2, 3])
        c = Domain("s", [3, 2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_iteration_yields_labels(self):
        domain = Domain("s", ["x", "y"])
        assert list(domain) == ["x", "y"]


class TestIntegerDomain:
    def test_basic(self):
        domain = integer_domain("d", 5)
        assert domain.size == 5
        assert domain.index_of(3) == 3

    def test_invalid_size(self):
        with pytest.raises(DomainError, match="positive size"):
            integer_domain("d", 0)
