"""Tests for the multi-worker serving tier (``repro.serve.cluster``).

Two layers:

* **Merge math, no processes** — the property tests drive the exact
  pipeline the frontend uses (``partial_item`` → per-worker
  ``ShardSlice.compute_partial`` → ``merge_partials``) over
  hypothesis-drawn shard→worker assignments, including replicas and
  dead-worker reassignment, and require the merged answers to equal
  the single-process planner's answers (within float-summation
  tolerance; degraded answers must flag themselves and widen bounds).
* **Real processes** — a :class:`ClusterCoordinator` with spawned
  workers: client parity with a single-process server, a mid-traffic
  worker kill with zero dropped requests, respawn, hot reload under
  traffic, and ephemeral-port discipline.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Explorer, SummaryBuilder, SummaryStore
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError, ReproError
from repro.serve import (
    ClusterCoordinator,
    ServeClient,
    ServeConfig,
    ServerThread,
    SummaryServer,
    run_load,
)
from repro.serve.cluster import (
    HashRing,
    ShardSlice,
    compute_partial,
    merge_partials,
    partial_item,
)
from repro.serve.server import result_payload

# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

NUM_SHARDS = 4

QUERIES = [
    "SELECT COUNT(*) FROM R",
    "SELECT COUNT(*) FROM R WHERE state = 'CA'",
    "SELECT COUNT(*) FROM R WHERE hour >= 3 AND state != 'NY'",
    "SELECT COUNT(*) FROM R WHERE hour BETWEEN 2 AND 9",
    "SELECT SUM(hour) FROM R WHERE state = 'WA'",
    "SELECT AVG(hour) FROM R WHERE state IN ('CA', 'NY')",
    "SELECT state, COUNT(*) FROM R GROUP BY state ORDER BY cnt DESC",
    "SELECT hour, COUNT(*) FROM R WHERE state = 'CA' GROUP BY hour LIMIT 3",
]


def _relation(rows: int = 900, seed: int = 7) -> Relation:
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 16)]
    )
    rng = np.random.default_rng(seed)
    return Relation(
        schema,
        [
            rng.choice(3, size=rows, p=[0.5, 0.3, 0.2]),
            rng.integers(0, 16, rows),
        ],
    )


def _fit(relation, name: str = "cluster-test"):
    return (
        SummaryBuilder(relation)
        .shards(NUM_SHARDS, by="hour", workers=1)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(40)
        .name(name)
        .fit()
    )


@pytest.fixture(scope="module")
def summary():
    return _fit(_relation())


@pytest.fixture(scope="module")
def explorer(summary):
    return Explorer.attach(summary)


@pytest.fixture(scope="module")
def single_payloads(explorer):
    """Single-process ground truth, one payload per query."""
    payloads = {}
    for sql in QUERIES:
        plan = explorer.plan(sql)
        payloads[sql] = result_payload(explorer.planner.execute(plan))
    return payloads


def _norm(payload: dict) -> dict:
    return {
        key: (value.tolist() if isinstance(value, np.ndarray) else value)
        for key, value in payload.items()
    }


def _close(a, b, tol=1e-6):
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= tol * (1.0 + abs(a) + abs(b))
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_close(x, y, tol) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_close(a[k], b[k], tol) for k in a)
    return a == b


def _frontend_merge(summary, explorer, sql, assignment, live):
    """The coordinator's routing + merge pipeline, inline (no
    processes): route each live shard to the first live owner, compute
    per-worker partials over one ShardSlice each, merge.  Returns the
    merged payload.  ``assignment[shard]`` lists owner workers;
    ``live`` is the set of live worker ids."""
    plan = explorer.plan(sql)
    assert plan.route.target == "sharded"
    spec = partial_item(plan)
    live_shards = plan.route.detail.get("live_shards", ())
    batches: dict[int, set] = {}
    degraded = []
    for shard in live_shards:
        owners = [wid for wid in assignment[shard] if wid in live]
        if not owners:
            degraded.append(summary.shards[shard].total)
            continue
        batches.setdefault(owners[0], set()).add(shard)
    workers: dict[int, list] = {}
    for shard, owner_list in enumerate(assignment):
        for wid in owner_list:
            workers.setdefault(wid, []).append(shard)
    partials = []
    for wid, shards in batches.items():
        shard_slice = ShardSlice.from_summary(summary, sorted(workers[wid]))
        item = dict(spec)
        item["shards"] = sorted(shards)
        partials.append(compute_partial(shard_slice, item))
    return merge_partials(
        plan,
        spec,
        partials,
        degraded_totals=degraded,
        total=summary.total,
    )


# ----------------------------------------------------------------------
# Merge math (no processes)
# ----------------------------------------------------------------------

def assignments(num_workers=st.integers(2, 4)):
    """Shard→owners assignments: every shard owned by a non-empty
    subset of workers (order = replica preference)."""

    def build(workers):
        owners = st.lists(
            st.sampled_from(range(workers)),
            min_size=1,
            max_size=workers,
            unique=True,
        )
        return st.tuples(
            st.just(workers),
            st.lists(owners, min_size=NUM_SHARDS, max_size=NUM_SHARDS),
        )

    return num_workers.flatmap(build)


class TestMergeMath:
    @settings(max_examples=20, deadline=None)
    @given(case=assignments(), sql=st.sampled_from(QUERIES))
    def test_any_assignment_matches_single_process(
        self, summary, explorer, single_payloads, case, sql
    ):
        """All workers live: merged == single-process, any assignment."""
        workers, assignment = case
        merged = _frontend_merge(
            summary, explorer, sql, assignment, live=set(range(workers))
        )
        assert _close(_norm(merged), _norm(single_payloads[sql])), (
            sql,
            assignment,
        )

    @settings(max_examples=20, deadline=None)
    @given(
        case=assignments(num_workers=st.integers(2, 4)),
        dead=st.integers(0, 3),
        sql=st.sampled_from(QUERIES),
    )
    def test_dead_worker_reassignment_stays_exact_when_covered(
        self, summary, explorer, single_payloads, case, dead, sql
    ):
        """One worker down: shards it served fall to surviving owners.
        If every shard still has a live owner the answer is exact."""
        workers, assignment = case
        live = set(range(workers)) - {dead % workers}
        if not all(any(w in live for w in owners) for owners in assignment):
            return  # uncovered case: exercised by the degraded tests
        merged = _frontend_merge(summary, explorer, sql, assignment, live)
        assert _close(_norm(merged), _norm(single_payloads[sql])), (
            sql,
            assignment,
            live,
        )

    def test_uncovered_shard_degrades_with_wider_bounds(
        self, summary, explorer, single_payloads
    ):
        """A live shard with no live owner: the merged COUNT is flagged
        degraded, the missing shard contributes its uniform prior, and
        the interval widens beyond the exact answer's."""
        sql = "SELECT COUNT(*) FROM R"
        assignment = [[0], [0], [1], [1]]
        merged = _frontend_merge(
            summary, explorer, sql, assignment, live={0}
        )
        assert merged.get("degraded") is True
        exact = single_payloads[sql]
        lost = sum(summary.shards[s].total for s in (2, 3))
        width = merged["ci95"][1] - merged["ci95"][0]
        exact_width = exact["ci95"][1] - exact["ci95"][0]
        assert width > exact_width
        # the degraded prior is centred on half the lost rows
        assert merged["value"] == pytest.approx(
            exact["value"] - lost / 2.0, rel=0.25
        )

    def test_fully_uncovered_avg_is_a_query_error_only_when_empty(
        self, summary, explorer
    ):
        """AVG still answers under degradation (the count prior is
        positive); a contradiction stays a QueryError."""
        merged = _frontend_merge(
            summary,
            explorer,
            "SELECT AVG(hour) FROM R WHERE state IN ('CA', 'NY')",
            [[0], [0], [1], [1]],
            live={0},
        )
        assert merged.get("degraded") is True
        assert merged["value"] == pytest.approx(
            merged["value"]
        )  # finite, no exception

    def test_error_partial_raises_query_error(self, summary, explorer):
        plan = explorer.plan("SELECT COUNT(*) FROM R")
        spec = partial_item(plan)
        with pytest.raises(QueryError, match="boom"):
            merge_partials(
                plan,
                spec,
                [{"kind": "error", "error": "boom"}],
                total=summary.total,
            )

    def test_group_merge_applies_order_and_limit_globally(
        self, summary, explorer, single_payloads
    ):
        """Per-worker truncation would get global top-k wrong; the
        merge must sort/limit only after combining workers."""
        sql = "SELECT hour, COUNT(*) FROM R WHERE state = 'CA' GROUP BY hour LIMIT 3"
        merged = _frontend_merge(
            summary, explorer, sql, [[0], [1], [0], [1]], live={0, 1}
        )
        assert _close(_norm(merged), _norm(single_payloads[sql]))
        assert len(merged["labels"]) <= 3


class TestShardSlice:
    def test_slice_evaluates_only_requested_owned_shards(self, summary):
        shard_slice = ShardSlice.from_summary(summary, [0, 1])
        full_e, full_v = shard_slice.count(None)
        sub_e, sub_v = shard_slice.count(None, shards=[0])
        other_e, other_v = shard_slice.count(None, shards=[1])
        assert full_e == pytest.approx(sub_e + other_e)
        assert full_v == pytest.approx(sub_v + other_v)
        assert 0 < sub_e < full_e
        # unknown / unowned shard indices are ignored, not an error
        none_e, none_v = shard_slice.count(None, shards=[3])
        assert (none_e, none_v) == (0.0, 0.0)

    def test_slice_requires_aligned_metadata(self, summary):
        with pytest.raises(ReproError, match="one global index"):
            ShardSlice(
                summary.shards[:2], [0], summary.schema,
                by_pos=summary.by_position,
            )


class TestHashRing:
    def test_preference_is_deterministic_and_complete(self):
        ring = HashRing(range(4))
        order1 = ring.preferred("key-a", [0, 1, 2, 3])
        order2 = ring.preferred("key-a", [0, 1, 2, 3])
        assert order1 == order2
        assert sorted(order1) == [0, 1, 2, 3]

    def test_distinct_keys_spread_over_workers(self):
        ring = HashRing(range(4))
        firsts = {
            ring.preferred(f"key-{i}", [0, 1, 2, 3])[0] for i in range(64)
        }
        assert len(firsts) == 4

    def test_subset_preference_is_stable_under_removal(self):
        """Removing a worker only remaps keys it served (the point of
        consistent hashing)."""
        ring = HashRing(range(4))
        for i in range(32):
            full = ring.preferred(f"key-{i}", [0, 1, 2, 3])
            without = ring.preferred(
                f"key-{i}", [w for w in (0, 1, 2, 3) if w != full[0]]
            )
            assert without == [w for w in full if w != full[0]]


# ----------------------------------------------------------------------
# Real worker processes
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def cluster(summary):
    # cache_size=0: every request must fan out to the workers, so the
    # kill/respawn tests exercise live worker traffic, not cache hits.
    coordinator = ClusterCoordinator(
        summary,
        workers=2,
        replicas=2,
        config=ServeConfig(port=0, window_ms=0.5, cache_size=0),
    )
    with ServerThread(coordinator) as running:
        yield running


class TestClusterServing:
    def test_binds_ephemeral_ports_everywhere(self, cluster):
        """Frontend and every worker bind port 0 and read back the
        assigned port — no fixed ports to race over in a parallel CI
        matrix."""
        assert cluster.port != 0
        ports = cluster.worker_ports()
        assert len(ports) == 2
        assert all(port != 0 for port in ports)
        assert cluster.port not in ports

    def test_parity_with_single_process(self, cluster, single_payloads):
        with ServeClient(port=cluster.port) as client:
            for sql in QUERIES:
                got = client.call("query", sql=sql)["result"]
                assert _close(_norm(got), _norm(single_payloads[sql])), sql

    def test_stats_reports_cluster_shape(self, cluster):
        with ServeClient(port=cluster.port) as client:
            stats = client.stats()
        assert stats["cluster"]["workers"] == 2
        assert stats["cluster"]["replicas"] == 2
        assert set(stats["cluster"]["assignment"]) == {"0", "1"}

    def test_worker_kill_mid_traffic_drops_nothing(
        self, cluster, single_payloads
    ):
        """100 concurrent requests with a worker killed mid-run: zero
        errors (replicas=2 keeps every shard covered), and the monitor
        respawns the worker."""
        respawns_before = cluster.stats()["cluster"]["respawns"]
        served_before = cluster.requests
        outcome = {}

        def drive():
            outcome["report"] = run_load(
                cluster.host,
                cluster.port,
                QUERIES,
                clients=10,
                requests_per_client=10,
            )

        loader = threading.Thread(target=drive, daemon=True)
        loader.start()
        # Kill only once traffic is demonstrably in flight, so the
        # remaining requests run against a one-worker pool.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if cluster.requests - served_before >= 10:
                break
            time.sleep(0.002)
        assert cluster.requests - served_before >= 10, "load never started"
        cluster.kill_worker()
        loader.join(timeout=120)
        assert not loader.is_alive(), "load run hung after the kill"
        report = outcome["report"]
        assert report.errors == 0
        assert report.requests == 100
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stats = cluster.stats()["cluster"]
            if stats["live"] == 2 and stats["respawns"] > respawns_before:
                break
            time.sleep(0.2)
        stats = cluster.stats()["cluster"]
        assert stats["live"] == 2
        assert stats["respawns"] > respawns_before
        # answers are exact again after the respawn
        with ServeClient(port=cluster.port) as client:
            sql = "SELECT COUNT(*) FROM R WHERE hour >= 1"
            got = client.call("query", sql=sql)["result"]
            assert "degraded" not in got


class TestClusterReload:
    @pytest.fixture()
    def versioned_store(self, tmp_path):
        store = SummaryStore(tmp_path / "models")
        store.save(_fit(_relation(rows=600, seed=3), name="demo"), "demo")
        store.save(_fit(_relation(rows=900, seed=4), name="demo"), "demo")
        return store

    def test_reload_under_traffic_converges_the_pool(self, versioned_store):
        coordinator = ClusterCoordinator(
            store=versioned_store,
            name="demo",
            version=1,
            workers=2,
            replicas=2,
            config=ServeConfig(port=0, window_ms=0.5, cache_size=0),
        )
        with ServerThread(coordinator):
            stop = threading.Event()
            errors = []

            def hammer():
                with ServeClient(port=coordinator.port) as client:
                    while not stop.is_set():
                        try:
                            client.call(
                                "query", sql="SELECT COUNT(*) FROM R"
                            )
                        except Exception as error:  # pragma: no cover
                            errors.append(error)
                            return

            thread = threading.Thread(target=hammer, daemon=True)
            thread.start()
            try:
                with ServeClient(port=coordinator.port) as client:
                    assert client.ping() == {"version": 1}
                    before = client.call(
                        "query", sql="SELECT COUNT(*) FROM R"
                    )["result"]["value"]
                    assert client.reload() == 2
                    assert client.ping() == {"version": 2}
                    after = client.call(
                        "query", sql="SELECT COUNT(*) FROM R"
                    )["result"]["value"]
            finally:
                stop.set()
                thread.join(timeout=10)
            assert not errors
            assert before == pytest.approx(600, abs=2)
            assert after == pytest.approx(900, abs=2)


class TestValidation:
    def test_unsharded_summary_is_rejected(self):
        single = (
            SummaryBuilder(_relation(rows=200))
            .pairs(("state", "hour"))
            .per_pair_budget(4)
            .iterations(30)
            .fit()
        )
        with pytest.raises(ReproError, match="sharded"):
            ClusterCoordinator(single, workers=2)

    def test_pool_shape_bounds(self, summary):
        with pytest.raises(ReproError, match="workers"):
            ClusterCoordinator(summary, workers=NUM_SHARDS + 1)
        with pytest.raises(ReproError, match="replicas"):
            ClusterCoordinator(summary, workers=2, replicas=3)

    def test_assignment_must_cover_every_worker(self, summary):
        with pytest.raises(ReproError, match="owns no shards"):
            ClusterCoordinator(
                summary,
                workers=2,
                assignment=[[0], [0], [0], [0]],
            )
