"""Pipeline-level property tests (hypothesis).

These tie the whole stack together on randomly generated inputs: data →
measured statistics → compressed polynomial → Mirror Descent → query
answering, asserting the invariants the paper's math guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inference import InferenceEngine
from repro.core.naive import NaivePolynomial
from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import MirrorDescentSolver

from tests.conftest import relations_with_stats


def _fit(statistic_set, max_iterations=250):
    poly = CompressedPolynomial(statistic_set)
    solver = MirrorDescentSolver(poly, max_iterations=max_iterations)
    params, _ = solver.solve()
    return poly, params


class TestFittedModelProperties:
    @given(relations_with_stats(max_stats=3))
    @settings(max_examples=12)
    def test_optimized_path_equals_naive_expectation(self, data):
        """Sec 4.2's variable-zeroing formula must agree with the
        definitional expectation on the uncompressed polynomial for
        arbitrary conjunctive masks."""
        relation, statistic_set = data
        poly, params = _fit(statistic_set, max_iterations=60)
        naive = NaivePolynomial(statistic_set)
        engine = InferenceEngine(poly, params, statistic_set.total)
        generator = np.random.default_rng(relation.num_rows + 17)
        for _ in range(5):
            masks = {}
            for pos, size in enumerate(poly.sizes):
                if generator.random() < 0.6:
                    mask = generator.random(size) > 0.5
                    if not mask.any():
                        mask[int(generator.integers(size))] = True
                    masks[pos] = mask
            expected = naive.expected_count(params, statistic_set.total, masks)
            actual = engine.estimate_masks(masks).expectation
            assert actual == pytest.approx(expected, rel=1e-8, abs=1e-6)

    @given(relations_with_stats(max_stats=2))
    @settings(max_examples=10)
    def test_group_by_partitions_cardinality(self, data):
        relation, statistic_set = data
        poly, params = _fit(statistic_set, max_iterations=40)
        engine = InferenceEngine(poly, params, statistic_set.total)
        for pos in range(poly.schema.num_attributes):
            grouped = engine.group_by([pos])
            total = sum(e.expectation for e in grouped.values())
            assert total == pytest.approx(statistic_set.total, rel=1e-9)

    @given(relations_with_stats(max_stats=2), st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_monotonicity_under_mask_inclusion(self, data, seed):
        """Widening a predicate can only increase the estimate
        (monomials are non-negative)."""
        relation, statistic_set = data
        poly, params = _fit(statistic_set, max_iterations=40)
        engine = InferenceEngine(poly, params, statistic_set.total)
        generator = np.random.default_rng(seed)
        pos = int(generator.integers(poly.schema.num_attributes))
        size = poly.sizes[pos]
        narrow = generator.random(size) > 0.6
        if not narrow.any():
            narrow[0] = True
        wide = narrow | (generator.random(size) > 0.5)
        narrow_est = engine.estimate_masks({pos: narrow}).expectation
        wide_est = engine.estimate_masks({pos: wide}).expectation
        assert wide_est >= narrow_est - 1e-9

    @given(relations_with_stats(max_stats=3))
    @settings(max_examples=10)
    def test_solved_model_reproduces_measured_statistics(self, data):
        """Every statistic measured from the data must be reproduced by
        the fitted model when queried through the public path."""
        relation, statistic_set = data
        poly, params = _fit(statistic_set)
        engine = InferenceEngine(poly, params, statistic_set.total)
        tolerance = max(2e-3 * statistic_set.total, 0.5)
        for statistic in statistic_set.multi_dim:
            masks = statistic.predicate.attribute_masks()
            estimate = engine.estimate_masks(masks).expectation
            assert abs(estimate - statistic.value) < tolerance

    @given(relations_with_stats(max_stats=2))
    @settings(max_examples=8)
    def test_save_load_identical_estimates(self, tmp_path_factory, data):
        from repro.core.summary import EntropySummary

        relation, statistic_set = data
        poly, params = _fit(statistic_set, max_iterations=30)
        summary = EntropySummary(statistic_set, poly, params)
        prefix = tmp_path_factory.mktemp("models") / "model"
        summary.save(prefix)
        loaded = EntropySummary.load(prefix)
        generator = np.random.default_rng(relation.num_rows)
        pos = int(generator.integers(poly.schema.num_attributes))
        mask = generator.random(poly.sizes[pos]) > 0.5
        if not mask.any():
            mask[0] = True
        original = summary.engine.estimate_masks({pos: mask}).expectation
        restored = loaded.engine.estimate_masks({pos: mask}).expectation
        assert restored == pytest.approx(original, rel=1e-12, abs=1e-12)
