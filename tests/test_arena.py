"""Tests for the contiguous cross-shard evaluation kernel
(:class:`repro.core.arena.ShardArena`).

The arena is a pure re-layout of the fitted shard parameters: every
query answered through it must match the legacy per-shard engine path
(``use_arena=False``) to floating-point noise — COUNT, GROUP BY, SUM
and AVG, with and without attribute-partitioned pruning.  The lifecycle
pieces (lazy build, ``warm``, hot-swap rebuild, pickling, the
persistent fanout pool's deterministic shutdown) are covered here too.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.arena import ShardArena
from repro.core.sharding import ShardedSummary
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.stats.predicates import Conjunction, RangePredicate
from tests.test_sharding import _fit


@pytest.fixture(scope="module")
def relation():
    rng = np.random.default_rng(41)
    schema = Schema(
        [integer_domain("A", 4), integer_domain("B", 6), integer_domain("C", 3)]
    )
    columns = []
    for size in schema.sizes():
        weights = 1.0 / (np.arange(size) + 1.0)
        weights /= weights.sum()
        columns.append(rng.choice(size, size=500, p=weights))
    return Relation(schema, columns)


@pytest.fixture(scope="module")
def round_robin(relation):
    return _fit(relation, num_shards=3)


@pytest.fixture(scope="module")
def by_attribute(relation):
    return _fit(relation, num_shards=3, by="B")


@pytest.fixture(scope="module", params=["round_robin", "by_attribute"])
def sharded(request):
    return request.getfixturevalue(request.param)


def _predicates(schema):
    """A mix of shapes: trivial, point, range, multi-attribute, empty."""
    def conj(**ranges):
        return Conjunction(
            schema,
            {
                name: RangePredicate(low, high)
                for name, (low, high) in ranges.items()
            },
        )

    return [
        None,
        conj(A=(1, 2)),
        conj(B=(0, 2)),
        conj(B=(3, 5)),
        conj(B=(2, 2), A=(0, 3)),
        conj(A=(0, 1), B=(1, 4), C=(0, 1)),
        conj(C=(2, 2)),
    ]


# ----------------------------------------------------------------------
# Equivalence with the legacy per-shard path
# ----------------------------------------------------------------------

class TestArenaEquivalence:
    def test_count_matches_legacy(self, sharded):
        for predicate in _predicates(sharded.schema):
            via_arena = sharded.estimate(predicate)
            legacy = sharded.estimate(predicate, use_arena=False)
            assert via_arena.expectation == pytest.approx(
                legacy.expectation, rel=1e-9, abs=1e-9
            )
            assert via_arena.variance == pytest.approx(
                legacy.variance, rel=1e-9, abs=1e-9
            )

    def test_batch_matches_legacy(self, sharded):
        predicates = _predicates(sharded.schema)
        batch = sharded.estimate_batch(predicates)
        legacy = sharded.estimate_batch(predicates, use_arena=False)
        for via_arena, expected in zip(batch, legacy):
            assert via_arena.expectation == pytest.approx(
                expected.expectation, rel=1e-9, abs=1e-9
            )
            assert via_arena.variance == pytest.approx(
                expected.variance, rel=1e-9, abs=1e-9
            )

    @pytest.mark.parametrize("attrs", [("A",), ("C",), ("A", "C"), ("B",)])
    def test_group_by_matches_legacy(self, sharded, attrs):
        for predicate in (None, _predicates(sharded.schema)[3]):
            via_arena = sharded.group_by(attrs, predicate)
            legacy = sharded.group_by(attrs, predicate, use_arena=False)
            assert set(via_arena) == set(legacy)
            for labels, expected in legacy.items():
                assert via_arena[labels].expectation == pytest.approx(
                    expected.expectation, rel=1e-9, abs=1e-9
                )
                assert via_arena[labels].variance == pytest.approx(
                    expected.variance, rel=1e-9, abs=1e-9
                )

    def test_group_by_sharding_attribute(self, by_attribute):
        """Grouping by the partitioned attribute: each shard contributes
        only the labels inside its owned range."""
        via_arena = by_attribute.group_by(("B",))
        legacy = by_attribute.group_by(("B",), use_arena=False)
        assert set(via_arena) == set(legacy)
        for labels, expected in legacy.items():
            assert via_arena[labels].expectation == pytest.approx(
                expected.expectation, rel=1e-9, abs=1e-9
            )

    def test_sum_and_avg_match_legacy(self, sharded):
        weights = np.arange(sharded.schema.domain("A").size, dtype=float)
        for predicate in _predicates(sharded.schema):
            via_arena = sharded.sum_estimate("A", weights, predicate)
            legacy = sharded.sum_estimate(
                "A", weights, predicate, use_arena=False
            )
            assert via_arena == pytest.approx(legacy, rel=1e-9, abs=1e-9)
        assert sharded.avg_estimate("A", weights) == pytest.approx(
            sharded.sum_estimate("A", weights) / sharded.total, rel=1e-9
        )

    def test_pruned_shards_contribute_exact_zero(self, by_attribute):
        """A predicate confined to one owned range zeroes the other
        shards' polynomials — implicit pruning, same result as the
        legacy explicit skip."""
        schema = by_attribute.schema
        low, high = by_attribute.owned_ranges[0]
        predicate = Conjunction(schema, {"B": RangePredicate(low, high)})
        via_arena = by_attribute.estimate(predicate)
        legacy = by_attribute.estimate(predicate, use_arena=False)
        assert via_arena.expectation == pytest.approx(
            legacy.expectation, rel=1e-9, abs=1e-9
        )

    def test_schema_mismatch_raises(self, sharded):
        other = Schema([integer_domain("Z", 3)])
        bad = Conjunction(other, {"Z": RangePredicate(0, 1)})
        with pytest.raises(QueryError, match="different schema"):
            sharded.estimate(bad)


# ----------------------------------------------------------------------
# Lifecycle: build, cache, hot swap, pickling, shutdown
# ----------------------------------------------------------------------

class TestArenaLifecycle:
    def test_warm_builds_once_and_stats_describe_it(self, relation):
        sharded = _fit(relation, num_shards=3)
        assert sharded._arena is None  # lazy until warmed or queried
        assert sharded.warm() is sharded
        arena = sharded._arena
        assert isinstance(arena, ShardArena)
        assert sharded.arena is arena  # stable across calls
        stats = arena.stats()
        assert stats["shards"] == 3
        assert stats["terms"] >= 0

    def test_result_cache_hits_on_repeat(self, relation):
        sharded = _fit(relation, num_shards=3).warm()
        predicate = _predicates(sharded.schema)[1]
        arena = sharded.arena
        arena.clear_cache()
        first = sharded.estimate(predicate)
        assert arena.cache_misses == 1
        second = sharded.estimate(predicate)
        assert arena.cache_hits == 1
        assert second.expectation == first.expectation

    def test_clear_cache_keeps_arena_but_drops_results(self, relation):
        sharded = _fit(relation, num_shards=3).warm()
        arena = sharded.arena
        sharded.estimate(_predicates(sharded.schema)[1])
        assert arena.stats()["cache_entries"] >= 1
        sharded.clear_cache()
        # The arena layout derives from immutable shard parameters, so
        # it survives; only the memoized results go.
        assert sharded.arena is arena
        assert arena.stats()["cache_entries"] == 0

    def test_with_shards_rebuilds_the_arena(self, relation):
        sharded = _fit(relation, num_shards=3).warm()
        swapped = sharded.with_shards({0: sharded.shards[0]})
        assert swapped._arena is not None  # publish path warms eagerly
        assert swapped._arena is not sharded._arena
        baseline = sharded.estimate(None).expectation
        assert swapped.estimate(None).expectation == pytest.approx(baseline)

    def test_pickle_round_trip_drops_derived_state(self, relation):
        sharded = _fit(relation, num_shards=3).warm()
        sharded.estimate_batch(
            _predicates(sharded.schema), parallel=True, use_arena=False
        )  # spin up the pool so there is derived state to drop
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone._arena is None and clone._pool is None
        original = sharded.estimate(_predicates(sharded.schema)[4])
        revived = clone.estimate(_predicates(clone.schema)[4])
        assert revived.expectation == pytest.approx(
            original.expectation, rel=1e-12
        )

    def test_close_is_deterministic_and_idempotent(self, relation):
        with _fit(relation, num_shards=3) as sharded:
            sharded.estimate_batch(
                _predicates(sharded.schema)[:3], parallel=True, use_arena=False
            )
            pool = sharded._pool
            assert pool is not None
        assert sharded._pool is None
        assert pool._shutdown  # the exit closed it
        sharded.close()  # second close is a no-op
        # Queries still work after close — a fresh pool spins up lazily.
        assert sharded.estimate(None).expectation == pytest.approx(
            float(sharded.total)
        )

    def test_save_load_round_trip_warms(self, relation, tmp_path):
        sharded = _fit(relation, num_shards=3).warm()
        prefix = tmp_path / "model"
        sharded.save(prefix)
        loaded = ShardedSummary.load(prefix)
        assert loaded._arena is not None  # load() warms eagerly
        predicate = _predicates(loaded.schema)[2]
        assert loaded.estimate(predicate).expectation == pytest.approx(
            sharded.estimate(predicate).expectation, rel=1e-9
        )
