"""Tests for the chaos soak harness: fault plans, the injector, the
hook wiring through serve/ingest, the invariant checker, and (behind
``--soak``) short live scenarios.

The unit pieces run on fake clocks and synthetic :class:`SoakResult`
records, so every invariant violation is provably *caught*, not just
absent.  The hook-wiring tests boot a real server with an always-on
injector and verify each fault surfaces the way the soak contract
needs: retryable 503s, clean reconnects, untouched pipeline state.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Explorer, SummaryBuilder, SummaryStore
from repro.baselines.exact import ExactBackend
from repro.chaos import (
    FAULT_NAMES,
    HOOKS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    OperatorEvent,
    SoakConfig,
    SoakResult,
    check_invariants,
    run_soak,
)
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ChaosError
from repro.ingest import AppendBatch, IngestPipeline
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerBusy,
    ServerThread,
    SummaryServer,
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

def _schema() -> Schema:
    return Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )


def _relation(rows: int = 300, seed: int = 3) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation(
        _schema(),
        [rng.choice(3, size=rows, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, rows)],
    )


def _fit(relation: Relation, name: str = "chaos-test"):
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(40)
        .name(name)
        .fit()
    )


@pytest.fixture(scope="module")
def relation():
    return _relation()


@pytest.fixture(scope="module")
def summary(relation):
    return _fit(relation)


def _armed(
    hook: str,
    *,
    probability: float = 1.0,
    delay_s: float = 0.0,
    error: bool = False,
    stop_s: float = 1.0,
    clock=None,
) -> FaultInjector:
    """A started injector with one always-firing window on ``hook``."""
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(
                hook,
                probability=probability,
                delay_s=delay_s,
                error=error,
                start_s=0.0,
                stop_s=stop_s,
            ),
        ),
    )
    if clock is None:
        return FaultInjector(plan).start()
    return FaultInjector(plan, clock=clock).start()


# ----------------------------------------------------------------------
# FaultSpec / OperatorEvent validation
# ----------------------------------------------------------------------

class TestFaultSpec:
    def test_unknown_hook_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos hook"):
            FaultSpec("server.frobnicate")

    def test_probability_out_of_range(self):
        with pytest.raises(ChaosError, match="probability"):
            FaultSpec("server.backend", probability=1.5)

    def test_negative_delay(self):
        with pytest.raises(ChaosError, match="delay_s"):
            FaultSpec("server.backend", delay_s=-0.1)

    def test_empty_window(self):
        with pytest.raises(ChaosError, match="empty"):
            FaultSpec("server.backend", start_s=2.0, stop_s=2.0)

    def test_active_at(self):
        spec = FaultSpec("server.backend", start_s=1.0, stop_s=3.0)
        assert not spec.active_at(0.5)
        assert spec.active_at(1.0)
        assert spec.active_at(2.9)
        assert not spec.active_at(3.0)

    def test_operator_event_validation(self):
        with pytest.raises(ChaosError, match="reload.*rollback|rollback"):
            OperatorEvent(1.0, "explode")
        with pytest.raises(ChaosError, match="at_s"):
            OperatorEvent(-1.0, "reload")


# ----------------------------------------------------------------------
# FaultPlan.build
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_build_is_deterministic(self):
        first = FaultPlan.build(7, 30.0)
        second = FaultPlan.build(7, 30.0)
        assert first == second  # frozen dataclasses compare by value

    def test_different_seeds_differ(self):
        assert FaultPlan.build(1, 30.0) != FaultPlan.build(2, 30.0)

    def test_all_enables_every_hook_and_operator(self):
        plan = FaultPlan.build(3, 30.0, ("all",))
        assert plan.fault_kinds == tuple(sorted(HOOKS))
        actions = {event.action for event in plan.operations}
        assert actions == {"reload", "rollback"}

    def test_windows_leave_warmup_and_drain(self):
        duration = 30.0
        plan = FaultPlan.build(5, duration)
        for spec in plan.specs:
            assert spec.start_s >= 0.10 * duration
            assert spec.stop_s <= duration
        for event in plan.operations:
            assert 0.10 * duration <= event.at_s <= 0.85 * duration

    def test_unknown_fault_name(self):
        with pytest.raises(ChaosError, match="unknown fault name"):
            FaultPlan.build(0, 10.0, ("gremlins",))

    def test_none_and_empty_build_the_quiet_plan(self):
        assert FaultPlan.build(4, 10.0, ("none",)) == FaultPlan.quiet(4)
        assert FaultPlan.build(4, 10.0, ()) == FaultPlan.quiet(4)
        quiet = FaultPlan.quiet(4)
        assert quiet.specs == () and quiet.operations == ()

    def test_single_fault_selection(self):
        plan = FaultPlan.build(0, 20.0, ("watcher",))
        assert plan.fault_kinds == ("watcher.poll",)
        assert plan.operations == ()

    def test_max_window_s(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("watcher.poll", start_s=1.0, stop_s=1.5),
                FaultSpec("watcher.poll", start_s=4.0, stop_s=6.0),
            )
        )
        assert plan.max_window_s("watcher.poll") == pytest.approx(2.0)
        assert plan.max_window_s("server.backend") == 0.0

    def test_invalid_duration(self):
        with pytest.raises(ChaosError, match="duration_s"):
            FaultPlan.build(0, 0.0)

    def test_describe_mentions_seed_and_kinds(self):
        text = FaultPlan.build(9, 20.0, ("watcher",)).describe()
        assert "seed=9" in text and "watcher.poll" in text


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_inert_before_start(self):
        plan = FaultPlan(specs=(FaultSpec("server.backend", error=True),))
        injector = FaultInjector(plan)  # never started
        assert injector.decide("server.backend") is None
        injector.act("server.backend")  # no raise
        assert injector.stats()["total_injected"] == 0

    def test_inert_after_disable(self):
        injector = _armed("server.backend", error=True, stop_s=math.inf)
        assert injector.decide("server.backend") is not None
        injector.disable()
        assert injector.decide("server.backend") is None

    def test_unknown_hook_rejected(self):
        injector = _armed("server.backend")
        with pytest.raises(ChaosError, match="unknown chaos hook"):
            injector.decide("server.mystery")

    def test_outside_window_no_fault(self):
        now = [0.0]
        injector = _armed(
            "server.backend", error=True, stop_s=1.0, clock=lambda: now[0]
        )
        now[0] = 5.0  # past the window
        assert injector.decide("server.backend") is None
        assert injector.stats()["calls"]["server.backend"] == 1
        assert injector.stats()["injected"]["server.backend"] == 0

    def test_decision_streams_are_seeded(self):
        # Two injectors over the same plan make identical k-th decisions
        # at each hook — the replayability contract.
        plan = FaultPlan(
            seed=42,
            specs=(
                FaultSpec("server.backend", probability=0.5, error=True),
                FaultSpec("watcher.poll", probability=0.3, error=True),
            ),
        )
        now = [0.0]

        def stream(hook):
            injector = FaultInjector(plan, clock=lambda: now[0]).start()
            return [
                injector.decide(hook) is not None for _ in range(50)
            ]

        assert stream("server.backend") == stream("server.backend")
        assert stream("watcher.poll") == stream("watcher.poll")
        # ... and the streams are genuinely probabilistic, not all-fire.
        fired = stream("server.backend")
        assert 0 < sum(fired) < len(fired)

    def test_act_raises_injected_fault_with_hook(self):
        injector = _armed("ingest.append", error=True)
        with pytest.raises(InjectedFault) as caught:
            injector.act("ingest.append")
        assert caught.value.hook == "ingest.append"
        assert isinstance(caught.value, ChaosError)

    def test_act_applies_delay(self):
        injector = _armed("server.backend", delay_s=0.05)
        began = time.perf_counter()
        injector.act("server.backend")  # slow fault: sleeps, no raise
        assert time.perf_counter() - began >= 0.04

    def test_events_and_stats_record_injections(self):
        injector = _armed("server.backend", error=True)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector.act("server.backend")
        events = injector.events()
        assert len(events) == 3
        assert all(e["hook"] == "server.backend" for e in events)
        assert all(e["error"] is True for e in events)
        stats = injector.stats()
        assert stats["injected"]["server.backend"] == 3
        assert stats["total_injected"] == 3


# ----------------------------------------------------------------------
# Hook wiring: each fault surfaces the way the soak contract needs
# ----------------------------------------------------------------------

class TestChaosWiring:
    def test_server_drop_connection_is_survivable(self, summary):
        now = [0.0]
        injector = _armed(
            "server.drop_connection", stop_s=1.0, clock=lambda: now[0]
        )
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=0.5), chaos=injector
        )
        with ServerThread(server):
            client = ServeClient(port=server.port)
            try:
                with pytest.raises(ServeError, match="closed the connection"):
                    client.ping()
                now[0] = 5.0  # window over; reconnect and carry on
                client.close()
                assert client.ping() == {"version": 0}
            finally:
                client.close()
        assert injector.stats()["injected"]["server.drop_connection"] >= 1

    def test_backend_fault_maps_to_retryable_503(self, summary):
        now = [0.0]
        injector = _armed(
            "server.backend", error=True, stop_s=1.0, clock=lambda: now[0]
        )
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=0.5), chaos=injector
        )
        sql = "SELECT COUNT(*) FROM R WHERE state = 'CA'"
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServerBusy) as caught:
                    client.query(sql)
                assert caught.value.retry_after > 0
                assert caught.value.payload["scope"] == "chaos"
                assert "injected fault" in str(caught.value)
                now[0] = 5.0  # window over; the same query now succeeds
                assert client.query(sql)["kind"] == "scalar"
                # The connection survived the injected failure.
                assert client.ping() == {"version": 0}

    def test_worker_kill_fails_the_flush_retryably(self, summary):
        now = [0.0]
        injector = _armed(
            "server.worker_kill", error=True, stop_s=1.0, clock=lambda: now[0]
        )
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=0.5), chaos=injector
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServerBusy) as caught:
                    client.query("SELECT COUNT(*) FROM R")
                assert caught.value.payload["scope"] == "chaos"
                now[0] = 5.0
                assert client.query("SELECT COUNT(*) FROM R")["kind"] == "scalar"

    def test_slow_backend_delays_but_answers(self, summary):
        injector = _armed("server.backend", delay_s=0.08, stop_s=math.inf)
        server = SummaryServer(
            summary,
            config=ServeConfig(window_ms=0.5, cache_size=0),
            chaos=injector,
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                began = time.perf_counter()
                payload = client.query("SELECT COUNT(*) FROM R")
                elapsed = time.perf_counter() - began
        assert payload["kind"] == "scalar"
        assert elapsed >= 0.07

    def test_client_drop_raises_and_reconnects(self, summary):
        now = [0.0]
        injector = _armed(
            "client.drop_connection", stop_s=1.0, clock=lambda: now[0]
        )
        server = SummaryServer(summary, config=ServeConfig(window_ms=0.5))
        with ServerThread(server):
            client = ServeClient(port=server.port, chaos=injector)
            try:
                with pytest.raises(ServeError, match="client-side"):
                    client.ping()
                now[0] = 5.0
                assert client.ping() == {"version": 0}  # auto-reconnected
            finally:
                client.close()

    def test_watcher_poll_fault_is_absorbed_and_recovers(
        self, relation, tmp_path
    ):
        store = SummaryStore(tmp_path / "models")
        store.save(_fit(relation, "demo"), "demo")
        now = [0.0]
        injector = _armed(
            "watcher.poll", error=True, stop_s=1.0, clock=lambda: now[0]
        )
        server = SummaryServer(
            store=store,
            name="demo",
            config=ServeConfig(window_ms=0.5, watch_interval=0.05),
            chaos=injector,
        )
        with ServerThread(server):
            deadline = time.monotonic() + 5.0
            while (
                server.watcher.errors == 0 and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.watcher.errors >= 1  # polls failed...
            with ServeClient(port=server.port) as client:
                assert client.ping() == {"version": 1}  # ...server alive
            # End the outage; a newer publish must now be picked up.
            now[0] = 5.0
            store.save(_fit(_relation(rows=400, seed=4), "demo"), "demo")
            deadline = time.monotonic() + 5.0
            while server.version < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.version == 2

    def test_ingest_fault_leaves_pipeline_state_untouched(
        self, relation, tmp_path
    ):
        store = SummaryStore(tmp_path / "models")
        store.save(_fit(relation, "demo"), "demo")
        injector = _armed("ingest.append", error=True, stop_s=math.inf)
        pipeline = IngestPipeline.from_store(
            store, "demo", relation, chaos=injector
        )
        rows_before = pipeline.total
        batch = [("CA", 1), ("NY", 2), ("WA", 3)]
        with pytest.raises(InjectedFault):
            pipeline.append(batch)
        # The hook fires before any mutation: nothing moved, nothing
        # published — the same batch is safely retryable.
        assert pipeline.total == rows_before
        assert store.latest_version("demo") == 1
        injector.disable()
        report = pipeline.append(batch)
        assert report.rows_appended == len(batch)
        assert store.latest_version("demo") == 2
        assert pipeline.total == rows_before + len(batch)

    def test_server_stats_expose_chaos_counters(self, summary):
        injector = _armed("server.backend", error=True, stop_s=math.inf)
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=0.5), chaos=injector
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServerBusy):
                    client.query("SELECT COUNT(*) FROM R")
                stats = client.stats()
        assert stats["chaos"]["total_injected"] >= 1
        assert stats["chaos"]["seed"] == 0


# ----------------------------------------------------------------------
# Invariant checker over synthetic records: violations must be CAUGHT
# ----------------------------------------------------------------------

def _healthy_result(**overrides) -> SoakResult:
    """A synthetic passing record: 3 requests, 2 publishes promptly
    served, an unbroken lineage chain, drift equal to baseline."""
    fields = dict(
        requests=[
            {"t_s": 0.5, "reader": 0, "sql": "q", "outcome": "ok",
             "busy_retries": 1, "fault_retries": 0},
            {"t_s": 1.0, "reader": 1, "sql": "q", "outcome": "ok",
             "busy_retries": 0, "fault_retries": 2},
            {"t_s": 2.0, "reader": 0, "sql": "q", "outcome": "ok",
             "busy_retries": 0, "fault_retries": 0},
        ],
        probes=[
            {"t_s": 0.1, "version": 1},
            {"t_s": 1.1, "version": 2},
            {"t_s": 2.1, "version": 3},
        ],
        publishes=[
            {"t_s": 1.0, "version": 2, "parent": 1, "rows": 10},
            {"t_s": 2.0, "version": 3, "parent": 2, "rows": 10},
        ],
        operations=[],
        error_drift=0.02,
        baseline_drift=0.02,
        staleness_bound_s=1.0,
        duration_s=3.0,
    )
    fields.update(overrides)
    return SoakResult(**fields)


class TestInvariants:
    def test_healthy_record_passes(self):
        report = check_invariants(_healthy_result())
        assert report.ok
        assert report.violations == ()
        report.raise_if_failed()  # no raise
        names = [check.name for check in report.checks]
        assert names == [
            "zero-dropped",
            "bounded-staleness",
            "monotone-lineage",
            "bounded-error-drift",
        ]
        assert report.to_dict()["ok"] is True

    def test_dropped_request_is_flagged(self):
        result = _healthy_result()
        result.requests.append(
            {"t_s": 2.5, "reader": 2, "sql": "q", "outcome": "dropped",
             "error": "deadline", "busy_retries": 9, "fault_retries": 0}
        )
        report = check_invariants(result)
        assert not report.ok
        (violation,) = report.violations
        assert violation.name == "zero-dropped"
        assert "deadline" in violation.detail
        with pytest.raises(ChaosError, match="invariant violation"):
            report.raise_if_failed()

    def test_late_publish_is_flagged(self):
        # v3 published at t=2.0 but first served at t=3.8 with bound 1.0.
        result = _healthy_result(
            probes=[
                {"t_s": 0.1, "version": 1},
                {"t_s": 1.1, "version": 2},
                {"t_s": 3.8, "version": 3},
            ]
        )
        report = check_invariants(result)
        violations = {check.name for check in report.violations}
        assert "bounded-staleness" in violations

    def test_never_served_publish_is_flagged(self):
        result = _healthy_result(
            probes=[{"t_s": 0.1, "version": 1}, {"t_s": 1.1, "version": 2}]
        )
        report = check_invariants(result)
        assert any(
            check.name == "bounded-staleness" and "never served" in check.detail
            for check in report.violations
        )

    def test_rollback_obscured_publish_is_exempt(self):
        # v3's publish is followed by a rollback within the bound: the
        # stickiness contract requires it to stay hidden.
        result = _healthy_result(
            probes=[
                {"t_s": 0.1, "version": 1},
                {"t_s": 1.1, "version": 2},
                {"t_s": 2.2, "version": 2},
            ],
            operations=[
                {"t_s": 2.3, "action": "rollback", "version": 2,
                 "from_version": 3},
            ],
        )
        report = check_invariants(result)
        staleness = next(
            check for check in report.checks
            if check.name == "bounded-staleness"
        )
        assert staleness.ok
        assert "1 rollback-exempt" in staleness.detail

    def test_version_flip_without_rollback_is_flagged(self):
        result = _healthy_result(
            probes=[
                {"t_s": 0.1, "version": 1},
                {"t_s": 1.1, "version": 2},
                {"t_s": 1.5, "version": 1},  # served version went BACK
                {"t_s": 2.1, "version": 3},
            ]
        )
        report = check_invariants(result)
        assert any(
            check.name == "monotone-lineage"
            and "no rollback to explain it" in check.detail
            for check in report.violations
        )

    def test_version_flip_with_matching_rollback_is_allowed(self):
        result = _healthy_result(
            probes=[
                {"t_s": 0.1, "version": 1},
                {"t_s": 1.1, "version": 2},
                {"t_s": 1.5, "version": 1},  # rolled back on purpose
                {"t_s": 2.1, "version": 3},
            ],
            operations=[
                {"t_s": 1.4, "action": "rollback", "version": 1,
                 "from_version": 2},
            ],
        )
        report = check_invariants(result)
        monotone = next(
            check for check in report.checks
            if check.name == "monotone-lineage"
        )
        assert monotone.ok

    def test_rollback_recorded_just_after_flip_is_allowed(self):
        # The operator records intent time, but a chaos-dropped reload
        # *response* pushes the record onto a retry — the flip can be
        # observed slightly before the recorded t_s.  Within the slack
        # window that is the same rollback, not a violation.
        result = _healthy_result(
            probes=[
                {"t_s": 0.1, "version": 1},
                {"t_s": 1.1, "version": 2},
                {"t_s": 1.5, "version": 1},
                {"t_s": 2.1, "version": 3},
            ],
            operations=[
                {"t_s": 1.65, "action": "rollback", "version": 1,
                 "from_version": 2},  # 0.15s after the flip: retry skew
            ],
        )
        monotone = next(
            check for check in check_invariants(result).checks
            if check.name == "monotone-lineage"
        )
        assert monotone.ok

    def test_rollback_recorded_far_after_flip_is_flagged(self):
        result = _healthy_result(
            probes=[
                {"t_s": 0.1, "version": 1},
                {"t_s": 1.1, "version": 2},
                {"t_s": 1.5, "version": 1},
                {"t_s": 2.1, "version": 3},
            ],
            operations=[
                {"t_s": 1.9, "action": "rollback", "version": 1,
                 "from_version": 2},  # beyond any record skew
            ],
        )
        report = check_invariants(result)
        assert any(
            check.name == "monotone-lineage"
            and "no rollback to explain it" in check.detail
            for check in report.violations
        )

    def test_broken_lineage_chain_is_flagged(self):
        result = _healthy_result(
            publishes=[
                {"t_s": 1.0, "version": 2, "parent": 1, "rows": 10},
                {"t_s": 2.0, "version": 3, "parent": 1, "rows": 10},  # !
            ]
        )
        report = check_invariants(result)
        assert any(
            check.name == "monotone-lineage" and "claims parent" in check.detail
            for check in report.violations
        )

    def test_drift_violation_is_flagged(self):
        result = _healthy_result(error_drift=0.10, baseline_drift=0.02)
        report = check_invariants(result)
        assert any(
            check.name == "bounded-error-drift"
            for check in report.violations
        )
        # A looser acceptance ratio admits the same record.
        assert check_invariants(result, max_drift_ratio=10.0).ok

    def test_drift_slack_protects_near_zero_baselines(self):
        result = _healthy_result(error_drift=0.005, baseline_drift=0.0)
        assert check_invariants(result).ok  # ratio is huge, slack saves it
        assert not check_invariants(result, drift_slack=0.001).ok


class TestSoakConfigAndResult:
    @pytest.mark.parametrize(
        "overrides, message",
        [
            ({"duration_s": 0.0}, "duration_s"),
            ({"readers": 0}, "readers"),
            ({"request_deadline_s": 0.0}, "request_deadline_s"),
            ({"ingest_every_s": 0.0}, "ingest_every_s"),
            ({"batch_rows": 0}, "batch_rows"),
            ({"watch_interval": 0.0}, "watch_interval"),
            ({"base_rows": 5}, "base_rows"),
            ({"probe_every_s": 0.0}, "probe_every_s"),
        ],
    )
    def test_validation_names_the_field(self, overrides, message):
        from dataclasses import replace

        with pytest.raises(ChaosError, match=message):
            replace(SoakConfig(), **overrides).validated()

    def test_staleness_bound_budgets_the_watcher_outage(self):
        quiet = SoakConfig(faults=("none",), watch_interval=0.2)
        assert quiet.staleness_bound_s == pytest.approx(2 * 0.2 + 1.0)
        chaotic = SoakConfig(faults=("watcher",), watch_interval=0.2)
        plan = FaultPlan.build(
            chaotic.seed, chaotic.duration_s, chaotic.faults
        )
        assert chaotic.staleness_bound_s == pytest.approx(
            2 * 0.2 + plan.max_window_s("watcher.poll") + 1.0
        )

    def test_metrics_and_event_log_shape(self):
        result = _healthy_result()
        metrics = result.to_metrics()
        assert metrics["dropped_requests"] == 0.0
        assert metrics["publishes"] == 2.0
        assert metrics["busy_retries"] == 1.0
        assert metrics["fault_retries"] == 2.0
        assert metrics["error_drift_ratio"] == pytest.approx(1.0)
        log = result.event_log()
        assert [entry["t_s"] for entry in log] == sorted(
            entry["t_s"] for entry in log
        )
        assert {entry["kind"] for entry in log} == {"publish"}

    def test_fault_names_cover_the_cli_surface(self):
        # The CLI --faults help and docs enumerate these; a rename must
        # be deliberate.
        assert set(FAULT_NAMES) == {
            "worker-kill", "slow-backend", "error-backend",
            "drop-connection", "client-drop", "cluster-kill", "watcher",
            "reload", "rollback",
        }


# ----------------------------------------------------------------------
# Property: appends + reloads serve answers consistent with ground truth
# ----------------------------------------------------------------------

_LABELS = ("CA", "NY", "WA")

_batches = st.lists(
    st.tuples(st.sampled_from(_LABELS), st.integers(0, 3)),
    min_size=1,
    max_size=12,
)
# An op is either an append batch (list of rows) or a reload marker.
_ops = st.lists(
    st.one_of(_batches, st.just("reload")), min_size=0, max_size=4
)


class TestServeIngestProperty:
    """Satellite invariant: any sequence of appends and hot reloads
    leaves the served answers equal to a fresh :class:`ExactBackend`
    over the concatenated relation, within the summary's documented
    error bands (totals ~2% relative, per-state counts ~5% relative —
    the bands ``tests/test_ingest.py`` establishes for delta refits).
    """

    @settings(max_examples=8, deadline=None)
    @given(ops=_ops)
    def test_appends_and_reloads_track_ground_truth(self, ops):
        import tempfile

        relation = _relation(rows=200, seed=9)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-prop-") as tmp:
            store = SummaryStore(tmp)
            store.save(_fit(relation, "prop"), "prop")
            pipeline = IngestPipeline.from_store(store, "prop", relation)
            server = SummaryServer(
                store=store, name="prop", config=ServeConfig(window_ms=0.5)
            )
            with ServerThread(server):
                with ServeClient(port=server.port) as client:
                    for op in ops:
                        if op == "reload":
                            assert client.reload() == store.latest_version(
                                "prop"
                            )
                        else:
                            batch = AppendBatch.from_rows(
                                pipeline.schema, op
                            )
                            pipeline.append(batch)
                    # Serve the final version regardless of how the ops
                    # interleaved publishes and reloads.
                    client.reload()
                    assert client.ping()["version"] == store.latest_version(
                        "prop"
                    )
                    exact = Explorer.attach(ExactBackend(pipeline.relation))
                    total = client.count("SELECT COUNT(*) FROM R")
                    truth = exact.sql("SELECT COUNT(*) FROM R").scalar
                    assert total == pytest.approx(truth, rel=0.02, abs=1.5)
                    for state in _LABELS:
                        sql = (
                            "SELECT COUNT(*) FROM R WHERE "
                            f"state = '{state}'"
                        )
                        assert client.count(sql) == pytest.approx(
                            exact.sql(sql).scalar, rel=0.05, abs=2.5
                        )


# ----------------------------------------------------------------------
# Live soak scenarios (opt-in: --soak or REPRO_SOAK=1)
# ----------------------------------------------------------------------

@pytest.mark.soak
class TestSoakScenarios:
    def test_all_faults_short_soak_holds_invariants(self):
        config = SoakConfig(duration_s=6.0, seed=11, readers=3)
        result = run_soak(config)
        check_invariants(result).raise_if_failed()
        assert result.dropped == []
        assert len(result.injections) > 0  # chaos actually happened
        assert len(result.publishes) >= 1  # ingest actually published
        # The recorded plan replays from the seed alone.
        assert result.plan == FaultPlan.build(
            config.seed, config.duration_s, config.faults
        )

    def test_quiet_soak_is_clean(self):
        result = run_soak(
            SoakConfig(duration_s=3.0, seed=5, readers=2, faults=("none",))
        )
        check_invariants(result).raise_if_failed()
        assert result.injections == []
        assert result.operations == []
        assert result.drift_ratio == pytest.approx(1.0)

    def test_same_seed_same_decision_streams(self):
        # Full replayability of the *fault schedule*: two runs with the
        # same seed inject from identical plans (wall-clock interleaving
        # may differ; the plan and decision streams may not).
        first = run_soak(SoakConfig(duration_s=2.0, seed=21, readers=2))
        second = run_soak(SoakConfig(duration_s=2.0, seed=21, readers=2))
        assert first.plan == second.plan
        check_invariants(first).raise_if_failed()
        check_invariants(second).raise_if_failed()
