"""Sharded summaries: partitioning, merge math, pruning, persistence.

Documented merge tolerances (asserted here and relied on by
``benchmarks/bench_sharding.py`` and ``docs/api.md``):

* ``total`` — exact: shard cardinalities add up to the relation's.
* single-attribute COUNT — sharded and unsharded estimates agree
  within 2% relative + 0.5 absolute (both reproduce the fitted 1D
  marginals, which partition exactly across shards).
* unconstrained SUM / AVG — within 2% relative (same argument, by
  linearity).
* multi-attribute COUNT — within 25% relative + 2.0 absolute of the
  unsharded estimate (different MaxEnt models of the same data; both
  are *estimates*, and their modeling error dominates the gap).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Explorer, SummaryBuilder, SummaryStore
from repro.core.sharding import (
    MergedEstimate,
    ShardedSummary,
    load_model,
    partition_relation,
    shard_prefix,
)
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError
from repro.stats.predicates import Conjunction, RangePredicate
from tests.conftest import relations


def _fit(relation, num_shards=0, by=None, iterations=60, pairs=None, budget=None):
    builder = SummaryBuilder(relation).iterations(iterations)
    if pairs:
        builder.pairs(*pairs).per_pair_budget(budget)
    if num_shards:
        builder.shards(num_shards, by=by, workers=1)
    return builder.fit()


@pytest.fixture(scope="module")
def relation():
    rng = np.random.default_rng(99)
    schema = Schema(
        [integer_domain("A", 4), integer_domain("B", 5), integer_domain("C", 3)]
    )
    columns = []
    for size in schema.sizes():
        weights = 1.0 / (np.arange(size) + 1.0)
        weights /= weights.sum()
        columns.append(rng.choice(size, size=600, p=weights))
    return Relation(schema, columns)


@pytest.fixture(scope="module")
def full_1d(relation):
    return _fit(relation)


@pytest.fixture(scope="module")
def sharded_1d(relation):
    return _fit(relation, num_shards=4)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------

class TestPartition:
    def test_round_robin_sizes_and_marginals(self, relation):
        partition = partition_relation(relation, 4)
        assert partition.num_shards == 4
        assert partition.by_position is None and partition.ranges is None
        sizes = [shard.num_rows for shard in partition.relations]
        assert sum(sizes) == relation.num_rows
        assert max(sizes) - min(sizes) <= 1
        for pos in range(relation.schema.num_attributes):
            merged = sum(shard.marginal(pos) for shard in partition.relations)
            assert np.array_equal(merged, relation.marginal(pos))

    def test_by_attribute_ranges_partition_domain(self, relation):
        partition = partition_relation(relation, 2, by="B")
        assert partition.by_position == 1
        ranges = partition.ranges
        assert ranges[0][0] == 0
        assert ranges[-1][1] == relation.schema.domain("B").size - 1
        for (_, high), (low, _) in zip(ranges, ranges[1:]):
            assert low == high + 1
        total = 0
        for shard, (low, high) in zip(partition.relations, ranges):
            column = shard.column("B")
            assert column.min() >= low and column.max() <= high
            total += shard.num_rows
        assert total == relation.num_rows

    def test_rejects_bad_shard_counts(self, relation):
        with pytest.raises(ReproError, match=">= 2 shards"):
            partition_relation(relation, 1)
        with pytest.raises(ReproError, match="cannot cut"):
            partition_relation(relation, relation.num_rows + 1)
        with pytest.raises(ReproError, match="only"):
            partition_relation(relation, 6, by="A")  # A has 4 values

    def test_rejects_unsplittable_skew(self):
        schema = Schema([integer_domain("A", 3), integer_domain("B", 2)])
        # Every row holds A=1: no balanced 3-way cut of A exists.
        relation = Relation(
            schema,
            [np.ones(30, dtype=np.int64), np.zeros(30, dtype=np.int64)],
        )
        with pytest.raises(ReproError, match="skew|no rows"):
            partition_relation(relation, 3, by="A")


# ----------------------------------------------------------------------
# Merged estimates
# ----------------------------------------------------------------------

class TestMergedEstimate:
    def test_quadrature_std(self):
        estimate = MergedEstimate(3.0, 4.0, 100)
        assert estimate.std == 2.0
        assert estimate.probability == pytest.approx(0.03)
        low, high = estimate.ci95
        assert low == pytest.approx(0.0)  # clipped at zero
        assert high == pytest.approx(3.0 + 1.959963984540054 * 2.0)

    def test_rounding_half_up(self):
        assert MergedEstimate(0.5, 0.0, 10).rounded == 1
        assert MergedEstimate(0.49, 0.0, 10).rounded == 0

    def test_merge_requires_two_shards(self, full_1d):
        with pytest.raises(ReproError, match="two shards"):
            ShardedSummary([full_1d])


# ----------------------------------------------------------------------
# Merge math vs the unsharded model
# ----------------------------------------------------------------------

class TestMergeMath:
    def test_total_is_exact(self, relation, sharded_1d):
        assert sharded_1d.total == relation.num_rows

    def test_single_attribute_counts_match_unsharded(
        self, relation, full_1d, sharded_1d
    ):
        schema = relation.schema
        for attr in schema.attribute_names:
            size = schema.domain(attr).size
            for low in range(size):
                for high in range(low, size):
                    predicate = Conjunction(
                        schema, {attr: RangePredicate(low, high)}
                    )
                    reference = full_1d.engine.estimate(predicate).expectation
                    merged = sharded_1d.estimate(predicate).expectation
                    assert merged == pytest.approx(reference, rel=0.02, abs=0.5)

    def test_multi_attribute_counts_within_documented_tolerance(
        self, relation, full_1d, sharded_1d
    ):
        schema = relation.schema
        for a_value in range(schema.domain("A").size):
            for b_low in range(0, schema.domain("B").size - 1):
                predicate = Conjunction(
                    schema,
                    {
                        "A": RangePredicate.point(a_value),
                        "B": RangePredicate(b_low, b_low + 1),
                    },
                )
                reference = full_1d.engine.estimate(predicate).expectation
                merged = sharded_1d.estimate(predicate).expectation
                assert merged == pytest.approx(reference, rel=0.25, abs=2.0)

    def test_variances_add(self, relation, sharded_1d):
        predicate = Conjunction(relation.schema, {"A": RangePredicate.point(0)})
        merged = sharded_1d.estimate(predicate)
        parts = [
            shard.engine.estimate(predicate) for shard in sharded_1d.shards
        ]
        assert merged.expectation == pytest.approx(
            sum(part.expectation for part in parts)
        )
        assert merged.variance == pytest.approx(
            sum(part.variance for part in parts)
        )

    def test_sum_and_avg_match_unsharded(self, relation, full_1d, sharded_1d):
        weights = np.arange(relation.schema.domain("B").size, dtype=float)
        reference = full_1d.engine.sum_estimate(1, weights)
        merged = sharded_1d.sum_estimate("B", weights)
        assert merged == pytest.approx(reference, rel=0.02)
        assert sharded_1d.avg_estimate("B", weights) == pytest.approx(
            reference / relation.num_rows, rel=0.02
        )

    def test_group_by_sums_to_total(self, relation, sharded_1d):
        grouped = sharded_1d.group_by(["B"])
        assert sum(e.expectation for e in grouped.values()) == pytest.approx(
            sharded_1d.total, rel=1e-6
        )

    def test_group_by_matches_unsharded(self, relation, full_1d, sharded_1d):
        reference = full_1d.group_by(["A"])
        merged = sharded_1d.group_by(["A"])
        assert set(merged) == set(reference)
        for labels, estimate in merged.items():
            assert estimate.expectation == pytest.approx(
                reference[labels].expectation, rel=0.02, abs=0.5
            )

    def test_estimate_batch_equals_per_query(self, relation, sharded_1d):
        schema = relation.schema
        predicates = [
            Conjunction(schema, {"A": RangePredicate.point(0)}),
            Conjunction(schema, {"B": RangePredicate(1, 3)}),
            Conjunction(
                schema,
                {"A": RangePredicate(1, 2), "C": RangePredicate.point(1)},
            ),
            Conjunction(schema, {}),
        ]
        sharded_1d.clear_cache()
        batch = sharded_1d.estimate_batch(predicates)
        fallback = sharded_1d.estimate_batch(
            predicates, parallel=False, use_arena=False
        )
        threaded = sharded_1d.estimate_batch(
            predicates, parallel=True, use_arena=False
        )
        for predicate, merged, per_shard, via_threads in zip(
            predicates, batch, fallback, threaded
        ):
            single = sharded_1d.estimate(predicate)
            assert merged.expectation == pytest.approx(single.expectation)
            assert merged.variance == pytest.approx(single.variance)
            assert per_shard.expectation == pytest.approx(single.expectation)
            assert per_shard.variance == pytest.approx(single.variance)
            assert via_threads.expectation == pytest.approx(single.expectation)

    @settings(max_examples=8, deadline=None)
    @given(data=relations(max_rows=120), seed=st.integers(0, 10_000))
    def test_property_single_attribute_merge(self, data, seed):
        """Round-robin shards of any relation merge single-attribute
        counts to the unsharded answer (both recover 1D marginals)."""
        if data.num_rows < 3:
            return
        full = _fit(data, iterations=40)
        sharded = _fit(data, num_shards=3, iterations=40)
        assert sharded.total == data.num_rows
        rng = np.random.default_rng(seed)
        attr = int(rng.integers(0, data.schema.num_attributes))
        size = data.schema.domain(attr).size
        low = int(rng.integers(0, size))
        high = int(rng.integers(low, size))
        predicate = Conjunction(data.schema, {attr: RangePredicate(low, high)})
        reference = full.engine.estimate(predicate).expectation
        merged = sharded.estimate(predicate).expectation
        assert merged == pytest.approx(reference, rel=0.02, abs=0.5)


# ----------------------------------------------------------------------
# Attribute partitioning: pruning and narrowing
# ----------------------------------------------------------------------

class TestPruning:
    @pytest.fixture(scope="class")
    def by_sharded(self, relation):
        return _fit(relation, num_shards=2, by="B")

    def test_point_query_touches_one_shard(self, relation, by_sharded):
        # The legacy per-shard path materializes pruning as "engine never
        # called"; the arena folds owned ranges into the masks instead
        # (covered by tests/test_arena.py).
        by_sharded.clear_cache()
        predicate = Conjunction(relation.schema, {"B": RangePredicate.point(0)})
        by_sharded.estimate(predicate, use_arena=False)
        touched = [
            shard.engine.cache_misses > 0 for shard in by_sharded.shards
        ]
        assert touched.count(True) == 1

    def test_pruned_shards_contribute_zero(self, relation, full_1d, by_sharded):
        schema = relation.schema
        for value in range(schema.domain("B").size):
            predicate = Conjunction(schema, {"B": RangePredicate.point(value)})
            reference = full_1d.engine.estimate(predicate).expectation
            merged = by_sharded.estimate(predicate).expectation
            assert merged == pytest.approx(reference, rel=0.02, abs=0.5)

    def test_cross_shard_range_merges(self, relation, full_1d, by_sharded):
        schema = relation.schema
        size = schema.domain("B").size
        predicate = Conjunction(schema, {"B": RangePredicate(0, size - 1)})
        merged = by_sharded.estimate(predicate).expectation
        assert merged == pytest.approx(relation.num_rows, rel=0.02)

    def test_group_by_on_shard_attribute_partitions_labels(
        self, relation, by_sharded
    ):
        grouped = by_sharded.group_by(["B"])
        assert len(grouped) == relation.schema.domain("B").size
        assert sum(e.expectation for e in grouped.values()) == pytest.approx(
            by_sharded.total, rel=0.02
        )


# ----------------------------------------------------------------------
# Parallel build
# ----------------------------------------------------------------------

class TestParallelBuild:
    def test_worker_processes_match_serial(self, relation):
        serial = _fit(relation, num_shards=2, iterations=20)
        builder = (
            SummaryBuilder(relation).iterations(20).shards(2, workers=2)
        )
        parallel = builder.fit()
        predicate = Conjunction(relation.schema, {"A": RangePredicate(1, 2)})
        assert parallel.estimate(predicate).expectation == pytest.approx(
            serial.estimate(predicate).expectation
        )

    def test_budget_divides_across_shards(self, relation):
        sharded = _fit(
            relation, num_shards=2, iterations=10, pairs=[("A", "B")], budget=8
        )
        # ceil(8 / 2) = 4 buckets per shard pair: the sharded model's
        # total 2D budget stays at the unsharded level.
        for shard in sharded.shards:
            assert shard.statistic_set.num_multi_dim <= 4

    def test_shard_names_derive_from_summary_name(self, relation):
        sharded = (
            SummaryBuilder(relation)
            .iterations(5)
            .name("demo")
            .shards(2, workers=1)
            .fit()
        )
        assert [shard.name for shard in sharded.shards] == [
            "demo/shard0",
            "demo/shard1",
        ]

    def test_builder_validation(self, relation):
        with pytest.raises(ReproError, match="shards"):
            SummaryBuilder(relation).shards(0)
        with pytest.raises(ReproError, match="workers"):
            SummaryBuilder(relation).shards(2, workers=0)
        # shards(1) restores the unsharded fit.
        summary = SummaryBuilder(relation).iterations(5).shards(1).fit()
        assert not isinstance(summary, ShardedSummary)


# ----------------------------------------------------------------------
# Persistence: prefix save/load and the versioned store
# ----------------------------------------------------------------------

class TestPersistence:
    def test_prefix_round_trip(self, relation, tmp_path):
        sharded = _fit(relation, num_shards=2, by="B", iterations=10)
        prefix = tmp_path / "model"
        sharded.save(prefix)
        assert prefix.with_suffix(".json").exists()
        assert shard_prefix(prefix, 0).with_suffix(".npz").exists()
        loaded = load_model(prefix)
        assert isinstance(loaded, ShardedSummary)
        assert loaded.shard_by == "B"
        predicate = Conjunction(relation.schema, {"B": RangePredicate(1, 3)})
        assert loaded.estimate(predicate).expectation == pytest.approx(
            sharded.estimate(predicate).expectation
        )

    def test_load_model_dispatches_plain_summaries(self, full_1d, tmp_path):
        prefix = tmp_path / "plain"
        full_1d.save(prefix)
        loaded = load_model(prefix)
        assert not isinstance(loaded, ShardedSummary)

    def test_store_round_trip(self, relation, tmp_path):
        sharded = _fit(relation, num_shards=3, iterations=10)
        store = SummaryStore(tmp_path / "store")
        record = store.save(sharded, "demo", tag="first")
        assert record.shards == 3
        assert record.shard_by is None
        assert record.num_statistics == sharded.num_statistics
        assert "3 shards" in record.describe()
        loaded = store.load("demo")
        assert isinstance(loaded, ShardedSummary)
        assert loaded.num_shards == 3
        predicate = Conjunction(relation.schema, {"C": RangePredicate.point(1)})
        assert loaded.estimate(predicate).expectation == pytest.approx(
            sharded.estimate(predicate).expectation
        )

    def test_store_mixes_plain_and_sharded_versions(
        self, relation, full_1d, tmp_path
    ):
        store = SummaryStore(tmp_path / "store")
        store.save(full_1d, "model")
        sharded = _fit(relation, num_shards=2, iterations=10)
        store.save(sharded, "model")
        assert store.record("model", version=1).shards == 0
        assert store.record("model", version=2).shards == 2
        assert not isinstance(
            store.load("model", version=1), ShardedSummary
        )
        assert isinstance(store.load("model", version=2), ShardedSummary)

    def test_store_delete_removes_shard_files(self, relation, tmp_path):
        root = tmp_path / "store"
        store = SummaryStore(root)
        sharded = _fit(relation, num_shards=2, iterations=10)
        store.save(sharded, "doomed")
        assert any(root.rglob("*-shard*.npz"))
        store.delete("doomed")
        assert not any(root.rglob("*-shard*.npz"))
        assert not any(root.rglob("*-shard*.json"))


# ----------------------------------------------------------------------
# Explorer integration
# ----------------------------------------------------------------------

class TestExplorerIntegration:
    @pytest.fixture(scope="class")
    def session(self, relation):
        return Explorer.attach(_fit(relation, num_shards=2, iterations=30))

    def test_attach_uses_sharded_backend(self, session):
        card = session.describe()
        assert card["type"] == "ShardedBackend"
        assert card["shards"] == 2

    def test_sql_scalar_carries_error_bounds(self, session):
        result = session.sql("SELECT COUNT(*) FROM R WHERE A = 1")
        assert result.is_scalar
        assert result.std is not None and result.std >= 0.0
        low, high = result.ci95
        assert low <= result.scalar <= high

    def test_group_by_sql(self, session, relation):
        result = session.sql(
            "SELECT B, COUNT(*) AS c FROM R GROUP BY B ORDER BY c DESC"
        )
        assert len(result.rows) == relation.schema.domain("B").size

    def test_run_many_matches_sequential(self, session):
        queries = [
            session.query().where(A=value).to_ast() for value in range(4)
        ] + [session.query().where(B__between=(1, 3)).to_ast()]
        session.clear_cache()
        batched = [result.scalar for result in session.run_many(queries)]
        session.clear_cache()
        sequential = [session.execute(query).scalar for query in queries]
        assert batched == pytest.approx(sequential)

    def test_rounded_session(self, relation):
        sharded = _fit(relation, num_shards=2, iterations=10)
        rounded = Explorer.attach(sharded, rounded=True)
        value = rounded.sql("SELECT COUNT(*) FROM R WHERE A = 3 AND C = 2").scalar
        assert value == int(value)

    def test_avg_query(self, session, relation):
        value = session.query().avg("B").value()
        exact = float(relation.column("B").mean())
        assert value == pytest.approx(exact, rel=0.05, abs=0.1)

    def test_open_from_store(self, relation, tmp_path):
        sharded = _fit(relation, num_shards=2, iterations=10)
        store = SummaryStore(tmp_path / "store")
        store.save(sharded, "demo")
        session = Explorer.open(store, "demo")
        assert session.summary.num_shards == 2
        assert session.sql("SELECT COUNT(*) FROM R").scalar == pytest.approx(
            relation.num_rows, rel=0.01
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_sharded_build_query_info(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data"
        assert main(
            ["generate", "flights", "--rows", "2000", "--seed", "3",
             "--out", str(data)]
        ) == 0
        store = tmp_path / "models"
        assert main(
            [
                "build", "--data", str(data),
                "--pairs", "fl_time:distance", "--budget", "12",
                "--iterations", "5", "--shards", "2", "--workers", "1",
                "--store", str(store), "--name", "fl",
            ]
        ) == 0
        assert "shards=2" in capsys.readouterr().out
        assert main(
            [
                "query", "--store", str(store), "--name", "fl",
                "--sql", "SELECT COUNT(*) FROM R WHERE distance >= 1000",
            ]
        ) == 0
        assert float(capsys.readouterr().out.strip()) >= 0.0
        assert main(["info", "--store", str(store), "--name", "fl"]) == 0
        out = capsys.readouterr().out
        assert "sharding:   2 shards" in out

    def test_shard_by_requires_shards(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "data"
        assert main(
            ["generate", "flights", "--rows", "500", "--out", str(data)]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "build", "--data", str(data), "--shard-by", "origin_state",
                "--out", str(tmp_path / "m"),
            ]
        )
        assert code == 1
        assert "--shards" in capsys.readouterr().err
