"""Unit tests for repro.data.binning."""

import numpy as np
import pytest

from repro.data.binning import Bucket, EquiWidthBinner, TopKGroupBinner
from repro.errors import DomainError


class TestBucket:
    def test_membership_half_open(self):
        bucket = Bucket(0.0, 10.0)
        assert 0.0 in bucket
        assert 9.999 in bucket
        assert 10.0 not in bucket

    def test_membership_closed_right(self):
        bucket = Bucket(0.0, 10.0, closed_right=True)
        assert 10.0 in bucket

    def test_midpoint(self):
        assert Bucket(2.0, 4.0).midpoint == 3.0

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            Bucket(5.0, 5.0)

    def test_equality(self):
        assert Bucket(0, 1) == Bucket(0, 1)
        assert Bucket(0, 1) != Bucket(0, 1, closed_right=True)


class TestEquiWidthBinner:
    def test_bucket_count_and_domain(self):
        binner = EquiWidthBinner("x", 0.0, 100.0, 10)
        assert binner.domain.size == 10
        assert binner.domain.name == "x"

    def test_bin_values_uniform_widths(self):
        binner = EquiWidthBinner("x", 0.0, 100.0, 10)
        values = np.array([0.0, 5.0, 10.0, 95.0, 100.0])
        assert binner.bin_values(values).tolist() == [0, 0, 1, 9, 9]

    def test_max_value_in_last_bucket(self):
        binner = EquiWidthBinner("x", 0.0, 7.0, 3)
        assert binner.bucket_of(7.0) == 2

    def test_out_of_range_raises(self):
        binner = EquiWidthBinner("x", 0.0, 10.0, 5)
        with pytest.raises(DomainError, match="outside the binned range"):
            binner.bin_values(np.array([11.0]))
        with pytest.raises(DomainError):
            binner.bin_values(np.array([-0.1]))

    def test_round_trip_bucket_contains_value(self):
        binner = EquiWidthBinner("x", 0.0, 13.0, 7)
        for value in [0.0, 1.3, 6.5, 12.99, 13.0]:
            index = binner.bucket_of(value)
            assert value in binner.domain.label_of(index)

    def test_invalid_parameters(self):
        with pytest.raises(DomainError):
            EquiWidthBinner("x", 0.0, 10.0, 0)
        with pytest.raises(DomainError):
            EquiWidthBinner("x", 10.0, 10.0, 3)

    def test_empty_input(self):
        binner = EquiWidthBinner("x", 0.0, 10.0, 5)
        assert binner.bin_values(np.array([])).size == 0


class TestTopKGroupBinner:
    def _make(self):
        groups = ["WA"] * 6 + ["CA"] * 4 + ["VT"]
        values = (
            ["Seattle", "Seattle", "Seattle", "Spokane", "Spokane", "Tacoma"]
            + ["LA", "LA", "SF", "Fresno"]
            + ["Burlington"]
        )
        return TopKGroupBinner("city", groups, values, k=2), groups, values

    def test_top_values_kept(self):
        binner, _, _ = self._make()
        assert binner.bin_pair("WA", "Seattle") == ("WA", "Seattle")
        assert binner.bin_pair("WA", "Spokane") == ("WA", "Spokane")

    def test_rare_values_folded(self):
        binner, _, _ = self._make()
        assert binner.bin_pair("WA", "Tacoma") == ("WA", "Other")

    def test_domain_size(self):
        binner, _, _ = self._make()
        # WA: 2 kept + Other; CA: 2 kept + Other; VT: 1 kept + Other.
        assert binner.domain.size == 3 + 3 + 2

    def test_single_value_group(self):
        binner, _, _ = self._make()
        assert binner.bin_pair("VT", "Burlington") == ("VT", "Burlington")
        assert binner.bin_pair("VT", "Montpelier") == ("VT", "Other")

    def test_bin_rows(self):
        binner, groups, values = self._make()
        indices = binner.bin_rows(groups, values)
        assert indices.shape == (len(groups),)
        assert indices.min() >= 0
        assert indices.max() < binner.domain.size

    def test_unknown_group_raises(self):
        binner, _, _ = self._make()
        with pytest.raises(DomainError, match="unknown group"):
            binner.bin_pair("TX", "Austin")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DomainError, match="equal length"):
            TopKGroupBinner("city", ["WA"], [])

    def test_invalid_k(self):
        with pytest.raises(DomainError):
            TopKGroupBinner("city", ["WA"], ["Seattle"], k=0)
