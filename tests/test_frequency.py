"""Unit tests for repro.data.frequency."""

import numpy as np
import pytest
from hypothesis import given

from repro.data.frequency import (
    all_tuples,
    frequency_vector,
    relation_from_frequency,
    tuple_index,
    unflatten_index,
)
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import SchemaError

from tests.conftest import relations


@pytest.fixture
def schema():
    return Schema([integer_domain("a", 2), integer_domain("b", 3)])


class TestTupleIndexing:
    def test_row_major_order(self, schema):
        assert tuple_index(schema, (0, 0)) == 0
        assert tuple_index(schema, (0, 2)) == 2
        assert tuple_index(schema, (1, 0)) == 3
        assert tuple_index(schema, (1, 2)) == 5

    def test_round_trip(self, schema):
        for flat in range(schema.num_possible_tuples()):
            assert tuple_index(schema, unflatten_index(schema, flat)) == flat

    def test_out_of_range(self, schema):
        with pytest.raises(SchemaError):
            tuple_index(schema, (0, 3))
        with pytest.raises(SchemaError):
            tuple_index(schema, (0,))

    def test_all_tuples_enumeration(self, schema):
        tuples = list(all_tuples(schema))
        assert len(tuples) == 6
        assert tuples[0] == (0, 0)
        assert tuples[-1] == (1, 2)
        # row-major: matches tuple_index
        for flat, indices in enumerate(tuples):
            assert tuple_index(schema, indices) == flat


class TestFrequencyVector:
    def test_counts(self, schema):
        relation = Relation.from_rows(schema, [(0, 0), (0, 0), (1, 2)])
        freq = frequency_vector(relation)
        assert freq.tolist() == [2, 0, 0, 0, 0, 1]

    def test_l1_norm_is_cardinality(self, schema):
        relation = Relation.from_rows(schema, [(0, 1), (1, 1), (1, 1)])
        assert frequency_vector(relation).sum() == relation.num_rows

    @given(relations(max_rows=80))
    def test_round_trip_through_relation(self, relation):
        freq = frequency_vector(relation)
        rebuilt = relation_from_frequency(relation.schema, freq)
        assert np.array_equal(frequency_vector(rebuilt), freq)
        assert rebuilt.num_rows == relation.num_rows

    def test_relation_from_negative_frequency_rejected(self, schema):
        with pytest.raises(SchemaError, match="non-negative"):
            relation_from_frequency(schema, np.array([1, -1, 0, 0, 0, 0]))

    def test_relation_from_wrong_length_rejected(self, schema):
        with pytest.raises(SchemaError, match="length"):
            relation_from_frequency(schema, np.array([1, 0]))

    def test_refuses_huge_schema(self):
        big = Schema([integer_domain(f"x{i}", 300) for i in range(4)])
        with pytest.raises(SchemaError, match="refusing"):
            list(all_tuples(big))
