"""Tests for the SQL subset parser."""

import pytest

from repro.errors import QueryError
from repro.query.ast import Condition, CountQuery
from repro.query.parser import parse_query


class TestBasicParsing:
    def test_plain_count(self):
        query = parse_query("SELECT COUNT(*) FROM R")
        assert query.table == "R"
        assert not query.conditions
        assert not query.is_grouped

    def test_count_with_alias(self):
        query = parse_query("SELECT COUNT(*) AS cnt FROM flights")
        assert query.table == "flights"

    def test_case_insensitive_keywords(self):
        query = parse_query("select count(*) from R where a = 1")
        assert len(query.conditions) == 1

    def test_trailing_semicolon(self):
        query = parse_query("SELECT COUNT(*) FROM R;")
        assert query.table == "R"


class TestConditions:
    def test_equality_string(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        condition = query.conditions[0]
        assert condition.attribute == "state"
        assert condition.op == "="
        assert condition.values == ["CA"]

    def test_equality_number(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE hour = 7")
        assert query.conditions[0].values == [7]

    def test_float_literal(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE x = 2.5")
        assert query.conditions[0].values == [2.5]

    def test_negative_number(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE x = -3")
        assert query.conditions[0].values == [-3]

    def test_in_list(self):
        query = parse_query(
            "SELECT COUNT(*) FROM R WHERE state IN ('CA', 'NY', 'WA')"
        )
        assert query.conditions[0].op == "in"
        assert query.conditions[0].values == ["CA", "NY", "WA"]

    def test_between(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE dist BETWEEN 100 AND 300")
        condition = query.conditions[0]
        assert condition.op == "between"
        assert condition.values == [100, 300]

    def test_comparisons(self):
        for op in ("<", "<=", ">", ">=", "!="):
            query = parse_query(f"SELECT COUNT(*) FROM R WHERE x {op} 5")
            assert query.conditions[0].op == op

    def test_not_equal_alt_spelling(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE x <> 5")
        assert query.conditions[0].op == "!="

    def test_multiple_conditions(self):
        query = parse_query(
            "SELECT COUNT(*) FROM R WHERE a = 1 AND b = 'x' AND c BETWEEN 0 AND 9"
        )
        assert [condition.attribute for condition in query.conditions] == [
            "a", "b", "c",
        ]

    def test_quoted_string_with_escaped_quote(self):
        query = parse_query("SELECT COUNT(*) FROM R WHERE a = 'O''Hare'")
        assert query.conditions[0].values == ["O'Hare"]

    def test_duplicate_attribute_accepted(self):
        # The planner's normalize stage intersects per-attribute
        # conditions (x >= 3 AND x <= 7 == BETWEEN 3 AND 7), so the
        # parser keeps both conjuncts.
        query = parse_query("SELECT COUNT(*) FROM R WHERE a >= 1 AND a <= 2")
        assert [condition.attribute for condition in query.conditions] == [
            "a", "a",
        ]

    def test_reversed_between_rejected(self):
        with pytest.raises(QueryError, match="reversed BETWEEN"):
            parse_query("SELECT COUNT(*) FROM R WHERE a BETWEEN 7 AND 3")

    def test_unquoted_string_literal_named(self):
        with pytest.raises(QueryError, match="quoted"):
            parse_query("SELECT COUNT(*) FROM R WHERE state = CA")

    def test_unquoted_string_in_list_named(self):
        with pytest.raises(QueryError, match="'CA'"):
            parse_query("SELECT COUNT(*) FROM R WHERE state IN (CA, NY)")

    def test_or_rejected_with_clear_message(self):
        with pytest.raises(QueryError, match="OR"):
            parse_query("SELECT COUNT(*) FROM R WHERE a = 1 OR a = 2")


class TestGroupOrderLimit:
    def test_group_by(self):
        query = parse_query(
            "SELECT state, COUNT(*) FROM R GROUP BY state"
        )
        assert query.group_by == ["state"]

    def test_group_by_multiple(self):
        query = parse_query(
            "SELECT a, b, COUNT(*) FROM R GROUP BY a, b"
        )
        assert query.group_by == ["a", "b"]

    def test_paper_query_template(self):
        query = parse_query(
            "SELECT A, COUNT(*) AS cnt FROM R GROUP BY A ORDER BY cnt DESC LIMIT 10"
        )
        assert query.group_by == ["A"]
        assert query.order == "desc"
        assert query.limit == 10

    def test_order_default_asc(self):
        query = parse_query(
            "SELECT a, COUNT(*) AS cnt FROM R GROUP BY a ORDER BY cnt"
        )
        assert query.order == "asc"

    def test_select_list_must_match_group_by(self):
        with pytest.raises(QueryError, match="match"):
            parse_query("SELECT a, COUNT(*) FROM R GROUP BY b")

    def test_select_list_implies_group_by(self):
        query = parse_query("SELECT a, b, COUNT(*) FROM R")
        assert query.group_by == ["a", "b"]

    def test_limit_requires_integer(self):
        with pytest.raises(QueryError, match="integer"):
            parse_query("SELECT a, COUNT(*) FROM R GROUP BY a LIMIT 2.5")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) R")

    def test_garbage(self):
        with pytest.raises(QueryError):
            parse_query("DELETE FROM R")

    def test_trailing_tokens(self):
        with pytest.raises(QueryError, match="trailing"):
            parse_query("SELECT COUNT(*) FROM R extra")

    def test_unterminated_condition(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM R WHERE a =")

    def test_empty_in_list(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM R WHERE a IN ()")

    def test_untokenizable(self):
        with pytest.raises(QueryError, match="tokenize"):
            parse_query("SELECT COUNT(*) FROM R WHERE a = #")


class TestAstValidation:
    def test_condition_validation(self):
        with pytest.raises(QueryError):
            Condition("a", "between", [1])
        with pytest.raises(QueryError):
            Condition("a", "=", [1, 2])
        with pytest.raises(QueryError):
            Condition("a", "in", [])
        with pytest.raises(QueryError):
            Condition("a", "like", ["x"])

    def test_order_requires_group(self):
        with pytest.raises(QueryError):
            CountQuery("R", order="desc")

    def test_repr_round_trip(self):
        text = (
            "SELECT a, COUNT(*) FROM R WHERE b = 'x' AND c BETWEEN 1 AND 5 "
            "GROUP BY a ORDER BY cnt DESC LIMIT 3"
        )
        query = parse_query(text)
        reparsed = parse_query(repr(query))
        assert repr(reparsed) == repr(query)
