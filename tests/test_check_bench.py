"""Tests for the perf-regression gate (``tools/check_bench.py``).

The acceptance bar from the CI satellite: the gate must exit non-zero
on a synthetically regressed report and stay green on faithful ones,
with per-metric tolerance bands — speedups may regress at most 20%,
error metrics may not grow above their baseline ceiling.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_bench  # noqa: E402  (tools/ is not a package)


def _write_report(
    directory: Path,
    name: str,
    metrics: dict,
    *,
    scale: str = "small",
    passed: bool = True,
) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(
            {
                "format_version": 1,
                "name": name,
                "scale": scale,
                "metrics": metrics,
                "passed": passed,
            }
        )
    )


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baselines"
    runs = tmp_path / "runs"
    return baseline, runs


def _compare(baseline: Path, runs: Path, *names: str) -> int:
    return check_bench.main(
        [
            "compare",
            "--baseline-dir", str(baseline),
            "--runs-root", str(runs),
            *names,
        ]
    )


class TestClassify:
    @pytest.mark.parametrize(
        "metric, expected",
        [
            ("ingest_speedup", "higher"),
            ("build_speedup", "higher"),
            ("cache_hit_rate", "higher"),
            ("mean_rel_error_delta", "lower"),
            ("smoke_errors", "lower"),
            ("batch_time_ratio", "lower"),
            ("qps_coalesced", "qps"),  # absolute: gated with wide bands
            ("smoke_qps", "qps"),
            ("p50_ms_coalesced", "latency"),
            ("cached_ms", "latency"),
            ("rebuild_s", "info"),
            ("num_shards", "info"),
        ],
    )
    def test_classes(self, metric, expected):
        assert check_bench.classify(metric) == expected


class TestCompare:
    def test_green_on_faithful_report(self, dirs):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 3.5, "error_ratio": 1.2})
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 3.4, "error_ratio": 1.1})
        assert _compare(baseline, runs) == 0

    def test_speedup_may_regress_20_percent(self, dirs):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 3.21})
        assert _compare(baseline, runs) == 0

    def test_regressed_speedup_fails(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 3.1})
        assert _compare(baseline, runs) == 1
        assert "ingest_speedup regressed" in capsys.readouterr().err

    def test_error_metric_may_not_grow(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "sharding", {"mean_rel_error_sharded": 0.10})
        _write_report(runs / "run1", "sharding", {"mean_rel_error_sharded": 0.101})
        assert _compare(baseline, runs) == 1
        assert "grew" in capsys.readouterr().err

    def test_partial_first_run_does_not_hide_metrics(self, dirs):
        """A run that died mid-suite leaves a partial report; the
        surviving runs must still supply every gated metric's median
        instead of tripping a false 'metric missing' failure."""
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0, "error_ratio": 1.2})
        _write_report(runs / "run1", "ingest", {"warm_final_error": 0.01}, passed=False)
        _write_report(runs / "run2", "ingest", {"ingest_speedup": 4.1, "error_ratio": 1.1})
        _write_report(runs / "run3", "ingest", {"ingest_speedup": 3.9, "error_ratio": 1.0})
        assert _compare(baseline, runs) == 0

    def test_median_of_three_runs_absorbs_one_outlier(self, dirs):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 4.1})
        _write_report(runs / "run2", "ingest", {"ingest_speedup": 1.0})  # noisy
        _write_report(runs / "run3", "ingest", {"ingest_speedup": 3.9})
        assert _compare(baseline, runs) == 0

    def test_internal_thresholds_must_pass_majority(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 4.0}, passed=False)
        _write_report(runs / "run2", "ingest", {"ingest_speedup": 4.0}, passed=False)
        _write_report(runs / "run3", "ingest", {"ingest_speedup": 4.0})
        assert _compare(baseline, runs) == 1
        assert "internal thresholds" in capsys.readouterr().err

    def test_missing_report_fails(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        (runs / "run1").mkdir(parents=True)
        assert _compare(baseline, runs) == 1
        assert "no BENCH_ingest.json" in capsys.readouterr().err

    def test_missing_metric_fails(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        _write_report(runs / "run1", "ingest", {"error_ratio": 1.0})
        assert _compare(baseline, runs) == 1
        assert "missing" in capsys.readouterr().err

    def test_scale_mismatch_fails(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0}, scale="small")
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 4.0}, scale="paper")
        assert _compare(baseline, runs) == 1
        assert "not comparable" in capsys.readouterr().err

    def test_info_metrics_never_gate(self, dirs):
        baseline, runs = dirs
        _write_report(baseline, "serve", {"soak_duration_s": 10.0, "speedup": 3.0})
        # A *_s timing doubled (slow runner) but the ratio held.
        _write_report(runs / "run1", "serve", {"soak_duration_s": 20.0, "speedup": 2.9})
        assert _compare(baseline, runs) == 0

    def test_qps_gates_with_wide_band(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "serve", {"qps_coalesced": 5000.0})
        # Within the 50% band: noise, not a regression.
        _write_report(runs / "run1", "serve", {"qps_coalesced": 2600.0})
        assert _compare(baseline, runs) == 0
        # Below the floor: a real protocol-level collapse.
        _write_report(runs / "run1", "serve", {"qps_coalesced": 2400.0})
        assert _compare(baseline, runs) == 1
        assert "regressed" in capsys.readouterr().err

    def test_latency_gates_with_wide_band(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "serve", {"p95_ms_coalesced": 4.0})
        _write_report(runs / "run1", "serve", {"p95_ms_coalesced": 5.9})
        assert _compare(baseline, runs) == 0
        _write_report(runs / "run1", "serve", {"p95_ms_coalesced": 6.1})
        assert _compare(baseline, runs) == 1
        assert "grew" in capsys.readouterr().err

    def test_unknown_requested_name_fails(self, dirs, capsys):
        baseline, runs = dirs
        _write_report(baseline, "ingest", {"ingest_speedup": 4.0})
        assert _compare(baseline, runs, "nonexistent") == 1
        assert "no baseline" in capsys.readouterr().err

    def test_empty_baseline_dir_fails(self, dirs, capsys):
        baseline, runs = dirs
        baseline.mkdir()
        _write_report(runs / "run1", "ingest", {"ingest_speedup": 4.0})
        assert _compare(baseline, runs) == 1


class TestUpdate:
    def test_update_pads_gated_metrics(self, dirs):
        baseline, runs = dirs
        _write_report(
            runs / "run1",
            "ingest",
            {"ingest_speedup": 4.0, "error_ratio": 1.0, "rebuild_s": 2.0},
        )
        code = check_bench.main(
            [
                "update",
                "--baseline-dir", str(baseline),
                "--runs-root", str(runs),
            ]
        )
        assert code == 0
        document = json.loads((baseline / "BENCH_ingest.json").read_text())
        metrics = document["metrics"]
        assert metrics["ingest_speedup"] == pytest.approx(4.0 * 0.85)
        assert metrics["error_ratio"] == pytest.approx(1.25)
        assert metrics["rebuild_s"] == 2.0  # informational: stored as-is
        # A fresh report identical to the measurements passes the gate.
        assert _compare(baseline, runs) == 0

    def test_update_with_no_reports_fails(self, dirs, capsys):
        baseline, runs = dirs
        runs.mkdir()
        code = check_bench.main(
            ["update", "--baseline-dir", str(baseline), "--runs-root", str(runs)]
        )
        assert code == 1


class TestRun:
    def _run(self, tmp_path, body: str, repeat: int = 1) -> int:
        test_file = tmp_path / "test_tiny.py"
        test_file.write_text(body)
        return check_bench.main(
            [
                "run",
                "--repeat", str(repeat),
                "--out-dir", str(tmp_path / "out"),
                "--",
                "-q", str(test_file), "-p", "no:cacheprovider",
            ]
        )

    def test_passing_suite(self, tmp_path):
        assert self._run(tmp_path, "def test_ok():\n    assert True\n") == 0

    def test_failing_suite(self, tmp_path):
        assert self._run(tmp_path, "def test_no():\n    assert False\n") == 1

    def test_run_scrubs_stale_reports(self, tmp_path):
        """A report left by a previous invocation must not survive into
        a new run — a crashed suite has to show up as 'no report', not
        be gated against last time's numbers."""
        run_dir = tmp_path / "out" / "run1"
        _write_report(run_dir, "stale", {"speedup": 9.9})
        assert self._run(tmp_path, "def test_ok():\n    assert True\n") == 0
        assert not (run_dir / "BENCH_stale.json").exists()

    def test_run_requires_pytest_args(self):
        with pytest.raises(SystemExit, match="pytest arguments"):
            check_bench.main(["run", "--repeat", "1"])

    def test_bench_dir_redirect(self, tmp_path, monkeypatch):
        """REPRO_BENCH_DIR steers the emitter into the run directory."""
        from benchmarks._emit import BenchReport

        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "redirect"))
        report = BenchReport("redirect-check")
        report.record({"x": 1.0})
        assert (tmp_path / "redirect" / "BENCH_redirect-check.json").exists()
