"""Unit tests for compressed-term construction (Theorem 4.1)."""

import numpy as np
import pytest

from repro.core.terms import build_components
from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import StatisticError
from repro.stats.statistic import StatisticSet, range_statistic_2d


def make_set(schema, num_rows, stats):
    rng = np.random.default_rng(0)
    columns = [rng.integers(0, size, num_rows) for size in schema.sizes()]
    relation = Relation(schema, columns)
    measured = []
    for attr_a, range_a, attr_b, range_b in stats:
        masks = {}
        for attr, (low, high) in ((attr_a, range_a), (attr_b, range_b)):
            size = schema.domain(attr).size
            mask = np.zeros(size, dtype=bool)
            mask[low : high + 1] = True
            masks[attr] = mask
        measured.append(
            range_statistic_2d(
                schema, attr_a, range_a, attr_b, range_b,
                float(relation.count_where(masks)),
            )
        )
    return StatisticSet.from_relation(relation, measured)


@pytest.fixture
def schema():
    return Schema(
        [integer_domain("a", 6), integer_domain("b", 6), integer_domain("c", 6),
         integer_domain("d", 6)]
    )


class TestComponents:
    def test_no_stats_all_free(self, schema):
        statistic_set = make_set(schema, 50, [])
        components, free = build_components(statistic_set)
        assert components == []
        assert free == [0, 1, 2, 3]

    def test_single_stat_one_component(self, schema):
        statistic_set = make_set(schema, 50, [("a", (0, 2), "b", (1, 3))])
        components, free = build_components(statistic_set)
        assert len(components) == 1
        assert components[0].positions == (0, 1)
        assert free == [2, 3]
        # Terms: empty set + the singleton.
        assert components[0].num_terms == 2

    def test_disjoint_pairs_factor_into_components(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 2), "b", (1, 3)), ("c", (0, 1), "d", (2, 4))],
        )
        components, free = build_components(statistic_set)
        # (a,b) and (c,d) share no attribute: two components, not a
        # 4-attribute cross product.
        assert len(components) == 2
        assert free == []
        assert all(component.num_terms == 2 for component in components)

    def test_overlapping_pairs_create_joint_term(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 3), "b", (1, 4)), ("b", (2, 5), "c", (0, 2))],
        )
        components, _ = build_components(statistic_set)
        assert len(components) == 1
        component = components[0]
        assert component.positions == (0, 1, 2)
        # empty, {0}, {1}, {0,1} (b ranges [1,4] and [2,5] intersect).
        assert component.num_terms == 4
        joint = [stats for stats in component.term_stats if len(stats) == 2]
        assert joint == [(0, 1)]

    def test_non_intersecting_shared_attr_no_joint_term(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 3), "b", (0, 1)), ("b", (4, 5), "c", (0, 2))],
        )
        components, _ = build_components(statistic_set)
        # Same component (shared attribute b) but no joint term
        # (b-ranges [0,1] and [4,5] are disjoint).
        assert len(components) == 1
        assert components[0].num_terms == 3

    def test_joint_term_ranges_are_intersections(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 3), "b", (1, 4)), ("b", (2, 5), "c", (0, 2))],
        )
        components, _ = build_components(statistic_set)
        component = components[0]
        joint_row = component.term_stats.index((0, 1))
        pos_b = 1
        assert component.lo[pos_b][joint_row] == 2
        assert component.hi[pos_b][joint_row] == 4

    def test_empty_term_has_full_ranges(self, schema):
        statistic_set = make_set(schema, 50, [("a", (1, 2), "c", (3, 4))])
        components, _ = build_components(statistic_set)
        component = components[0]
        assert component.term_stats[0] == ()
        assert component.lo[0][0] == 0
        assert component.hi[0][0] == 5

    def test_triple_intersection(self, schema):
        # Three pairs sharing attribute b with mutually intersecting
        # b-ranges on a/c/d -> S-sets up to size 3.
        statistic_set = make_set(
            schema,
            80,
            [
                ("a", (0, 3), "b", (1, 4)),
                ("b", (2, 5), "c", (0, 2)),
                ("b", (0, 3), "d", (1, 3)),
            ],
        )
        components, _ = build_components(statistic_set)
        component = components[0]
        sizes = sorted(len(stats) for stats in component.term_stats)
        # empty + 3 singles + 3 pairs + 1 triple (b ranges all intersect
        # pairwise and jointly: [2,3]).
        assert sizes == [0, 1, 1, 1, 2, 2, 2, 3]

    def test_term_cap_enforced(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 3), "b", (1, 4)), ("b", (2, 5), "c", (0, 2))],
        )
        with pytest.raises(StatisticError, match="exceeds"):
            build_components(statistic_set, max_terms=2)

    def test_stat_terms_index(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 3), "b", (1, 4)), ("b", (2, 5), "c", (0, 2))],
        )
        components, _ = build_components(statistic_set)
        component = components[0]
        for stat_id, term_rows in component.stat_terms.items():
            for row in term_rows.tolist():
                assert stat_id in component.term_stats[row]

    def test_delta_products(self, schema):
        statistic_set = make_set(
            schema,
            50,
            [("a", (0, 3), "b", (1, 4)), ("b", (2, 5), "c", (0, 2))],
        )
        components, _ = build_components(statistic_set)
        component = components[0]
        deltas = np.array([3.0, 5.0])
        products = component.delta_products(deltas)
        expected = {
            (): 1.0,
            (0,): 2.0,
            (1,): 4.0,
            (0, 1): 8.0,
        }
        for row, stats in enumerate(component.term_stats):
            assert products[row] == pytest.approx(expected[stats])
