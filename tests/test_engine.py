"""Tests for the SQL engine against exact and summary backends."""

import numpy as np
import pytest

from repro.baselines.exact import ExactBackend
from repro.core.summary import EntropySummary
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.query.backends import SummaryBackend
from repro.query.engine import SQLEngine


@pytest.fixture
def relation():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(3)
    weights = np.array([0.5, 0.3, 0.2])
    states = rng.choice(3, size=300, p=weights)
    hours = rng.integers(0, 4, 300)
    return Relation(schema, [states, hours])


@pytest.fixture
def exact_engine(relation):
    return SQLEngine(ExactBackend(relation), table_name="R")


class TestExactExecution:
    def test_scalar_count(self, exact_engine, relation):
        count = exact_engine.count("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        assert count == relation.marginal("state")[0]

    def test_full_count(self, exact_engine, relation):
        assert exact_engine.count("SELECT COUNT(*) FROM R") == relation.num_rows

    def test_group_by(self, exact_engine, relation):
        result = exact_engine.execute(
            "SELECT state, COUNT(*) FROM R GROUP BY state"
        )
        counts = {row.labels[0]: row.count for row in result.rows}
        marginal = relation.marginal("state")
        assert counts == {
            "CA": marginal[0], "NY": marginal[1], "WA": marginal[2],
        }

    def test_order_and_limit(self, exact_engine):
        result = exact_engine.execute(
            "SELECT state, COUNT(*) AS cnt FROM R GROUP BY state "
            "ORDER BY cnt DESC LIMIT 2"
        )
        assert len(result.rows) == 2
        assert result.rows[0].count >= result.rows[1].count

    def test_group_by_with_where(self, exact_engine, relation):
        result = exact_engine.execute(
            "SELECT hour, COUNT(*) FROM R WHERE state = 'NY' GROUP BY hour"
        )
        total = sum(row.count for row in result.rows)
        assert total == relation.marginal("state")[1]

    def test_wrong_table(self, exact_engine):
        with pytest.raises(QueryError, match="unknown table"):
            exact_engine.count("SELECT COUNT(*) FROM other")

    def test_unknown_group_attribute(self, exact_engine):
        with pytest.raises(Exception):
            exact_engine.execute("SELECT nope, COUNT(*) FROM R GROUP BY nope")

    def test_group_and_where_same_attribute(self, exact_engine, relation):
        # Filter-then-group: only the matching value appears as a group.
        result = exact_engine.execute(
            "SELECT state, COUNT(*) FROM R WHERE state = 'CA' GROUP BY state"
        )
        assert [row.labels[0] for row in result.rows] == ["CA"]
        assert result.rows[0].count == relation.marginal("state")[0]

    def test_group_and_where_in_filter(self, exact_engine, relation):
        result = exact_engine.execute(
            "SELECT state, COUNT(*) FROM R WHERE state IN ('CA', 'WA') "
            "GROUP BY state"
        )
        marginal = relation.marginal("state")
        assert {row.labels[0]: row.count for row in result.rows} == {
            "CA": marginal[0], "WA": marginal[2],
        }

    def test_count_on_grouped_query_rejected(self, exact_engine):
        with pytest.raises(QueryError, match="grouped"):
            exact_engine.count("SELECT state, COUNT(*) FROM R GROUP BY state")


class TestSummaryExecution:
    @pytest.fixture
    def summary_engine(self, relation):
        summary = EntropySummary.build(
            relation,
            pairs=[("state", "hour")],
            per_pair_budget=4,
            max_iterations=60,
        )
        return SQLEngine(SummaryBackend(summary), table_name="R")

    def test_estimates_track_exact(self, summary_engine, exact_engine):
        for sql in (
            "SELECT COUNT(*) FROM R WHERE state = 'CA'",
            "SELECT COUNT(*) FROM R WHERE hour = 2",
            "SELECT COUNT(*) FROM R WHERE state IN ('CA','NY') AND hour >= 1",
        ):
            estimate = summary_engine.count(sql)
            exact = exact_engine.count(sql)
            assert estimate == pytest.approx(exact, rel=0.25, abs=6)

    def test_group_by_covers_all_values(self, summary_engine):
        result = summary_engine.execute(
            "SELECT state, COUNT(*) FROM R GROUP BY state"
        )
        # Model-side group-by reports every domain value.
        assert {row.labels[0] for row in result.rows} == {"CA", "NY", "WA"}

    def test_same_query_same_answer(self, summary_engine):
        sql = "SELECT COUNT(*) FROM R WHERE state = 'WA' AND hour = 3"
        assert summary_engine.count(sql) == summary_engine.count(sql)

    def test_group_and_where_same_attribute(self, summary_engine, exact_engine):
        sql = (
            "SELECT state, COUNT(*) FROM R WHERE state IN ('CA', 'NY') "
            "GROUP BY state"
        )
        approx = summary_engine.execute(sql)
        exact = exact_engine.execute(sql)
        # Model-side group-by only reports the allowed values ...
        assert {row.labels[0] for row in approx.rows} == {"CA", "NY"}
        # ... and the estimates track the exact filtered counts.
        exact_counts = {row.labels[0]: row.count for row in exact.rows}
        for row in approx.rows:
            assert row.count == pytest.approx(
                exact_counts[row.labels[0]], rel=0.25, abs=6
            )

    def test_group_and_where_with_extra_predicate(
        self, summary_engine, exact_engine
    ):
        sql = (
            "SELECT state, COUNT(*) FROM R WHERE state = 'CA' AND hour >= 2 "
            "GROUP BY state"
        )
        approx = summary_engine.execute(sql)
        assert [row.labels[0] for row in approx.rows] == ["CA"]
        exact = exact_engine.execute(sql).rows[0].count
        assert approx.rows[0].count == pytest.approx(exact, rel=0.3, abs=8)


class TestQueryResult:
    def test_scalar_repr(self, exact_engine):
        result = exact_engine.execute("SELECT COUNT(*) FROM R")
        assert result.is_scalar

    def test_rows_iteration(self, exact_engine):
        result = exact_engine.execute("SELECT state, COUNT(*) FROM R GROUP BY state")
        for row in result.rows:
            labels_and_count = list(row)
            assert len(labels_and_count) == 2
