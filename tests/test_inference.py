"""Tests for query answering over fitted models (Sec 3.2 / 4.2)."""

import numpy as np
import pytest

from repro.core.inference import InferenceEngine, QueryEstimate, round_half_up
from repro.core.naive import NaivePolynomial
from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import solve_statistics
from repro.errors import QueryError
from repro.stats.predicates import Conjunction, RangePredicate


@pytest.fixture
def fitted(small_statistics):
    poly = CompressedPolynomial(small_statistics)
    params, _ = solve_statistics(poly, max_iterations=200)
    engine = InferenceEngine(poly, params, small_statistics.total)
    return poly, params, engine, small_statistics


class TestRounding:
    def test_round_half_up(self):
        assert round_half_up(0.5) == 1
        assert round_half_up(0.49) == 0
        assert round_half_up(1.5) == 2
        assert round_half_up(2.4) == 2


class TestQueryEstimate:
    def test_variance_is_binomial(self):
        estimate = QueryEstimate(50.0, 0.5, 100)
        assert estimate.variance == pytest.approx(25.0)
        assert estimate.std == pytest.approx(5.0)

    def test_ci_clipped(self):
        estimate = QueryEstimate(1.0, 0.01, 100)
        low, high = estimate.ci95
        assert low >= 0.0
        assert high <= 100.0

    def test_rounded(self):
        assert QueryEstimate(0.51, 0.001, 100).rounded == 1
        assert QueryEstimate(0.49, 0.001, 100).rounded == 0


class TestOptimizedQueryAnswering:
    """Sec 4.2: masking equals the extended-polynomial route, here
    checked against the naive polynomial's direct expectation."""

    def test_matches_naive_expectation(self, fitted, rng):
        poly, params, engine, statistic_set = fitted
        naive = NaivePolynomial(statistic_set)
        for _ in range(20):
            masks = {
                pos: rng.random(size) > 0.4
                for pos, size in enumerate(poly.sizes)
                if rng.random() > 0.3
            }
            masks = {
                pos: mask if mask.any() else np.ones_like(mask)
                for pos, mask in masks.items()
            }
            expected = naive.expected_count(params, statistic_set.total, masks)
            actual = engine.estimate_masks(masks).expectation
            assert actual == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_trivial_query_returns_n(self, fitted):
        poly, params, engine, statistic_set = fitted
        predicate = Conjunction(poly.schema, {})
        assert engine.estimate(predicate).expectation == pytest.approx(
            statistic_set.total
        )

    def test_one_dim_statistics_reproduced(self, fitted):
        poly, params, engine, statistic_set = fitted
        for pos in range(poly.schema.num_attributes):
            for index, target in enumerate(statistic_set.one_dim[pos]):
                predicate = Conjunction(
                    poly.schema, {pos: RangePredicate.point(index)}
                )
                estimate = engine.estimate(predicate).expectation
                assert estimate == pytest.approx(target, abs=0.01)

    def test_two_dim_statistics_reproduced(self, fitted):
        poly, params, engine, statistic_set = fitted
        for statistic in statistic_set.multi_dim:
            masks = statistic.predicate.attribute_masks()
            estimate = engine.estimate_masks(masks).expectation
            assert estimate == pytest.approx(statistic.value, abs=0.05)

    def test_estimates_additive_over_partitions(self, fitted):
        poly, params, engine, _ = fitted
        size = poly.sizes[0]
        total = 0.0
        for index in range(size):
            predicate = Conjunction(poly.schema, {0: RangePredicate.point(index)})
            total += engine.estimate(predicate).expectation
        trivial = engine.estimate(Conjunction(poly.schema, {})).expectation
        assert total == pytest.approx(trivial, rel=1e-9)

    def test_probability_bounds(self, fitted, rng):
        poly, params, engine, _ = fitted
        masks = {0: np.array([True, False, False, False])}
        estimate = engine.estimate_masks(masks)
        assert 0.0 <= estimate.probability <= 1.0


class TestGroupBy:
    def test_group_by_matches_point_queries(self, fitted):
        poly, params, engine, _ = fitted
        grouped = engine.group_by([1])
        for value, estimate in grouped.items():
            predicate = Conjunction(
                poly.schema, {1: RangePredicate.point(value[0])}
            )
            assert estimate.expectation == pytest.approx(
                engine.estimate(predicate).expectation, rel=1e-9
            )

    def test_group_by_two_attributes(self, fitted):
        poly, params, engine, statistic_set = fitted
        grouped = engine.group_by([0, 2])
        assert len(grouped) == poly.sizes[0] * poly.sizes[2]
        total = sum(e.expectation for e in grouped.values())
        assert total == pytest.approx(statistic_set.total, rel=1e-9)

    def test_group_by_with_predicate(self, fitted):
        poly, params, engine, _ = fitted
        predicate = Conjunction(poly.schema, {0: RangePredicate(0, 1)})
        grouped = engine.group_by([1], predicate)
        direct = {}
        for value in range(poly.sizes[1]):
            conj = Conjunction(
                poly.schema,
                {0: RangePredicate(0, 1), 1: RangePredicate.point(value)},
            )
            direct[(value,)] = engine.estimate(conj).expectation
        for key, estimate in grouped.items():
            assert estimate.expectation == pytest.approx(direct[key], rel=1e-9)

    def test_group_by_constrained_attr_filters_groups(self, fitted):
        # Filter-then-group: a predicate on the group attribute restricts
        # which values appear, and each group matches the point estimate.
        poly, params, engine, _ = fitted
        predicate = Conjunction(poly.schema, {0: RangePredicate(0, 1)})
        grouped = engine.group_by([0], predicate)
        assert set(grouped) == {(0,), (1,)}
        for (value,), estimate in grouped.items():
            point = engine.estimate(
                Conjunction(poly.schema, {0: RangePredicate.point(value)})
            )
            assert estimate.expectation == pytest.approx(point.expectation)

    def test_group_by_rejects_duplicates(self, fitted):
        _, _, engine, _ = fitted
        with pytest.raises(QueryError):
            engine.group_by([1, 1])

    def test_group_by_needs_attribute(self, fitted):
        _, _, engine, _ = fitted
        with pytest.raises(QueryError):
            engine.group_by([])


class TestQueryCache:
    def test_repeat_query_hits_cache(self, fitted):
        _, _, engine, _ = fitted
        masks = {0: np.array([True, False, True, False])}
        first = engine.estimate_masks(masks).expectation
        misses = engine.cache_misses
        second = engine.estimate_masks(masks).expectation
        assert second == first
        assert engine.cache_misses == misses
        assert engine.cache_hits >= 1

    def test_different_masks_are_distinct_entries(self, fitted):
        _, _, engine, _ = fitted
        a = engine.estimate_masks({0: np.array([True, False, False, False])})
        b = engine.estimate_masks({0: np.array([False, True, False, False])})
        assert a.expectation != b.expectation

    def test_cache_disabled(self, small_statistics):
        from repro.core.polynomial import CompressedPolynomial
        from repro.core.solver import solve_statistics

        poly = CompressedPolynomial(small_statistics)
        params, _ = solve_statistics(poly, max_iterations=30)
        engine = InferenceEngine(
            poly, params, small_statistics.total, cache_size=0
        )
        masks = {0: np.array([True, False, True, False])}
        engine.estimate_masks(masks)
        engine.estimate_masks(masks)
        assert engine.cache_hits == 0
        assert engine.cache_misses == 2


class TestPointEstimate:
    def test_by_indices(self, fitted):
        poly, params, engine, _ = fitted
        estimate = engine.point_estimate({"A": 0, "C": 1})
        predicate = Conjunction(
            poly.schema, {0: RangePredicate.point(0), 2: RangePredicate.point(1)}
        )
        assert estimate.expectation == pytest.approx(
            engine.estimate(predicate).expectation
        )

    def test_out_of_range_index(self, fitted):
        _, _, engine, _ = fitted
        with pytest.raises(QueryError):
            engine.point_estimate({"A": 99})
