"""Tests for ModelParameters."""

import numpy as np
import pytest

from repro.core.variables import ModelParameters
from repro.errors import SolverError


class TestModelParameters:
    def test_initial_is_all_ones(self):
        params = ModelParameters.initial([3, 4], 2)
        assert all((alpha == 1.0).all() for alpha in params.alphas)
        assert (params.deltas == 1.0).all()
        assert params.num_variables == 9

    def test_copy_is_independent(self):
        params = ModelParameters.initial([3], 1)
        clone = params.copy()
        clone.alphas[0][0] = 5.0
        clone.deltas[0] = 5.0
        assert params.alphas[0][0] == 1.0
        assert params.deltas[0] == 1.0

    def test_negative_values_rejected(self):
        with pytest.raises(SolverError):
            ModelParameters([np.array([-1.0])], np.array([]))
        with pytest.raises(SolverError):
            ModelParameters([np.array([1.0])], np.array([-0.5]))

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            ModelParameters([np.ones((2, 2))], np.ones(1))
        with pytest.raises(SolverError):
            ModelParameters([np.ones(2)], np.ones((1, 1)))

    def test_array_round_trip(self):
        params = ModelParameters(
            [np.array([1.0, 2.0]), np.array([3.0])], np.array([4.0, 5.0])
        )
        rebuilt = ModelParameters.from_arrays(params.to_arrays())
        assert len(rebuilt.alphas) == 2
        assert rebuilt.alphas[0].tolist() == [1.0, 2.0]
        assert rebuilt.deltas.tolist() == [4.0, 5.0]

    def test_from_arrays_missing_alpha(self):
        with pytest.raises(SolverError):
            ModelParameters.from_arrays(
                {"alpha_0": np.ones(2), "alpha_2": np.ones(2), "deltas": np.ones(1)}
            )
