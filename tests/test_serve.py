"""Tests for the serving layer: cache, admission, coalescer, server.

The unit pieces (TTL cache, admission controller, coalescer) are
exercised in isolation with fake clocks and spy executors; the server
tests run a real :class:`SummaryServer` on an ephemeral localhost port
and talk to it through the synchronous :class:`ServeClient` — the same
path production clients use.
"""

from __future__ import annotations

import asyncio
import json
import random
import shutil
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import Backend, Explorer, SummaryBuilder, SummaryStore
from repro.baselines.exact import ExactBackend
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError
from repro.serve import (
    AdmissionController,
    Coalescer,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerBusy,
    ServerSaturated,
    ServerThread,
    SummaryServer,
    TTLCache,
    run_load,
)
from repro.serve.client import backoff_delay
from repro.serve.loadgen import default_workload


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

def _wait_until(condition, timeout: float = 5.0, step: float = 0.005) -> bool:
    """Poll ``condition`` until true or ``timeout`` elapses.

    The de-flaking primitive for the timing tests below: asserting on a
    *condition with a generous deadline* instead of sleeping a fixed
    interval and hoping the scheduler cooperated.  Returns whether the
    condition held in time (callers assert on it for a clear failure).
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(step)
    return condition()


def _relation(rows: int = 300, seed: int = 3) -> Relation:
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(seed)
    return Relation(
        schema,
        [rng.choice(3, size=rows, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, rows)],
    )


@pytest.fixture(scope="module")
def relation():
    return _relation()


@pytest.fixture(scope="module")
def summary(relation):
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(50)
        .name("serve-test")
        .fit()
    )


class SpyBackend(Backend):
    """Exact answers, call counting, and an optional artificial delay."""

    is_exact = True

    def __init__(self, relation, delay: float = 0.0):
        self.inner = ExactBackend(relation)
        self.schema = relation.schema
        self.name = "spy"
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def _tick(self):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)

    def count(self, predicate):
        self._tick()
        return self.inner.count(predicate)

    def group_counts(self, attrs, predicate):
        self._tick()
        return self.inner.group_counts(attrs, predicate)


# ----------------------------------------------------------------------
# TTLCache
# ----------------------------------------------------------------------

class TestTTLCache:
    def test_put_get_and_counters(self):
        cache = TTLCache(maxsize=4, ttl=None)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = TTLCache(maxsize=2, ttl=None)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.evictions == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [100.0]
        cache = TTLCache(maxsize=8, ttl=5.0, clock=lambda: now[0])
        cache.put("k", "v")
        assert cache.get("k") == "v"
        now[0] += 4.99
        assert cache.get("k") == "v"
        now[0] += 0.02
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_disabled(self):
        cache = TTLCache(maxsize=0)
        cache.put("k", "v")
        assert cache.get("k") is None

    def test_stats_shape(self):
        stats = TTLCache(maxsize=3, ttl=9.0).stats()
        assert stats["maxsize"] == 3
        assert stats["ttl"] == 9.0
        assert set(stats) >= {"hits", "misses", "evictions", "expirations"}

    def test_stats_snapshot_consistent_under_concurrent_mutation(self):
        # Regression for a torn read: hit_rate and stats() used to read
        # hits/misses outside the lock, so a snapshot taken mid-lookup
        # could pair a new hits value with an old misses value (rates
        # above 1.0, hits+misses short of the lookup count).
        cache = TTLCache(maxsize=16, ttl=None)
        stop = threading.Event()
        lookups_done = []

        def mutate():
            count = 0
            while not stop.is_set():
                cache.put(count % 32, count)
                cache.get((count * 7) % 32)
                count += 1
            lookups_done.append(count)

        threads = [threading.Thread(target=mutate) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                stats = cache.stats()
                assert 0.0 <= stats["hit_rate"] <= 1.0
                assert 0.0 <= cache.hit_rate <= 1.0
                assert stats["size"] <= cache.maxsize
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        final = cache.stats()
        # Quiesced: the snapshot must account for every lookup exactly.
        assert final["hits"] + final["misses"] == sum(lookups_done)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------

class TestAdmission:
    def test_acquire_release_depth(self):
        admission = AdmissionController(max_queue=2, max_inflight_per_client=2)
        admission.acquire("a")
        admission.acquire("b")
        assert admission.depth == 2
        admission.release("a")
        assert admission.depth == 1
        admission.release("b")
        assert admission.depth == 0
        assert admission.peak_depth == 2

    def test_queue_rejection_carries_retry_after(self):
        admission = AdmissionController(
            max_queue=1, max_inflight_per_client=5, flush_window=0.01
        )
        admission.acquire("a")
        with pytest.raises(ServerSaturated) as caught:
            admission.acquire("b")
        assert caught.value.scope == "queue"
        assert caught.value.retry_after >= 0.01
        assert admission.rejected_queue == 1
        admission.release("a")
        admission.acquire("b")  # capacity is back

    def test_per_client_limit_is_fair(self):
        admission = AdmissionController(max_queue=10, max_inflight_per_client=1)
        admission.acquire("greedy")
        with pytest.raises(ServerSaturated) as caught:
            admission.acquire("greedy")
        assert caught.value.scope == "client"
        # Other clients keep being admitted.
        admission.acquire("polite")
        assert admission.rejected_client == 1

    def test_held_context_manager(self):
        admission = AdmissionController(max_queue=1, max_inflight_per_client=1)
        with admission.held("a"):
            assert admission.depth == 1
        assert admission.depth == 0

    def test_validation(self):
        with pytest.raises(ReproError, match="max_queue"):
            AdmissionController(max_queue=0)
        with pytest.raises(ReproError, match="max_inflight_per_client"):
            AdmissionController(max_inflight_per_client=0)


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------

class TestCoalescer:
    @staticmethod
    def _spy():
        batches = []

        async def run_batch(items):
            batches.append(list(items))
            return [item * 2 for item in items]

        return batches, run_batch

    def test_flushes_by_window(self):
        batches, run_batch = self._spy()

        async def scenario():
            coalescer = Coalescer(run_batch, window=0.02, max_batch=100)
            return await asyncio.gather(
                coalescer.submit("a", 1),
                coalescer.submit("b", 2),
                coalescer.submit("c", 3),
            )

        assert asyncio.run(scenario()) == [2, 4, 6]
        # One window, one flush, one batched execution of all three.
        assert len(batches) == 1
        assert sorted(batches[0]) == [1, 2, 3]

    def test_same_key_requests_share_one_execution(self):
        batches, run_batch = self._spy()

        async def scenario():
            coalescer = Coalescer(run_batch, window=0.02, max_batch=100)
            results = await asyncio.gather(
                *(coalescer.submit("hot", 21) for _ in range(5))
            )
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        assert results == [42] * 5
        assert len(batches) == 1
        assert batches[0] == [21]  # deduped: one item executed
        assert coalescer.coalesced == 4
        assert coalescer.submitted == 5

    def test_flushes_by_size(self):
        batches, run_batch = self._spy()

        async def scenario():
            coalescer = Coalescer(run_batch, window=5.0, max_batch=2)
            results = await asyncio.gather(
                coalescer.submit("a", 1),
                coalescer.submit("b", 2),
            )
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        # The window is 5 seconds — only the size trigger can have
        # flushed this fast.
        assert results == [2, 4]
        assert coalescer.flushes_by_size == 1
        assert coalescer.flushes_by_window == 0

    def test_per_item_exceptions_do_not_poison_the_flush(self):
        async def run_batch(items):
            return [
                ValueError("bad item") if item == "bad" else item
                for item in items
            ]

        async def scenario():
            coalescer = Coalescer(run_batch, window=0.01, max_batch=10)
            good = asyncio.create_task(coalescer.submit("g", "fine"))
            bad = asyncio.create_task(coalescer.submit("b", "bad"))
            results = await asyncio.gather(good, bad, return_exceptions=True)
            return results

        good_result, bad_result = asyncio.run(scenario())
        assert good_result == "fine"
        assert isinstance(bad_result, ValueError)

    def test_run_batch_failure_fails_all_waiters(self):
        async def run_batch(items):
            raise RuntimeError("executor died")

        async def scenario():
            coalescer = Coalescer(run_batch, window=0.01, max_batch=10)
            return await asyncio.gather(
                coalescer.submit("a", 1),
                coalescer.submit("b", 2),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_validation(self):
        async def run_batch(items):  # pragma: no cover - never runs
            return items

        with pytest.raises(ReproError, match="window"):
            Coalescer(run_batch, window=-1)
        with pytest.raises(ReproError, match="max_batch"):
            Coalescer(run_batch, max_batch=0)


# ----------------------------------------------------------------------
# Server round-trips over a real socket
# ----------------------------------------------------------------------

class TestServerRoundTrip:
    @pytest.fixture(scope="class")
    def running(self, summary):
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=1.0, cache_ttl=None)
        )
        with ServerThread(server) as running:
            yield running

    def test_ping(self, running):
        with ServeClient(port=running.port) as client:
            assert client.ping() == {"version": 0}

    def test_scalar_query_with_error_bounds(self, running, summary):
        expected = Explorer.attach(summary).sql(
            "SELECT COUNT(*) FROM R WHERE state = 'CA'"
        )
        with ServeClient(port=running.port) as client:
            payload = client.query("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        assert payload["kind"] == "scalar"
        assert payload["value"] == pytest.approx(expected.scalar)
        assert payload["std"] == pytest.approx(expected.std)
        assert payload["ci95"] == pytest.approx(list(expected.ci95))

    def test_grouped_query(self, running, summary):
        expected = Explorer.attach(summary).sql(
            "SELECT COUNT(*) FROM R GROUP BY state"
        )
        with ServeClient(port=running.port) as client:
            payload = client.query("SELECT COUNT(*) FROM R GROUP BY state")
        assert payload["kind"] == "rows"
        assert payload["group_by"] == ["state"]
        assert payload["rows"] == [
            [row.labels[0], pytest.approx(row.count)] for row in expected.rows
        ]

    def test_syntactic_variants_share_the_cache(self, running):
        with ServeClient(port=running.port) as client:
            first = client.call(
                "query", sql="SELECT COUNT(*) FROM R WHERE hour BETWEEN 1 AND 2"
            )
            second = client.call(
                "query",
                sql="SELECT COUNT(*) FROM R WHERE hour >= 1 AND hour <= 2",
            )
        assert second["result"]["value"] == first["result"]["value"]
        # The canonical key collapses the two spellings server-side.
        assert second["cached"] is True

    def test_named_sessions(self, running):
        with ServeClient(port=running.port, session="analyst-7") as client:
            client.query("SELECT COUNT(*) FROM R", session="analyst-7")
            stats = client.stats()
        assert "analyst-7" in stats["sessions"]
        assert "default" in stats["sessions"]

    def test_bad_sql_is_a_400_not_a_dropped_connection(self, running):
        with ServeClient(port=running.port) as client:
            with pytest.raises(ServeError) as caught:
                client.query("SELECT COUNT(*) FROM nowhere")
            assert caught.value.status == 400
            # The connection survives the error.
            assert client.ping() == {"version": 0}

    def test_unknown_op_rejected(self, running):
        with ServeClient(port=running.port) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.call("frobnicate")

    def test_invalid_json_line(self, running):
        with socket.create_connection(("127.0.0.1", running.port), 5) as raw:
            raw.sendall(b"this is not json\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is False
        assert response["status"] == 400
        assert response["id"] is None

    def test_reload_without_store_is_a_clean_error(self, running):
        with ServeClient(port=running.port) as client:
            with pytest.raises(ServeError, match="store"):
                client.reload()

    def test_stats_shape(self, running):
        with ServeClient(port=running.port) as client:
            stats = client.stats()
        assert stats["version"] == 0
        assert set(stats) >= {
            "cache", "admission", "coalescer", "requests", "errors", "reloads",
        }
        assert stats["coalescer"]["window_ms"] == 1.0


class TestCoalescedServing:
    def test_same_key_concurrent_clients_cost_one_execution(self, relation):
        """The tentpole behavior: N clients asking one question inside
        one window -> one backend execution (spy call count)."""
        backend = SpyBackend(relation)
        server = SummaryServer(
            backend,
            # Wide window so all threads land in one batch; cache off so
            # coalescing (not the cache) must do the dedup.
            config=ServeConfig(window_ms=250.0, cache_size=0),
        )
        clients = 6
        values = []
        errors = []
        barrier = threading.Barrier(clients)

        def ask():
            try:
                with ServeClient(port=server.port) as client:
                    barrier.wait()
                    values.append(
                        client.count("SELECT COUNT(*) FROM R WHERE state = 'CA'")
                    )
            except BaseException as error:
                errors.append(error)

        with ServerThread(server):
            threads = [threading.Thread(target=ask) for _ in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]
        assert len(set(values)) == 1
        assert backend.calls == 1
        assert server.coalescer.coalesced == clients - 1

    def test_distinct_queries_one_vectorized_flush(self, relation):
        backend = SpyBackend(relation)
        server = SummaryServer(
            backend, config=ServeConfig(window_ms=250.0, cache_size=0)
        )
        queries = [
            "SELECT COUNT(*) FROM R WHERE hour = 0",
            "SELECT COUNT(*) FROM R WHERE hour = 1",
            "SELECT COUNT(*) FROM R WHERE hour = 2",
        ]
        barrier = threading.Barrier(len(queries))
        errors = []

        def ask(sql):
            try:
                with ServeClient(port=server.port) as client:
                    barrier.wait()
                    client.query(sql)
            except BaseException as error:
                errors.append(error)

        with ServerThread(server):
            threads = [
                threading.Thread(target=ask, args=(sql,)) for sql in queries
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]
        # One flush; the spy backend's default count_many loops, so
        # calls == distinct queries, but the flush count proves they
        # travelled as one batch.
        assert server.coalescer.flushes == 1
        assert server.coalescer.largest_batch == len(queries)


class TestAdmissionOverTheWire:
    def test_saturated_queue_rejects_with_retry_after(self, relation):
        backend = SpyBackend(relation, delay=0.3)
        server = SummaryServer(
            backend,
            config=ServeConfig(
                window_ms=0.0,
                coalesce=False,
                cache_size=0,
                max_queue=1,
                max_inflight_per_client=5,
            ),
        )
        with ServerThread(server):
            with socket.create_connection(
                ("127.0.0.1", server.port), 5
            ) as occupier:
                occupier.sendall(
                    b'{"id": 1, "op": "query", '
                    b'"sql": "SELECT COUNT(*) FROM R"}\n'
                )
                deadline = time.monotonic() + 2.0
                while (
                    server.admission.depth == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                assert server.admission.depth == 1
                with ServeClient(port=server.port) as other:
                    with pytest.raises(ServerBusy) as caught:
                        other.query("SELECT COUNT(*) FROM R WHERE hour = 1")
                assert caught.value.retry_after > 0
                assert caught.value.payload["scope"] == "queue"
                # The occupier still gets its (slow) answer.
                response = json.loads(occupier.makefile("rb").readline())
                assert response["ok"] is True

    def test_per_client_pipelining_limit(self, relation):
        backend = SpyBackend(relation, delay=0.3)
        server = SummaryServer(
            backend,
            config=ServeConfig(
                window_ms=0.0,
                coalesce=False,
                cache_size=0,
                max_queue=10,
                max_inflight_per_client=1,
            ),
        )
        with ServerThread(server):
            with socket.create_connection(
                ("127.0.0.1", server.port), 5
            ) as raw:
                raw.sendall(
                    b'{"id": 1, "op": "query", '
                    b'"sql": "SELECT COUNT(*) FROM R"}\n'
                    b'{"id": 2, "op": "query", '
                    b'"sql": "SELECT COUNT(*) FROM R WHERE hour = 1"}\n'
                )
                reader = raw.makefile("rb")
                responses = [
                    json.loads(reader.readline()) for _ in range(2)
                ]
        rejected = [r for r in responses if not r["ok"]]
        accepted = [r for r in responses if r["ok"]]
        assert len(rejected) == 1 and len(accepted) == 1
        assert rejected[0]["status"] == 503
        assert rejected[0]["scope"] == "client"
        assert rejected[0]["retry_after"] > 0

    def test_client_retries_on_retry_after_and_succeeds(self, relation):
        backend = SpyBackend(relation, delay=0.1)
        server = SummaryServer(
            backend,
            config=ServeConfig(
                window_ms=0.0, coalesce=False, cache_size=0, max_queue=1
            ),
        )
        errors = []

        def hammer(index):
            try:
                with ServeClient(port=server.port) as client:
                    client.query(
                        f"SELECT COUNT(*) FROM R WHERE hour = {index % 4}",
                        retries=50,
                    )
            except BaseException as error:
                errors.append(error)

        with ServerThread(server):
            threads = [
                threading.Thread(target=hammer, args=(index,))
                for index in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]
        # With max_queue=1 and 4 concurrent clients, someone had to be
        # turned away at least once — and everyone still finished.
        assert server.admission.rejected_queue > 0


class TestClientBackoff:
    """The retry loop's two fixes: jitter (no lockstep stampedes) and a
    total deadline (no unbounded retry hostage-taking)."""

    @staticmethod
    def _retry_delays(monkeypatch, seed, rejections=6, **query_kwargs):
        """Drive one client's retry loop against a stubbed server that
        rejects ``rejections`` times, recording every backoff sleep."""
        client = ServeClient(port=1, backoff_seed=seed)
        calls = [0]

        def fake_call(op, **fields):
            calls[0] += 1
            if calls[0] <= rejections:
                raise ServerBusy(
                    "stub saturated", retry_after=0.05, payload={}
                )
            return {"result": {"kind": "scalar", "value": 1.0}}

        monkeypatch.setattr(client, "call", fake_call)
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: sleeps.append(s)
        )
        query_kwargs.setdefault("retries", rejections)
        client.query("SELECT COUNT(*) FROM R", **query_kwargs)
        return sleeps

    def test_jitter_bounds_around_the_hint(self):
        rng = random.Random(0)
        for attempt in range(6):
            delay = backoff_delay(attempt, 0.1, rng)
            assert 0.05 <= delay <= 0.15  # hint +/- 50%

    def test_exponential_floor_with_tiny_hint(self):
        # A hint that undershoots the true service time must not let
        # the client spin: the floor grows 1.6x per attempt.
        rng = random.Random(0)
        for attempt in range(12):
            assert backoff_delay(attempt, 0.0, rng) >= 0.5 * 0.001 * (
                1.6 ** attempt
            )

    def test_lockstep_reproduced_and_broken_by_jitter(self, monkeypatch):
        # The lockstep case: two clients with the SAME jitter stream
        # sleep byte-identical schedules — rejected together, they come
        # back together, forever (the thundering herd).  Distinct
        # streams (distinct seeds, the default from system entropy)
        # spread the herd.
        same_a = self._retry_delays(monkeypatch, seed=7)
        same_b = self._retry_delays(monkeypatch, seed=7)
        other = self._retry_delays(monkeypatch, seed=8)
        assert same_a == same_b  # reproducible, hence: lockstep
        assert same_a != other  # jitter desynchronizes real clients
        assert len(same_a) == 6
        # Every sleep honors the Retry-After hint's jitter band.
        assert all(0.025 <= delay for delay in same_a)

    def test_deadline_bounds_total_retry_time(self, monkeypatch):
        # A saturated server advertising a huge Retry-After cannot hold
        # the client hostage for retries x hint: the deadline raises
        # the last ServerBusy instead of sleeping past it.
        client = ServeClient(port=1, backoff_seed=3)

        def always_busy(op, **fields):
            raise ServerBusy("stub saturated", retry_after=5.0, payload={})

        monkeypatch.setattr(client, "call", always_busy)
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: sleeps.append(s)
        )
        began = time.monotonic()
        with pytest.raises(ServerBusy):
            client.query("SELECT COUNT(*) FROM R", retries=50, deadline_s=0.2)
        assert time.monotonic() - began < 2.0
        assert sum(sleeps) <= 0.2  # never slept past the budget

    def test_retries_zero_raises_the_first_busy(self, monkeypatch):
        client = ServeClient(port=1)

        def busy_once(op, **fields):
            raise ServerBusy("stub saturated", retry_after=0.01, payload={})

        monkeypatch.setattr(client, "call", busy_once)
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: sleeps.append(s)
        )
        with pytest.raises(ServerBusy):
            client.query("SELECT COUNT(*) FROM R")
        assert sleeps == []  # no retry budget, no sleeping


class TestTTLOverTheWire:
    def test_result_expires_after_ttl(self, summary):
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=0.5, cache_ttl=0.08)
        )
        sql = "SELECT COUNT(*) FROM R WHERE state = 'NY'"
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                first = client.call("query", sql=sql)
                second = client.call("query", sql=sql)
                # Poll until the entry expires server-side instead of
                # sleeping a fixed interval: on a loaded machine a
                # fixed sleep races the TTL clock and flakes.  Expiry
                # is keyed to the *put* time, so repolling cannot keep
                # the entry alive — the first miss is the expiry.
                expired = []

                def saw_expiry():
                    response = client.call("query", sql=sql)
                    if not response["cached"]:
                        expired.append(response)
                    return bool(expired)

                assert _wait_until(saw_expiry, timeout=5.0, step=0.02)
        assert first["cached"] is False
        assert second["cached"] is True
        assert server.cache.expirations >= 1  # TTL expired server-side


# ----------------------------------------------------------------------
# Hot reload
# ----------------------------------------------------------------------

class TestHotReload:
    @pytest.fixture()
    def versioned_store(self, tmp_path):
        store = SummaryStore(tmp_path / "models")

        def build(rows, seed):
            return (
                SummaryBuilder(_relation(rows=rows, seed=seed))
                .pairs(("state", "hour"))
                .per_pair_budget(4)
                .iterations(40)
                .name("demo")
                .fit()
            )

        store.save(build(300, 3), "demo")  # v1: 300 rows
        store.save(build(500, 4), "demo")  # v2: 500 rows
        return store

    def test_reload_switches_versions(self, versioned_store):
        server = SummaryServer(
            store=versioned_store,
            name="demo",
            version=1,
            config=ServeConfig(window_ms=0.5),
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                assert client.ping() == {"version": 1}
                before = client.count("SELECT COUNT(*) FROM R")
                assert client.reload() == 2
                assert client.ping() == {"version": 2}
                after = client.count("SELECT COUNT(*) FROM R")
        assert before == pytest.approx(300, abs=1)
        assert after == pytest.approx(500, abs=1)
        assert server.reloads == 1

    def test_reload_can_pin_an_older_version(self, versioned_store):
        server = SummaryServer(
            store=versioned_store, name="demo", config=ServeConfig()
        )
        assert server.version == 2  # latest by default
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                assert client.reload(version=1) == 1
                assert client.count("SELECT COUNT(*) FROM R") == pytest.approx(
                    300, abs=1
                )

    def test_reload_does_not_drop_in_flight_requests(self, versioned_store):
        server = SummaryServer(
            store=versioned_store,
            name="demo",
            version=1,
            config=ServeConfig(window_ms=1.0, cache_size=0),
        )
        stop = threading.Event()
        errors = []
        answered = [0]
        answered_lock = threading.Lock()

        def answered_count():
            with answered_lock:
                return answered[0]

        def chatter(index):
            try:
                with ServeClient(port=server.port) as client:
                    step = 0
                    while not stop.is_set():
                        value = client.count(
                            "SELECT COUNT(*) FROM R WHERE "
                            f"hour = {(index + step) % 4}"
                        )
                        assert value >= 0
                        with answered_lock:
                            answered[0] += 1
                        step += 1
            except BaseException as error:
                errors.append(error)

        with ServerThread(server):
            threads = [
                threading.Thread(target=chatter, args=(index,))
                for index in range(4)
            ]
            for thread in threads:
                thread.start()
            # Condition, not a fixed sleep: reload only once traffic is
            # demonstrably in flight, then require fresh answers *after*
            # the reloads before stopping — the assertions this test
            # exists for, stated as observable counts.
            assert _wait_until(lambda: answered_count() >= 8)
            with ServeClient(port=server.port) as admin:
                admin.reload()          # v1 -> v2 under live traffic
                admin.reload(version=1)  # and back
            after_reloads = answered_count()
            assert _wait_until(lambda: answered_count() >= after_reloads + 8)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors, errors[0]
        assert answered_count() > 0
        assert server.reloads == 2


# ----------------------------------------------------------------------
# Watcher error paths: the poll loop must outlive transient trouble
# ----------------------------------------------------------------------

class TestWatcherErrorPaths:
    @staticmethod
    def _build(rows, seed):
        return (
            SummaryBuilder(_relation(rows=rows, seed=seed))
            .pairs(("state", "hour"))
            .per_pair_budget(4)
            .iterations(40)
            .name("demo")
            .fit()
        )

    def _watched_server(self, store):
        return SummaryServer(
            store=store,
            name="demo",
            config=ServeConfig(window_ms=0.5, watch_interval=0.05),
        )

    def test_unreadable_manifest_mid_poll_then_recovery(self, tmp_path):
        store = SummaryStore(tmp_path / "models")
        store.save(self._build(300, 3), "demo")  # v1
        manifest = Path(tmp_path / "models" / "manifest.json")
        server = self._watched_server(store)
        with ServerThread(server):
            assert _wait_until(lambda: server.watcher.checks >= 1)
            original = manifest.read_text()
            manifest.write_text("{this is not json")  # corrupt mid-poll
            assert _wait_until(lambda: server.watcher.errors >= 1)
            # The watcher swallowed the error; the server still serves.
            with ServeClient(port=server.port) as client:
                assert client.ping() == {"version": 1}
            manifest.write_text(original)  # filesystem heals
            store.save(self._build(500, 4), "demo")  # v2
            assert _wait_until(lambda: server.version == 2)
            # The counter increments just *after* the version swap, so
            # wait for it instead of reading it in the same instant.
            assert _wait_until(lambda: server.watcher.reloads >= 1)

    def test_store_dir_deleted_and_recreated(self, tmp_path):
        root = tmp_path / "models"
        store = SummaryStore(root)
        store.save(self._build(300, 3), "demo")  # v1
        server = self._watched_server(store)
        with ServerThread(server):
            shutil.rmtree(root)  # the whole store vanishes mid-flight
            assert _wait_until(lambda: server.watcher.errors >= 1)
            with ServeClient(port=server.port) as client:
                assert client.ping() == {"version": 1}  # still serving
            # The store comes back with fresh history; the watcher
            # resumes as soon as a version beyond its high-water (1)
            # appears.
            revived = SummaryStore(root)
            revived.save(self._build(300, 3), "demo")  # v1 again
            revived.save(self._build(500, 4), "demo")  # v2
            assert _wait_until(lambda: server.version == 2)

    def test_rollback_below_high_water_stays_sticky(self, tmp_path):
        store = SummaryStore(tmp_path / "models")
        store.save(self._build(300, 3), "demo")  # v1
        store.save(self._build(500, 4), "demo")  # v2
        server = self._watched_server(store)  # starts at latest: v2
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                assert client.reload(version=1) == 1  # operator rollback
                # The watcher keeps polling but must NOT flap the server
                # back to v2: the rollback stays sticky until something
                # genuinely newer is published.
                checks_now = server.watcher.checks
                assert _wait_until(
                    lambda: server.watcher.checks >= checks_now + 3
                )
                assert server.version == 1
                assert client.ping() == {"version": 1}
                store.save(self._build(700, 5), "demo")  # v3: newer
                assert _wait_until(lambda: server.version == 3)
                assert client.ping() == {"version": 3}


# ----------------------------------------------------------------------
# ServeConfig validation and the load generator
# ----------------------------------------------------------------------

class TestServeConfig:
    @pytest.mark.parametrize(
        "overrides, flag",
        [
            ({"window_ms": -1.0}, "--window-ms"),
            ({"max_batch": 0}, "--max-batch"),
            ({"max_queue": 0}, "--max-queue"),
            ({"max_inflight_per_client": 0}, "--max-inflight"),
            ({"cache_size": -1}, "--cache-size"),
            ({"cache_ttl": 0.0}, "--cache-ttl"),
        ],
    )
    def test_validation_names_the_flag(self, overrides, flag):
        from dataclasses import replace

        with pytest.raises(ReproError) as caught:
            replace(ServeConfig(), **overrides).validated()
        assert flag in str(caught.value)

    def test_server_needs_exactly_one_source(self, summary, tmp_path):
        with pytest.raises(ReproError, match="exactly one"):
            SummaryServer()
        with pytest.raises(ReproError, match="--name"):
            SummaryServer(store=tmp_path / "models")


class TestLoadGenerator:
    def test_default_workload_is_parseable(self, summary):
        explorer = Explorer.attach(summary)
        workload = default_workload(summary.schema)
        assert len(workload) >= 5
        for sql in workload:
            explorer.plan(sql)  # raises on anything malformed

    def test_run_load_reports(self, summary):
        server = SummaryServer(summary, config=ServeConfig(window_ms=1.0))
        with ServerThread(server):
            report = run_load(
                server.host,
                server.port,
                default_workload(summary.schema),
                clients=4,
                requests_per_client=20,
            )
        assert report.requests == 80
        assert report.errors == 0
        assert report.qps > 0
        assert report.p95_ms >= report.p50_ms
        assert report.cache_hit_rate > 0  # repeated workload must hit
        metrics = report.to_metrics()
        assert set(metrics) >= {"qps", "p50_ms", "p95_ms", "cache_hit_rate"}
