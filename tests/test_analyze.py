"""Tests for the repro-analyze framework, rules, and lock-order watchdog.

Each rule gets a must-flag / must-pass fixture pair run through
``analyze_source`` (the framework's single-rule hook), plus tests for
the suppression comments, the JSON reporter schema, the CLI exit
codes, and — the gate this suite exists to keep honest — a check that
``src/`` itself analyzes clean.
"""

from __future__ import annotations

import json
import sys
import textwrap
import threading
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyze import analyze_paths, default_rules
from tools.analyze.cli import main as analyze_main
from tools.analyze.core import Module, analyze_source
from tools.analyze.lockorder import (
    LockOrderViolation,
    LockOrderWatchdog,
    TrackedLock,
)

SERVE = "src/repro/serve/handlers.py"
INGEST = "src/repro/ingest/pipeline.py"
CORE = "src/repro/core/solver.py"


def flags(source: str, rule: str, relpath: str = CORE):
    return analyze_source(textwrap.dedent(source), relpath, rule)


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------

class TestFramework:
    def test_six_rules_registered(self):
        rules = default_rules()
        assert set(rules) >= {
            "async-blocking",
            "lock-discipline",
            "deprecated-api",
            "executor-pickle-safety",
            "error-hierarchy",
            "bare-thread-start",
            "metrics-discipline",
        }
        assert len(rules) >= 7
        for rule in rules.values():
            assert rule.summary, f"{rule.name} has no summary"

    def test_scope_matching(self):
        rules = default_rules()
        assert rules["async-blocking"].applies_to("src/repro/serve/server.py")
        assert not rules["async-blocking"].applies_to("src/repro/core/solver.py")
        assert rules["deprecated-api"].applies_to("src/repro/ingest/pipeline.py")
        # The facade and planner are the blessed construction sites.
        assert not rules["deprecated-api"].applies_to("src/repro/api/explorer.py")
        assert not rules["deprecated-api"].applies_to("src/repro/plan/router.py")

    def test_unknown_rule_name_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            analyze_paths([tmp_path], root=tmp_path, select=["no-such-rule"])

    def test_qualname_resolution(self):
        import ast

        node = ast.parse("self._store.load(1)").body[0].value
        assert Module.qualname(node.func) == "self._store.load"
        node = ast.parse("open(p).read()").body[0].value
        assert Module.qualname(node.func) == "().read"


class TestSuppression:
    SOURCE = """\
        import time

        async def handler():
            time.sleep(1)  # repro: ignore[async-blocking]
    """

    def test_targeted_ignore_suppresses(self):
        assert flags(self.SOURCE, "async-blocking", SERVE) == []

    def test_bare_ignore_suppresses_everything(self):
        source = self.SOURCE.replace("ignore[async-blocking]", "ignore")
        assert flags(source, "async-blocking", SERVE) == []

    def test_ignore_for_other_rule_does_not_suppress(self):
        source = self.SOURCE.replace("[async-blocking]", "[error-hierarchy]")
        found = flags(source, "async-blocking", SERVE)
        assert len(found) == 1

    def test_suppressed_counted_in_report(self, tmp_path):
        path = tmp_path / "src" / "repro" / "serve" / "h.py"
        path.parent.mkdir(parents=True)
        path.write_text(textwrap.dedent(self.SOURCE))
        report = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert report.ok
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# Rules: must-flag / must-pass pairs
# ----------------------------------------------------------------------

class TestAsyncBlocking:
    def test_flags_sleep_in_coroutine(self):
        found = flags(
            """\
            import time

            async def handler(self):
                time.sleep(0.1)
            """,
            "async-blocking",
            SERVE,
        )
        assert len(found) == 1
        assert "time.sleep" in found[0].message

    def test_flags_store_load_in_coroutine(self):
        found = flags(
            """\
            async def handler(self):
                return self._store.load(version)
            """,
            "async-blocking",
            SERVE,
        )
        assert len(found) == 1
        assert "store" in found[0].message

    def test_flags_pathlib_io_in_coroutine(self):
        found = flags(
            """\
            async def handler(path):
                return path.read_text()
            """,
            "async-blocking",
            SERVE,
        )
        assert len(found) == 1

    def test_passes_run_in_executor_wrapping(self):
        found = flags(
            """\
            async def handler(self, loop, path):
                await asyncio.sleep(0.1)
                return await loop.run_in_executor(
                    None, lambda: path.read_text()
                )
            """,
            "async-blocking",
            SERVE,
        )
        assert found == []

    def test_flags_socket_sendall_in_coroutine(self):
        found = flags(
            """\
            async def push(self, frame):
                self._sock.sendall(frame)
            """,
            "async-blocking",
            SERVE,
        )
        assert len(found) == 1
        assert "blocking socket call" in found[0].message

    def test_flags_socket_recv_in_coroutine(self):
        # `recv` is unambiguous socket API: flagged on any receiver.
        found = flags(
            """\
            async def pull(peer):
                return peer.recv(4096)
            """,
            "async-blocking",
            SERVE,
        )
        assert len(found) == 1

    def test_flags_generic_socket_method_on_named_receiver(self):
        found = flags(
            """\
            async def dial(self, address):
                self._conn.connect(address)
            """,
            "async-blocking",
            SERVE,
        )
        assert len(found) == 1

    def test_passes_generic_send_on_non_socket_receiver(self):
        # Generators and channels have `send` too; only receivers that
        # name a socket/connection flag.
        found = flags(
            """\
            async def resume(self, generator, value):
                generator.send(value)
            """,
            "async-blocking",
            SERVE,
        )
        assert found == []

    def test_passes_asyncio_stream_api(self):
        found = flags(
            """\
            async def relay(self, reader, writer):
                header = await reader.readexactly(16)
                writer.write(header)
                await writer.drain()
            """,
            "async-blocking",
            SERVE,
        )
        assert found == []

    def test_passes_blocking_in_sync_function(self):
        found = flags(
            """\
            import time

            def warm(self):
                time.sleep(0.1)
            """,
            "async-blocking",
            SERVE,
        )
        assert found == []

    def test_passes_nested_def_inside_coroutine(self):
        # Nested defs run later, typically on executor threads.
        found = flags(
            """\
            async def handler(self, loop, path):
                def work():
                    return path.read_text()

                return await loop.run_in_executor(None, work)
            """,
            "async-blocking",
            SERVE,
        )
        assert found == []


class TestLockDiscipline:
    def test_flags_registry_field_outside_lock(self):
        found = flags(
            """\
            class TTLCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def peek(self, key):
                    return self._data.get(key)
            """,
            "lock-discipline",
            "src/repro/serve/cache.py",
        )
        assert len(found) == 1
        assert "self._data" in found[0].message

    def test_passes_registry_field_under_lock(self):
        found = flags(
            """\
            class TTLCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def peek(self, key):
                    with self._lock:
                        return self._data.get(key)
            """,
            "lock-discipline",
            "src/repro/serve/cache.py",
        )
        assert found == []

    def test_construction_exempt(self):
        found = flags(
            """\
            class TTLCache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
                    self.hits = 0
            """,
            "lock-discipline",
            "src/repro/serve/cache.py",
        )
        assert found == []

    def test_guarded_by_annotation_creates_guard(self):
        source = """\
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    self._count += 1
            """
        found = flags(source, "lock-discipline", CORE)
        assert len(found) == 1
        assert "self._count" in found[0].message

    def test_holds_annotation_exempts_method(self):
        source = """\
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):  # repro: holds[_lock]
                    self._count += 1
            """
        assert flags(source, "lock-discipline", CORE) == []

    def test_holds_for_wrong_lock_does_not_exempt(self):
        source = """\
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):  # repro: holds[_other]
                    self._count += 1
            """
        assert len(flags(source, "lock-discipline", CORE)) == 1


class TestDeprecatedApi:
    def test_flags_entropy_summary_build(self):
        found = flags(
            """\
            def make(relation, stats):
                return EntropySummary.build(relation, stats)
            """,
            "deprecated-api",
            INGEST,
        )
        assert len(found) == 1
        assert "SummaryBuilder" in found[0].message

    def test_flags_direct_engine_construction(self):
        found = flags(
            """\
            def attach(summary):
                return SQLEngine(summary)
            """,
            "deprecated-api",
            INGEST,
        )
        assert len(found) == 1

    def test_passes_in_defining_module(self):
        found = flags(
            """\
            class SQLEngine:
                pass

            def default():
                return SQLEngine()
            """,
            "deprecated-api",
            CORE,
        )
        assert found == []

    def test_passes_in_api_layer(self):
        found = flags(
            """\
            def attach(summary):
                return SQLEngine(summary)
            """,
            "deprecated-api",
            "src/repro/api/explorer.py",
        )
        assert found == []


class TestExecutorPickleSafety:
    def test_flags_lambda_submission(self):
        found = flags(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def fit(shards):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda s: s.fit()) for s in shards]
            """,
            "executor-pickle-safety",
        )
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_flags_nested_function_submission(self):
        found = flags(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def fit(shards, options):
                def work(shard):
                    return shard.fit(options)

                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, shards))
            """,
            "executor-pickle-safety",
        )
        assert len(found) == 1
        assert "work" in found[0].message

    def test_flags_bound_method_submission(self):
        found = flags(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def fit(self, shards):
                pool = ProcessPoolExecutor()
                return list(pool.map(self.fit_one, shards))
            """,
            "executor-pickle-safety",
        )
        assert len(found) == 1
        assert "bound method" in found[0].message

    def test_passes_module_level_worker_and_payloads(self):
        found = flags(
            """\
            from concurrent.futures import ProcessPoolExecutor

            def _fit_shard(payload):
                return payload

            def fit(payloads):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(_fit_shard, payloads))
            """,
            "executor-pickle-safety",
        )
        assert found == []

    def test_flags_nested_function_process_target(self):
        found = flags(
            """\
            import multiprocessing

            def start_worker(spec):
                def run():
                    return spec.serve()

                ctx = multiprocessing.get_context("spawn")
                process = ctx.Process(target=run, args=(spec,))
                process.start()
                return process
            """,
            "executor-pickle-safety",
            SERVE,
        )
        assert len(found) == 1
        assert "run" in found[0].message and "Process" in found[0].message

    def test_flags_bound_method_process_target(self):
        found = flags(
            """\
            import multiprocessing

            class Pool:
                def spawn(self):
                    process = multiprocessing.Process(target=self.serve)
                    process.start()
                    return process
            """,
            "executor-pickle-safety",
            SERVE,
        )
        assert len(found) == 1
        assert "bound method" in found[0].message

    def test_flags_lambda_in_process_args(self):
        found = flags(
            """\
            import multiprocessing

            def _worker_main(callback):
                callback()

            def start_worker():
                process = multiprocessing.Process(
                    target=_worker_main, args=(lambda: None,)
                )
                process.start()
            """,
            "executor-pickle-safety",
            SERVE,
        )
        assert len(found) == 1
        assert "args" in found[0].message

    def test_passes_module_level_process_target(self):
        found = flags(
            """\
            import multiprocessing

            def _worker_main(spec, queue):
                queue.put(spec)

            def start_worker(spec, queue):
                ctx = multiprocessing.get_context("spawn")
                process = ctx.Process(
                    target=_worker_main, args=(spec, queue), daemon=True
                )
                process.start()
                return process
            """,
            "executor-pickle-safety",
            SERVE,
        )
        assert found == []

    def test_targetless_process_call_unaffected(self):
        # psutil.Process(pid)-style constructors take no target=.
        found = flags(
            """\
            import psutil

            def memory(pid):
                return psutil.Process(pid).memory_info().rss
            """,
            "executor-pickle-safety",
            SERVE,
        )
        assert found == []

    def test_thread_pools_unaffected(self):
        # ThreadPoolExecutor shares memory; closures are fine there.
        found = flags(
            """\
            from concurrent.futures import ThreadPoolExecutor

            def fit(shards):
                with ThreadPoolExecutor() as pool:
                    return [pool.submit(lambda s=s: s.fit()) for s in shards]
            """,
            "executor-pickle-safety",
        )
        assert found == []


class TestErrorHierarchy:
    def test_flags_disallowed_builtin_raise(self):
        found = flags(
            """\
            def set_window(window):
                if window <= 0:
                    raise ValueError("window must be positive")
            """,
            "error-hierarchy",
        )
        assert len(found) == 1
        assert "ReproError" in found[0].message

    def test_passes_repro_errors(self):
        found = flags(
            """\
            from repro.errors import QueryError

            def canonicalize(query):
                raise QueryError("contradictory predicate")
            """,
            "error-hierarchy",
        )
        assert found == []

    def test_passes_protocol_builtins(self):
        found = flags(
            """\
            def domain(self, name):
                if name not in self._domains:
                    raise KeyError(name)
                raise NotImplementedError
            """,
            "error-hierarchy",
        )
        assert found == []

    def test_passes_bare_reraise(self):
        found = flags(
            """\
            def forward(error):
                raise
            """,
            "error-hierarchy",
        )
        assert found == []


class TestBareThreadStart:
    def test_flags_unbound_daemonless_thread(self):
        found = flags(
            """\
            import threading

            def start(target):
                threading.Thread(target=target).start()
            """,
            "bare-thread-start",
            SERVE,
        )
        assert len(found) == 1
        assert "daemonless" in found[0].message

    def test_passes_daemon_thread(self):
        found = flags(
            """\
            import threading

            def start(target):
                threading.Thread(target=target, daemon=True).start()
            """,
            "bare-thread-start",
            SERVE,
        )
        assert found == []

    def test_passes_joined_thread(self):
        found = flags(
            """\
            import threading

            class Worker:
                def start(self):
                    self._thread = threading.Thread(target=self._run)
                    self._thread.start()

                def stop(self):
                    self._thread.join(timeout=10)
            """,
            "bare-thread-start",
            SERVE,
        )
        assert found == []

    def test_flags_anonymous_lock(self):
        found = flags(
            """\
            import threading

            def locked():
                with threading.Lock():
                    pass
            """,
            "bare-thread-start",
            INGEST,
        )
        assert len(found) == 1
        assert "anonymous" in found[0].message

    def test_passes_bound_lock(self):
        found = flags(
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            "bare-thread-start",
            INGEST,
        )
        assert found == []

    def test_out_of_scope_module_unchecked(self):
        found = flags(
            """\
            import threading

            def start(target):
                threading.Thread(target=target).start()
            """,
            "bare-thread-start",
            CORE,
        )
        assert found == []


class TestMetricsDiscipline:
    COUNTER = """\
        class Handler:
            def __init__(self):
                self.hits = 0

            def handle(self):
                self.hits += 1
    """

    def test_flags_public_bare_int_counter(self):
        found = flags(self.COUNTER, "metrics-discipline", SERVE)
        assert len(found) == 1
        assert "self.hits" in found[0].message
        assert "MetricsRegistry" in found[0].message

    def test_flags_decrement_too(self):
        source = self.COUNTER.replace("self.hits += 1", "self.hits -= 1")
        found = flags(source, "metrics-discipline", SERVE)
        assert len(found) == 1

    def test_passes_private_bookkeeping(self):
        source = self.COUNTER.replace("hits", "_next_id")
        assert flags(source, "metrics-discipline", SERVE) == []

    def test_passes_non_literal_seed(self):
        # fields seeded from an expression are state, not counters
        source = self.COUNTER.replace(
            "self.hits = 0", "self.hits = initial()"
        )
        assert flags(source, "metrics-discipline", SERVE) == []

    def test_passes_registry_backed_counter(self):
        found = flags(
            """\
            class Handler:
                def __init__(self, registry):
                    self._hits = registry.counter("repro_hits_total")

                def handle(self):
                    self._hits.inc()
            """,
            "metrics-discipline",
            SERVE,
        )
        assert found == []

    def test_construction_bumps_exempt(self):
        found = flags(
            """\
            class Handler:
                def __init__(self):
                    self.hits = 0
                    self.hits += 1
            """,
            "metrics-discipline",
            SERVE,
        )
        assert found == []

    def test_out_of_scope_module_unchecked(self):
        assert flags(self.COUNTER, "metrics-discipline", CORE) == []


# ----------------------------------------------------------------------
# Reporter + CLI
# ----------------------------------------------------------------------

def _violating_tree(tmp_path: Path) -> Path:
    path = tmp_path / "src" / "repro" / "serve" / "h.py"
    path.parent.mkdir(parents=True)
    path.write_text(
        "import time\n\n\nasync def handler():\n    time.sleep(1)\n"
    )
    return tmp_path


class TestReporting:
    def test_json_schema(self, tmp_path):
        root = _violating_tree(tmp_path)
        report = analyze_paths([root / "src"], root=root)
        document = report.to_json()
        assert document["schema_version"] == 1
        assert document["tool"] == "repro-analyze"
        assert document["ok"] is False
        assert document["files_scanned"] == 1
        assert document["suppressed"] == 0
        assert document["parse_errors"] == []
        [violation] = document["violations"]
        assert violation["rule"] == "async-blocking"
        assert violation["path"] == "src/repro/serve/h.py"
        assert violation["line"] == 5
        assert isinstance(violation["col"], int)
        assert "time.sleep" in violation["message"]
        by_rule = {row["name"]: row["violations"] for row in document["rules"]}
        assert by_rule["async-blocking"] == 1

    def test_parse_error_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = analyze_paths([tmp_path / "src"], root=tmp_path)
        assert not report.ok
        assert len(report.parse_errors) == 1

    def test_cli_exit_codes(self, tmp_path, capsys):
        root = _violating_tree(tmp_path)
        src = str(root / "src")
        assert analyze_main([src, "--root", str(root)]) == 1
        # Narrowed to a rule that does not fire -> clean.
        assert (
            analyze_main(
                [src, "--root", str(root), "--select", "error-hierarchy"]
            )
            == 0
        )
        # Unknown rule names are usage errors, not silent no-ops.
        assert (
            analyze_main([src, "--root", str(root), "--select", "no-such"])
            == 2
        )
        capsys.readouterr()

    def test_cli_writes_json_artifact(self, tmp_path, capsys):
        root = _violating_tree(tmp_path)
        out = tmp_path / "analyze_report.json"
        code = analyze_main(
            [str(root / "src"), "--root", str(root), "--out", str(out)]
        )
        assert code == 1
        document = json.loads(out.read_text())
        assert document["tool"] == "repro-analyze"
        assert len(document["violations"]) == 1
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        output = capsys.readouterr().out
        for name in default_rules():
            assert name in output


# ----------------------------------------------------------------------
# The gate itself: the shipped source tree must analyze clean.
# ----------------------------------------------------------------------

def test_src_tree_is_clean():
    report = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert report.parse_errors == []
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.violations == [], f"src/ has violations:\n{rendered}"


# ----------------------------------------------------------------------
# Lock-order watchdog
# ----------------------------------------------------------------------

class TestLockOrderWatchdog:
    def _two_locks(self, watchdog):
        lock_a = watchdog.make_lock()
        lock_b = watchdog.make_lock()
        assert lock_a.site != lock_b.site
        return lock_a, lock_b

    def test_seeded_cycle_detected(self):
        watchdog = LockOrderWatchdog()
        watchdog._real_lock = threading.Lock
        lock_a, lock_b = self._two_locks(watchdog)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        cycle = watchdog.cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert {lock_a.site, lock_b.site} <= set(cycle)
        with pytest.raises(LockOrderViolation, match="conflicting orders"):
            watchdog.assert_no_cycles()

    def test_cycle_detected_across_threads(self):
        watchdog = LockOrderWatchdog()
        watchdog._real_lock = threading.Lock
        lock_a, lock_b = self._two_locks(watchdog)

        def in_order(first, second):
            with first:
                with second:
                    pass

        thread = threading.Thread(target=in_order, args=(lock_a, lock_b))
        thread.start()
        thread.join()
        in_order(lock_b, lock_a)
        assert watchdog.cycle() is not None

    def test_consistent_order_passes(self):
        watchdog = LockOrderWatchdog()
        watchdog._real_lock = threading.Lock
        lock_a, lock_b = self._two_locks(watchdog)
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert watchdog.cycle() is None
        watchdog.assert_no_cycles()
        stats = watchdog.stats()
        assert stats["locks"] == 2
        assert stats["edges"] == 1
        assert stats["acquisitions"] == 6

    def test_same_site_nesting_ignored(self):
        # Two sibling instances created at one site may nest either way.
        watchdog = LockOrderWatchdog()
        watchdog._real_lock = threading.Lock
        locks = [watchdog.make_lock() for _ in range(2)]
        with locks[0]:
            with locks[1]:
                pass
        with locks[1]:
            with locks[0]:
                pass
        assert watchdog.cycle() is None

    def test_tracked_lock_passthrough(self):
        watchdog = LockOrderWatchdog()
        watchdog._real_lock = threading.Lock
        lock = watchdog.make_lock()
        assert not lock.locked()
        assert lock.acquire(blocking=False)
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()

    def test_install_patches_and_restores_threading(self):
        original_lock = threading.Lock
        original_rlock = threading.RLock
        watchdog = LockOrderWatchdog()
        with watchdog:
            tracked = threading.Lock()
            assert isinstance(tracked, TrackedLock)
            rtracked = threading.RLock()
            assert isinstance(rtracked, TrackedLock)
            with rtracked:
                with rtracked:  # reentrancy preserved
                    pass
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_release_out_of_order_tolerated(self):
        watchdog = LockOrderWatchdog()
        watchdog._real_lock = threading.Lock
        lock_a, lock_b = self._two_locks(watchdog)
        lock_a.acquire()
        lock_b.acquire()
        lock_a.release()
        lock_b.release()
        assert watchdog.cycle() is None
        assert watchdog.stats()["acquisitions"] == 2
