"""Unit + property tests for the Mirror Descent solver (Algorithm 1).

Post-condition under test: after solving, the model's expected values
match the asserted statistics — ``E[⟨c_j, I⟩] ≈ s_j`` for every 1D and
multi-dimensional statistic.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.naive import NaivePolynomial
from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import MirrorDescentSolver, solve_statistics
from repro.errors import SolverError

from tests.conftest import relations_with_stats


class TestConvergence:
    def test_solves_small_model(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params, report = solve_statistics(poly, max_iterations=200)
        assert report.final_error < 1e-6
        assert report.converged

    def test_constraints_satisfied(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params, _ = solve_statistics(poly, max_iterations=200)
        solver = MirrorDescentSolver(poly)
        errors = solver.constraint_errors(params)
        for per_attr in errors["one_dim"]:
            assert per_attr.max() < 1e-3
        if errors["multi_dim"].size:
            assert errors["multi_dim"].max() < 1e-3

    def test_zero_statistics_pin_alpha_to_zero(self, small_relation):
        from repro.data.relation import Relation
        from repro.stats.statistic import StatisticSet, range_statistic_2d

        schema = small_relation.schema
        # Empty the (A=3, B=4) cell deterministically, then assert it
        # as a ZERO statistic.
        keep = ~(
            (small_relation.column("A") == 3) & (small_relation.column("B") == 4)
        )
        relation = Relation(
            schema,
            [small_relation.column(pos)[keep] for pos in range(3)],
        )
        statistic = range_statistic_2d(schema, "A", (3, 3), "B", (4, 4), 0.0)
        statistic_set = StatisticSet.from_relation(relation, [statistic])
        poly = CompressedPolynomial(statistic_set)
        params, _ = solve_statistics(poly, max_iterations=50)
        assert params.deltas[0] == 0.0

    def test_zero_marginal_pins_one_dim(self, small_schema):
        from repro.data.relation import Relation
        from repro.stats.statistic import StatisticSet

        # Value 3 of attribute A never occurs.
        rows = [(0, 0, 0), (1, 1, 1), (2, 2, 2), (0, 4, 1)] * 5
        relation = Relation.from_rows(small_schema, rows)
        statistic_set = StatisticSet.from_relation(relation)
        poly = CompressedPolynomial(statistic_set)
        params, _ = solve_statistics(poly, max_iterations=50)
        assert params.alphas[0][3] == 0.0

    def test_error_trace_monotone_overall(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        _, report = solve_statistics(poly, max_iterations=60)
        trace = report.error_trace
        # Coordinate ascent on a concave dual: the tail of the trace
        # must improve on the head.
        assert trace[-1] < trace[0]

    def test_callback_invoked(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        seen = []
        solve_statistics(
            poly,
            max_iterations=5,
            threshold=0.0,
            callback=lambda i, e: seen.append((i, e)),
        )
        assert [i for i, _ in seen] == [0, 1, 2, 3, 4]

    def test_warm_start_from_params(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params, _ = solve_statistics(poly, max_iterations=100)
        solver = MirrorDescentSolver(poly, max_iterations=1)
        warmed, report = solver.solve(params=params)
        assert report.final_error < 1e-6

    def test_invalid_max_iterations(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        with pytest.raises(SolverError):
            MirrorDescentSolver(poly, max_iterations=0)


class TestModelAgreesWithData:
    """After solving, the model's distribution reproduces the measured
    statistics but stays maximal-entropy elsewhere."""

    def test_marginals_match(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params, _ = solve_statistics(poly, max_iterations=200)
        naive = NaivePolynomial(small_statistics)
        total = small_statistics.total
        probabilities = naive.tuple_probabilities(params)
        for pos in range(3):
            expected = np.zeros(poly.sizes[pos])
            for row, p in enumerate(probabilities):
                expected[naive.tuple_indices[row, pos]] += p * total
            np.testing.assert_allclose(
                expected, small_statistics.one_dim[pos], atol=1e-2
            )

    def test_one_dim_only_model_is_product_of_marginals(self, small_relation):
        from repro.stats.statistic import StatisticSet

        statistic_set = StatisticSet.from_relation(small_relation)
        poly = CompressedPolynomial(statistic_set)
        params, _ = solve_statistics(poly, max_iterations=100)
        naive = NaivePolynomial(statistic_set)
        probabilities = naive.tuple_probabilities(params)
        total = statistic_set.total
        marginals = [
            np.asarray(counts) / total for counts in statistic_set.one_dim
        ]
        for row in range(naive.num_monomials):
            indices = naive.tuple_indices[row]
            independent = np.prod(
                [marginals[pos][indices[pos]] for pos in range(3)]
            )
            assert probabilities[row] == pytest.approx(independent, abs=1e-6)

    @given(relations_with_stats(max_stats=3))
    @settings(max_examples=15)
    def test_property_constraints_satisfied(self, data):
        relation, statistic_set = data
        poly = CompressedPolynomial(statistic_set)
        solver = MirrorDescentSolver(poly, max_iterations=600, threshold=1e-9)
        params, report = solver.solve()
        # Relative violation of every constraint under 0.2% of n.
        # (Coordinate ascent converges slowly on tiny degenerate
        # schemas; the paper's configurations run far from this regime.)
        assert solver.max_constraint_error(params) < 2e-3
