"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.flights import (
    STATE_CODES,
    flights_restricted,
    generate_flights,
)
from repro.datasets.particles import generate_particles
from repro.errors import ReproError
from repro.stats.correlation import cramers_v, pair_correlations


@pytest.fixture(scope="module")
def flights():
    return generate_flights(num_rows=30_000, seed=7)


@pytest.fixture(scope="module")
def particles():
    return generate_particles(rows_per_snapshot=10_000, seed=11)


class TestFlightsStructure:
    def test_domain_sizes_match_fig3(self, flights):
        assert flights.coarse.schema.sizes() == [307, 54, 54, 62, 81]
        assert flights.fine.schema.sizes() == [307, 147, 147, 62, 81]

    def test_row_counts(self, flights):
        assert flights.coarse.num_rows == 30_000
        assert flights.fine.num_rows == 30_000

    def test_state_codes(self):
        assert len(STATE_CODES) == 54
        assert len(set(STATE_CODES)) == 54

    def test_deterministic(self):
        first = generate_flights(num_rows=1000, seed=3)
        second = generate_flights(num_rows=1000, seed=3)
        assert np.array_equal(
            first.coarse.column("distance"), second.coarse.column("distance")
        )

    def test_seed_changes_data(self):
        first = generate_flights(num_rows=1000, seed=3)
        second = generate_flights(num_rows=1000, seed=4)
        assert not np.array_equal(
            first.coarse.column("origin_state"), second.coarse.column("origin_state")
        )

    def test_invalid_rows(self):
        with pytest.raises(ReproError):
            generate_flights(num_rows=0)

    def test_no_self_loops(self, flights):
        origin = flights.coarse.column("origin_state")
        dest = flights.coarse.column("dest_state")
        assert (origin != dest).all()

    def test_fine_consistent_with_coarse(self, flights):
        # The fine city labels carry their state as the group.
        fine_domain = flights.fine.schema.domain("origin_city")
        coarse = flights.coarse.column("origin_state")
        fine = flights.fine.column("origin_city")
        for row in range(0, 2000, 97):
            state_label = STATE_CODES[coarse[row]]
            city_label = fine_domain.label_of(int(fine[row]))
            assert city_label[0] == state_label


class TestFlightsCorrelations:
    def test_pair_ranking_matches_paper(self, flights):
        ranked = pair_correlations(flights.coarse)
        names = flights.coarse.schema.attribute_names
        top = {tuple(sorted((names[a], names[b]))) for (a, b), _ in ranked[:4]}
        assert top == {
            ("distance", "fl_time"),
            ("distance", "origin_state"),
            ("dest_state", "distance"),
            ("dest_state", "origin_state"),
        }

    def test_time_distance_strongest(self, flights):
        ranked = pair_correlations(flights.coarse)
        names = flights.coarse.schema.attribute_names
        (a, b), score = ranked[0]
        assert {names[a], names[b]} == {"fl_time", "distance"}
        assert score > 0.25

    def test_date_is_uniform(self, flights):
        relation = flights.coarse
        for other in ("origin_state", "dest_state", "fl_time", "distance"):
            table = relation.contingency("fl_date", other)
            assert cramers_v(table) < 0.05

    def test_route_popularity_is_skewed(self, flights):
        counts = sorted(
            flights.coarse.group_by_counts(
                ["origin_state", "dest_state"]
            ).values(),
            reverse=True,
        )
        top_share = sum(counts[:50]) / sum(counts)
        assert top_share > 0.4  # heavy hitters carry a large share

    def test_empty_cells_exist(self, flights):
        table = flights.coarse.contingency("fl_time", "distance")
        assert (table == 0).sum() > 100


class TestRestricted:
    def test_projection(self, flights):
        restricted = flights_restricted(flights)
        assert restricted.schema.attribute_names == [
            "fl_date", "fl_time", "distance",
        ]
        assert restricted.num_rows == flights.coarse.num_rows


class TestParticles:
    def test_domain_sizes_match_fig3(self, particles):
        assert particles.relation.schema.sizes() == [58, 52, 21, 21, 21, 2, 3, 3]

    def test_snapshot_subsets(self, particles):
        for count in (1, 2, 3):
            subset = particles.snapshots(count)
            assert subset.num_rows == count * 10_000

    def test_snapshot_bounds(self, particles):
        with pytest.raises(ReproError):
            particles.snapshots(0)
        with pytest.raises(ReproError):
            particles.snapshots(4)

    def test_density_grp_strongly_correlated(self, particles):
        table = particles.relation.contingency("density", "grp")
        assert cramers_v(table) > 0.3

    def test_mass_type_correlated(self, particles):
        table = particles.relation.contingency("mass", "type")
        assert cramers_v(table) > 0.2

    def test_positions_correlated(self, particles):
        # Clustering induces dependence between coordinates.
        table = particles.relation.contingency("x", "y")
        assert cramers_v(table) > 0.1

    def test_grp_fraction_reasonable(self, particles):
        marginal = particles.relation.marginal("grp")
        fraction = marginal[1] / marginal.sum()
        assert 0.35 < fraction < 0.75

    def test_deterministic(self):
        first = generate_particles(rows_per_snapshot=500, seed=2)
        second = generate_particles(rows_per_snapshot=500, seed=2)
        assert np.array_equal(
            first.relation.column("density"), second.relation.column("density")
        )
