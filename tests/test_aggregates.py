"""Tests for the SUM/AVG aggregate extension (Sec 7 "other aggregates").

SUM over a numeric attribute is a weighted linear query; the model
answers it with one gradient pass.  Exact and sampling backends
implement the same interface, so the SQL engine runs SUM/AVG against
all three.
"""

import numpy as np
import pytest

from repro.baselines.exact import ExactBackend
from repro.baselines.uniform import uniform_sample
from repro.core.summary import EntropySummary
from repro.data.binning import EquiWidthBinner
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.query.backends import SummaryBackend
from repro.query.engine import SQLEngine
from repro.query.linear import numeric_weights
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def relation():
    schema = Schema(
        [
            Domain("kind", ["a", "b", "c"]),
            integer_domain("amount", 10),
            Domain("flag", ["yes", "no"]),
        ]
    )
    rng = np.random.default_rng(55)
    kind = rng.choice(3, size=2000, p=[0.5, 0.3, 0.2])
    amount = np.clip(kind * 3 + rng.integers(0, 4, 2000), 0, 9)
    flag = rng.integers(0, 2, 2000)
    return Relation(schema, [kind, amount, flag])


@pytest.fixture(scope="module")
def engines(relation):
    summary = EntropySummary.build(
        relation, pairs=[("kind", "amount")], per_pair_budget=15,
        max_iterations=80,
    )
    return {
        "exact": SQLEngine(ExactBackend(relation)),
        "summary": SQLEngine(SummaryBackend(summary)),
        "sample": SQLEngine(uniform_sample(relation, fraction=0.2, seed=1)),
    }


class TestNumericWeights:
    def test_integer_labels(self):
        domain = integer_domain("x", 4)
        assert numeric_weights(domain).tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_bucket_labels_use_midpoints(self):
        binner = EquiWidthBinner("x", 0.0, 10.0, 2)
        assert numeric_weights(binner.domain).tolist() == [2.5, 7.5]

    def test_string_labels_rejected(self):
        with pytest.raises(QueryError, match="not numeric"):
            numeric_weights(Domain("s", ["a", "b"]))


class TestParserAggregates:
    def test_sum(self):
        query = parse_query("SELECT SUM(amount) FROM R WHERE kind = 'a'")
        assert query.aggregate == "sum"
        assert query.aggregate_attr == "amount"

    def test_avg_with_alias(self):
        query = parse_query("SELECT AVG(amount) AS mean FROM R")
        assert query.aggregate == "avg"

    def test_sum_with_group_by_rejected(self):
        with pytest.raises(QueryError, match="GROUP BY"):
            parse_query("SELECT SUM(amount) FROM R GROUP BY kind")

    def test_repr_round_trip(self):
        query = parse_query("SELECT SUM(amount) FROM R WHERE flag = 'yes'")
        assert parse_query(repr(query)).aggregate == "sum"


class TestSumAccuracy:
    def test_exact_unconditional(self, engines, relation):
        total = engines["exact"].count("SELECT SUM(amount) FROM R")
        assert total == float(relation.column("amount").sum())

    def test_summary_tracks_exact(self, engines):
        for sql in (
            "SELECT SUM(amount) FROM R",
            "SELECT SUM(amount) FROM R WHERE kind = 'b'",
            "SELECT SUM(amount) FROM R WHERE flag = 'yes' AND amount >= 3",
        ):
            estimate = engines["summary"].count(sql)
            truth = engines["exact"].count(sql)
            assert estimate == pytest.approx(truth, rel=0.1, abs=20)

    def test_sample_tracks_exact(self, engines):
        sql = "SELECT SUM(amount) FROM R WHERE kind = 'a'"
        assert engines["sample"].count(sql) == pytest.approx(
            engines["exact"].count(sql), rel=0.25
        )

    def test_avg(self, engines):
        sql = "SELECT AVG(amount) FROM R WHERE kind = 'c'"
        estimate = engines["summary"].count(sql)
        truth = engines["exact"].count(sql)
        assert estimate == pytest.approx(truth, rel=0.1)

    def test_avg_empty_predicate_fails_cleanly(self, engines, relation):
        # kind='a' AND amount=9 never co-occur (amount <= 6 for kind a).
        sql = "SELECT AVG(amount) FROM R WHERE kind = 'a' AND amount = 9"
        with pytest.raises(QueryError, match="AVG undefined"):
            engines["exact"].count(sql)


class TestModelSumConsistency:
    def test_sum_equals_weighted_group_by(self, engines):
        """SUM must equal Σ_v v · E[amount = v] — internal consistency
        of the gradient-pass implementation."""
        summary_engine = engines["summary"]
        backend = summary_engine.backend
        grouped = backend.summary.group_by(["amount"])
        expected = sum(
            float(label) * estimate.expectation
            for (label,), estimate in grouped.items()
        )
        total = summary_engine.count("SELECT SUM(amount) FROM R")
        assert total == pytest.approx(expected, rel=1e-9)

    def test_sum_additive_over_predicate_partition(self, engines):
        summary_engine = engines["summary"]
        parts = [
            summary_engine.count(
                f"SELECT SUM(amount) FROM R WHERE kind = '{kind}'"
            )
            for kind in ("a", "b", "c")
        ]
        whole = summary_engine.count("SELECT SUM(amount) FROM R")
        assert sum(parts) == pytest.approx(whole, rel=1e-9)
