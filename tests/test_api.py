"""Tests for the session API: Explorer, fluent queries, SummaryBuilder,
the Backend ABC, and the deprecation shim."""

import warnings

import numpy as np
import pytest

from repro.api import Backend, Explorer, SummaryBuilder
from repro.baselines.exact import ExactBackend
from repro.baselines.uniform import uniform_sample
from repro.core.summary import EntropySummary
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError, ReproError
from repro.query.backends import SummaryBackend
from repro.query.engine import SQLEngine


@pytest.fixture
def relation():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(3)
    states = rng.choice(3, size=300, p=[0.5, 0.3, 0.2])
    hours = rng.integers(0, 4, 300)
    return Relation(schema, [states, hours])


@pytest.fixture
def summary(relation):
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(60)
        .name("api-test")
        .fit()
    )


# ----------------------------------------------------------------------
# SummaryBuilder
# ----------------------------------------------------------------------

class TestSummaryBuilder:
    def test_fit_matches_legacy_build(self, relation, summary):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = EntropySummary.build(
                relation,
                pairs=[("state", "hour")],
                per_pair_budget=4,
                max_iterations=60,
                name="api-test",
            )
        assert legacy.total == summary.total
        assert (
            legacy.statistic_set.num_statistics
            == summary.statistic_set.num_statistics
        )
        predicate_count = Explorer.attach(summary).query().where(state="CA")
        assert Explorer.attach(legacy).query().where(state="CA").value() == (
            pytest.approx(predicate_count.value())
        )

    def test_validation(self, relation):
        builder = SummaryBuilder(relation)
        with pytest.raises(ReproError):
            builder.strategy("nope")
        with pytest.raises(ReproError):
            builder.heuristic("nope")
        with pytest.raises(ReproError):
            builder.iterations(0)
        with pytest.raises(ReproError):
            builder.pairs(("only-one",))
        with pytest.raises(ReproError):
            builder.with_options(bogus_option=3)

    def test_pairs_accepts_iterable(self, relation):
        direct = SummaryBuilder(relation).pairs(("state", "hour"))
        from_list = SummaryBuilder(relation).pairs([("state", "hour")])
        assert direct._pairs == from_list._pairs == [("state", "hour")]

    def test_one_dim_only(self, relation):
        no2d = SummaryBuilder(relation).iterations(20).fit()
        assert no2d.statistic_set.num_multi_dim == 0


class TestDeprecationShim:
    def test_build_warns(self, relation):
        with pytest.warns(DeprecationWarning, match="SummaryBuilder"):
            EntropySummary.build(relation, max_iterations=5)

    def test_build_still_honors_arguments(self, relation):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            built = EntropySummary.build(
                relation,
                pairs=[("state", "hour")],
                per_pair_budget=4,
                max_iterations=5,
                name="shimmed",
            )
        assert built.name == "shimmed"
        assert built.statistic_set.num_multi_dim > 0


# ----------------------------------------------------------------------
# Fluent queries vs raw SQL
# ----------------------------------------------------------------------

class TestFluentEquivalence:
    CASES = [
        (
            lambda q: q.where(state="CA"),
            "SELECT COUNT(*) FROM R WHERE state = 'CA'",
        ),
        (
            lambda q: q.where(hour__ge=2),
            "SELECT COUNT(*) FROM R WHERE hour >= 2",
        ),
        (
            lambda q: q.where(state__in=("CA", "NY"), hour__between=(1, 2)),
            "SELECT COUNT(*) FROM R WHERE state IN ('CA', 'NY') "
            "AND hour BETWEEN 1 AND 2",
        ),
        (
            lambda q: q.where(state__ne="CA"),
            "SELECT COUNT(*) FROM R WHERE state != 'CA'",
        ),
    ]

    @pytest.mark.parametrize("build,sql", CASES)
    def test_scalar_counts_match_sql(self, relation, summary, build, sql):
        for source in (relation, summary):
            explorer = Explorer.attach(source)
            raw_engine = SQLEngine(explorer.backend, table_name="R")
            assert build(explorer.query()).value() == pytest.approx(
                raw_engine.count(sql)
            )

    def test_grouped_matches_sql(self, relation):
        explorer = Explorer.attach(relation)
        fluent = (
            explorer.query()
            .where(hour__ge=1)
            .group_by("state")
            .order("desc")
            .limit(2)
            .run()
        )
        raw = SQLEngine(ExactBackend(relation), table_name="R").execute(
            "SELECT state, COUNT(*) AS cnt FROM R WHERE hour >= 1 "
            "GROUP BY state ORDER BY cnt DESC LIMIT 2"
        )
        assert fluent.to_rows() == raw.to_rows()

    def test_group_and_where_same_attribute(self, relation):
        explorer = Explorer.attach(relation)
        result = (
            explorer.query()
            .where(state__in=("CA", "WA"))
            .group_by("state")
            .run()
        )
        assert {labels for labels, _ in result.to_dict().items()} == {
            "CA", "WA",
        }

    def test_sum_and_avg(self, relation, summary):
        exact = Explorer.attach(relation)
        approx = Explorer.attach(summary)
        exact_sum = exact.query().sum("hour").where(state="CA").value()
        raw = SQLEngine(ExactBackend(relation), table_name="R").count
        # hour labels are their numeric values, so SUM is well-defined.
        assert exact_sum == pytest.approx(
            sum(
                hour * raw(f"SELECT COUNT(*) FROM R WHERE state = 'CA' AND hour = {hour}")
                for hour in range(4)
            )
        )
        approx_avg = approx.query().avg("hour").value()
        assert 0.0 <= approx_avg <= 3.0

    def test_bad_lookup_rejected(self, relation):
        explorer = Explorer.attach(relation)
        with pytest.raises(QueryError):
            explorer.query().where(hour__between=(1, 2, 3))
        with pytest.raises(QueryError):
            explorer.query().where("not-a-condition")

    def test_value_on_grouped_rejected(self, relation):
        explorer = Explorer.attach(relation)
        with pytest.raises(QueryError, match="grouped"):
            explorer.query().group_by("state").value()


# ----------------------------------------------------------------------
# Explorer sessions
# ----------------------------------------------------------------------

class TestExplorer:
    def test_attach_variants(self, relation, summary):
        assert Explorer.attach(relation).backend.is_exact
        assert not Explorer.attach(summary).backend.is_exact
        backend = ExactBackend(relation)
        assert Explorer.attach(backend).backend is backend
        explorer = Explorer.attach(relation)
        assert Explorer.attach(explorer) is explorer
        with pytest.raises(ReproError):
            Explorer.attach(object())

    def test_summary_property(self, relation, summary):
        assert Explorer.attach(summary).summary is summary
        assert Explorer.attach(relation).summary is None

    def test_rounded_view(self, relation, summary):
        explorer = Explorer.attach(summary)
        rounded = explorer.rounded()
        value = rounded.query().where(state="WA", hour=3).value()
        assert value == int(value)
        with pytest.raises(ReproError):
            Explorer.attach(relation).rounded()

    def test_error_bounds_on_summary_results(self, summary):
        result = Explorer.attach(summary).query().where(state="CA").run()
        assert result.std is not None and result.std > 0
        low, high = result.ci95
        assert low <= result.scalar <= high
        as_dict = result.to_dict()
        assert set(as_dict) == {"count", "std", "ci95"}

    def test_no_error_bounds_on_exact_results(self, relation):
        result = Explorer.attach(relation).query().where(state="CA").run()
        assert result.std is None and result.ci95 is None
        assert set(result.to_dict()) == {"count"}

    def test_result_cache_hits(self, summary):
        explorer = Explorer.attach(summary)
        first = explorer.sql("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        second = explorer.sql("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        assert second is first  # served from the session cache
        assert explorer.cache_info()["results"]["hits"] == 1
        explorer.clear_cache()
        assert explorer.cache_info()["results"]["hits"] == 0

    def test_group_by_results_cached(self, relation):
        explorer = Explorer.attach(relation)
        query = explorer.query().group_by("state").order("desc")
        assert query.run() is query.run()

    def test_cache_info_sections_are_locked_snapshots(self, summary):
        # Regression: cache_info() used to read size/hits/misses field
        # by field without the cache lock; each section now comes from
        # one _LRUCache.stats() snapshot.
        explorer = Explorer.attach(summary)
        explorer.sql("SELECT COUNT(*) FROM R WHERE state = 'CA'")
        info = explorer.cache_info()
        assert set(info) == {"asts", "predicates", "results"}
        for section in info.values():
            assert set(section) == {"size", "hits", "misses"}
            assert all(value >= 0 for value in section.values())

    def test_cache_disabled(self, summary):
        explorer = Explorer.attach(summary, cache_size=0)
        sql = "SELECT COUNT(*) FROM R WHERE state = 'CA'"
        assert explorer.sql(sql) is not explorer.sql(sql)

    def test_describe(self, summary):
        card = Explorer.attach(summary).describe()
        assert card["supports_sum"] is True
        assert card["is_exact"] is False
        assert card["table"] == "R"

    def test_table_name_respected(self, relation):
        explorer = Explorer.attach(relation, table_name="Flights")
        assert explorer.count("SELECT COUNT(*) FROM Flights") == 300
        with pytest.raises(QueryError, match="unknown table"):
            explorer.sql("SELECT COUNT(*) FROM R")


class TestRunMany:
    def queries(self, explorer):
        return [
            explorer.query().where(state="CA"),
            explorer.query().where(state="NY", hour__ge=2),
            "SELECT COUNT(*) FROM R WHERE hour = 0",
            explorer.query().group_by("state").order("desc"),
            explorer.query().where(hour__between=(1, 3)),
            explorer.query().where(state__in=("NY", "WA")),
            explorer.query().where(state="WA", hour=1),
            explorer.query().where(hour__le=2),
            "SELECT COUNT(*) FROM R",
        ]

    @pytest.mark.parametrize("source", ["relation", "summary"])
    def test_matches_sequential_run(self, relation, summary, source):
        origin = {"relation": relation, "summary": summary}[source]
        batched = Explorer.attach(origin)
        sequential = Explorer.attach(origin)
        batch_results = batched.run_many(self.queries(batched))
        seq_results = [
            sequential.execute(q if isinstance(q, str) else q.to_ast())
            for q in self.queries(sequential)
        ]
        assert len(batch_results) == len(seq_results) == 9
        for got, want in zip(batch_results, seq_results):
            if want.is_scalar:
                assert got.scalar == pytest.approx(want.scalar)
            else:
                assert got.to_rows() == want.to_rows()

    def test_populates_cache(self, summary):
        explorer = Explorer.attach(summary)
        queries = self.queries(explorer)
        explorer.run_many(queries)
        info = explorer.cache_info()["results"]
        assert info["size"] == 9
        explorer.run_many(queries)
        assert explorer.cache_info()["results"]["hits"] >= 9

    def test_batch_carries_error_bounds(self, summary):
        explorer = Explorer.attach(summary)
        results = explorer.run_many(
            [explorer.query().where(state="CA"), explorer.query().where(state="NY")]
        )
        assert all(result.std is not None for result in results)

    def test_count_many_conjunctions(self, relation, summary):
        from repro.stats.predicates import Conjunction, RangePredicate

        schema = relation.schema
        predicates = [
            Conjunction(schema, {"state": RangePredicate.point(index)})
            for index in range(3)
        ]
        exact = Explorer.attach(relation).count_many(predicates)
        assert exact == [float(c) for c in relation.marginal("state")]
        approx = Explorer.attach(summary).count_many(predicates)
        assert len(approx) == 3
        assert approx == pytest.approx(exact, rel=0.25, abs=6)


# ----------------------------------------------------------------------
# Backend ABC
# ----------------------------------------------------------------------

class TestBackendABC:
    def test_concrete_backends_subclass(self, relation, summary):
        assert isinstance(ExactBackend(relation), Backend)
        assert isinstance(SummaryBackend(summary), Backend)
        assert isinstance(uniform_sample(relation, fraction=0.2, seed=1), Backend)

    def test_capability_flags(self, relation, summary):
        exact = ExactBackend(relation)
        assert exact.is_exact and exact.supports_sum
        model = SummaryBackend(summary)
        assert not model.is_exact and model.supports_sum
        sample = uniform_sample(relation, fraction=0.2, seed=1)
        assert not sample.is_exact and sample.supports_sum

    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            Backend()  # type: ignore[abstract]

    def test_default_sum_values_raises(self, relation):
        class CountOnly(Backend):
            supports_sum = False

            def __init__(self, inner):
                self.inner = inner
                self.schema = inner.schema
                self.name = "count-only"

            def count(self, predicate):
                return self.inner.count(predicate)

            def group_counts(self, attrs, predicate):
                return self.inner.group_counts(attrs, predicate)

        backend = CountOnly(ExactBackend(relation))
        with pytest.raises(QueryError, match="SUM/AVG"):
            backend.sum_values("hour", [0, 1, 2, 3], None)
        explorer = Explorer.attach(backend)
        with pytest.raises(QueryError, match="SUM/AVG"):
            explorer.sql("SELECT SUM(hour) FROM R")
        # Counting still works, including the default batched path.
        assert explorer.count("SELECT COUNT(*) FROM R") == 300

    def test_default_count_many_loops(self, relation):
        from repro.stats.predicates import Conjunction, RangePredicate

        backend = ExactBackend(relation)
        predicates = [
            Conjunction(relation.schema, {"hour": RangePredicate.point(h)})
            for h in range(4)
        ]
        assert backend.count_many(predicates) == [
            backend.count(p) for p in predicates
        ]

    def test_describe(self, relation):
        card = ExactBackend(relation).describe()
        assert card == {
            "name": "exact",
            "type": "ExactBackend",
            "supports_sum": True,
            "is_exact": True,
        }


# ----------------------------------------------------------------------
# Thread safety: one Explorer shared across threads
# ----------------------------------------------------------------------

class _SlowSpyBackend(Backend):
    """Counts backend invocations; sleeps to widen race windows."""

    is_exact = True

    def __init__(self, relation, delay=0.002):
        from repro.baselines.exact import ExactBackend as _Exact

        self.inner = _Exact(relation)
        self.schema = relation.schema
        self.name = "slow-spy"
        self.delay = delay
        self.calls = 0
        self._lock = __import__("threading").Lock()

    def _tick(self):
        import time

        with self._lock:
            self.calls += 1
        time.sleep(self.delay)

    def count(self, predicate):
        self._tick()
        return self.inner.count(predicate)

    def group_counts(self, attrs, predicate):
        self._tick()
        return self.inner.group_counts(attrs, predicate)


class TestExplorerThreadSafety:
    """Regression: PR 4 made the per-session LRU caches lock-guarded
    and gave execute() single-flight semantics.  Before that, hammering
    one Explorer from threads corrupted the OrderedDicts (KeyError on
    move_to_end) and recomputed one query once per thread."""

    QUERIES = [
        "SELECT COUNT(*) FROM R WHERE state = 'CA'",
        "SELECT COUNT(*) FROM R WHERE state = 'NY' AND hour >= 1",
        "SELECT COUNT(*) FROM R WHERE hour BETWEEN 1 AND 2",
        "SELECT COUNT(*) FROM R GROUP BY state",
    ]

    def test_eight_threads_no_corruption_no_double_compute(self, relation):
        import threading

        backend = _SlowSpyBackend(relation)
        explorer = Explorer.attach(backend)
        expected = {
            sql: Explorer.attach(ExactBackend(relation)).execute(sql).to_dict()
            for sql in self.QUERIES
        }

        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def hammer(seed):
            try:
                barrier.wait()
                for index in range(40):
                    sql = self.QUERIES[(seed + index) % len(self.QUERIES)]
                    result = explorer.execute(sql)
                    assert result.to_dict() == expected[sql]
            except BaseException as error:  # propagated to the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        # Single-flight: each of the 4 distinct queries ran exactly once
        # (all 8 threads start together on the same first-query window,
        # so without single-flight this is reliably > 4).
        assert backend.calls == len(self.QUERIES)
        info = explorer.cache_info()
        assert info["results"]["size"] == len(self.QUERIES)

    def test_concurrent_distinct_queries_all_correct(self, relation):
        import threading

        backend = _SlowSpyBackend(relation, delay=0.0005)
        explorer = Explorer.attach(backend, cache_size=2)  # force evictions
        reference = Explorer.attach(ExactBackend(relation))
        queries = [
            f"SELECT COUNT(*) FROM R WHERE hour >= {h} AND state = '{s}'"
            for h in range(4)
            for s in ("CA", "NY", "WA")
        ]
        expected = {sql: reference.execute(sql).scalar for sql in queries}
        errors: list[BaseException] = []

        def hammer(offset):
            try:
                for index in range(3 * len(queries)):
                    sql = queries[(offset * 5 + index) % len(queries)]
                    assert explorer.execute(sql).scalar == expected[sql]
            except BaseException as error:
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
