"""Tests for the dual objective Ψ and the scipy validation solver."""

import numpy as np
import pytest

from repro.core.dual import dual_gradient, dual_value, solve_dual_scipy
from repro.core.polynomial import CompressedPolynomial, initial_parameters
from repro.core.solver import MirrorDescentSolver, solve_statistics


class TestDualValue:
    def test_gradient_is_constraint_violation(self, small_statistics, rng):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        for alpha in params.alphas:
            alpha[:] = rng.random(alpha.size) + 0.3
        gradient = dual_gradient(poly, params)
        # dΨ/dθ_j = s_j − E_j: finite-difference check on one variable.
        pos, index = 1, 2
        epsilon = 1e-6
        theta = np.log(params.alphas[pos][index])
        params.alphas[pos][index] = np.exp(theta + epsilon)
        up = dual_value(poly, params)
        params.alphas[pos][index] = np.exp(theta - epsilon)
        down = dual_value(poly, params)
        params.alphas[pos][index] = np.exp(theta)
        numeric = (up - down) / (2 * epsilon)
        assert gradient["one_dim"][pos][index] == pytest.approx(numeric, rel=1e-4)

    def test_dual_increases_during_solve(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        start = initial_parameters(poly)
        fitted, _ = solve_statistics(poly, max_iterations=100)
        assert dual_value(poly, fitted) > dual_value(poly, start)

    def test_zero_alpha_with_positive_target_is_minus_inf(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params = initial_parameters(poly)
        params.alphas[0][0] = 0.0
        if small_statistics.one_dim[0][0] > 0:
            assert dual_value(poly, params) == float("-inf")


class TestScipyAgreement:
    """The independent L-BFGS dual ascent must find the same model as
    Mirror Descent (the MaxEnt distribution is unique even though the
    overcomplete parameters are not)."""

    def test_same_expected_values(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        mirror_params, _ = solve_statistics(poly, max_iterations=300)
        scipy_params, result = solve_dual_scipy(poly)
        total = small_statistics.total
        mirror_parts = poly.evaluation_parts(mirror_params)
        scipy_parts = poly.evaluation_parts(scipy_params)
        for pos in range(poly.schema.num_attributes):
            np.testing.assert_allclose(
                poly.expected_one_dim(mirror_parts, mirror_params, total, pos),
                poly.expected_one_dim(scipy_parts, scipy_params, total, pos),
                atol=0.05,
            )

    def test_same_query_answers(self, small_statistics):
        from repro.core.inference import InferenceEngine

        poly = CompressedPolynomial(small_statistics)
        mirror_params, _ = solve_statistics(poly, max_iterations=300)
        scipy_params, _ = solve_dual_scipy(poly)
        total = small_statistics.total
        mirror_engine = InferenceEngine(poly, mirror_params, total)
        scipy_engine = InferenceEngine(poly, scipy_params, total)
        masks = {0: np.array([True, True, False, False]),
                 1: np.array([False, True, True, False, True])}
        assert mirror_engine.estimate_masks(masks).expectation == pytest.approx(
            scipy_engine.estimate_masks(masks).expectation, rel=0.02, abs=0.5
        )

    def test_constraints_satisfied_by_scipy(self, small_statistics):
        poly = CompressedPolynomial(small_statistics)
        params, result = solve_dual_scipy(poly)
        solver = MirrorDescentSolver(poly)
        assert solver.max_constraint_error(params) < 1e-4

    def test_no_positive_statistics(self, small_schema):
        from repro.data.relation import Relation
        from repro.stats.statistic import StatisticSet

        relation = Relation.from_rows(small_schema, [(0, 0, 0)] * 4)
        statistic_set = StatisticSet.from_relation(relation)
        poly = CompressedPolynomial(statistic_set)
        params, result = solve_dual_scipy(poly)
        # Only (0,0,0) exists; all other alphas must be 0.
        assert params.alphas[0][1] == 0.0
        assert params.alphas[0][0] > 0.0
