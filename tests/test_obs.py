"""The observability layer: registry, tracing, exposition, slow log.

Unit coverage for ``repro.obs`` plus the serving-layer integration the
PR 9 tentpole promises: trace ids on both wire protocols, the
``metrics`` op round-tripping through the Prometheus text parser, the
one-snapshot ``stats()`` pass, and — the satellite case — N same-key
coalesced requests sharing one evaluate span while keeping distinct
trace ids and their own queue-wait spans.
"""

import json
import threading

import numpy as np
import pytest

from repro.api import SummaryBuilder
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceRing,
    activate,
    current_trace,
    histogram_quantile,
    histogram_stats,
    parse_prometheus,
    render_prometheus,
    render_top,
    sample_value,
    span,
)
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerBusy,
    ServerThread,
    SummaryServer,
    wire,
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

def _relation(rows: int = 300, seed: int = 3) -> Relation:
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(seed)
    return Relation(
        schema,
        [rng.choice(3, size=rows, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, rows)],
    )


@pytest.fixture(scope="module")
def summary():
    return (
        SummaryBuilder(_relation())
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(50)
        .name("obs-test")
        .fit()
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        requests = registry.counter("t_requests_total", "Requests.", ("op",))
        requests.labels(op="query").inc()
        requests.labels(op="query").inc(2)
        requests.labels(op="ping").inc()
        assert requests.labels(op="query").value == 3
        assert requests.total() == 4

    def test_unlabelled_family_delegates(self):
        registry = MetricsRegistry()
        hits = registry.counter("t_hits_total")
        hits.inc(5)
        assert hits.value == 5
        depth = registry.gauge("t_depth")
        depth.set(7)
        depth.dec()
        assert depth.value == 6
        depth.set_max(3)  # ratchet never goes down
        assert depth.value == 6

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "", ("op",))
        again = registry.counter("t_total", "", ("op",))
        assert first is again

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("t_total")
        with pytest.raises(ObservabilityError):
            registry.counter("t_total", "", ("op",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("0bad")
        with pytest.raises(ObservabilityError):
            registry.counter("ok_total", "", ("0bad",))

    def test_wrong_labelset_raises(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "", ("op",))
        with pytest.raises(ObservabilityError):
            family.labels(shard="0")
        with pytest.raises(ObservabilityError):
            family.inc()  # labelled family has no default series

    def test_histogram_observe_and_quantile(self):
        registry = MetricsRegistry()
        latency = registry.histogram("t_seconds")
        for value in (0.0001, 0.001, 0.001, 0.002, 5.0):
            latency.observe(value)
        assert latency.count == 5
        assert latency.sum == pytest.approx(5.0041)
        p50 = latency.quantile(0.5)
        assert 0.0005 <= p50 <= 0.0025
        # overflow (beyond the last bucket) clamps to the last bound
        assert latency.quantile(1.0) == DEFAULT_LATENCY_BUCKETS[-1]

    def test_snapshot_shape_and_helpers(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "Things.", ("op",)).labels(op="a").inc(2)
        registry.histogram("t_seconds", "Lat.").observe(0.01)
        snapshot = registry.snapshot()
        assert sample_value(snapshot, "t_total", {"op": "a"}) == 2
        assert sample_value(snapshot, "t_total") == 2  # sums the series
        assert sample_value(snapshot, "absent", default=-1) == -1
        total, count, buckets = histogram_stats(snapshot, "t_seconds")
        assert (total, count) == (pytest.approx(0.01), 1)
        assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 1
        assert histogram_quantile(snapshot, "t_seconds", 0.5) > 0

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("t_seconds").observe(0.5)
        json.dumps(registry.snapshot())  # must not raise


class TestPrometheusText:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "Count of things.", ("op",)).labels(
            op="query"
        ).inc(3)
        registry.gauge("t_depth", "Depth.").set(2)
        registry.histogram("t_seconds", "Latency.").observe(0.003)
        text = registry.render()
        parsed = parse_prometheus(text)
        assert parsed["types"] == {
            "t_total": "counter",
            "t_depth": "gauge",
            "t_seconds": "histogram",
        }
        assert parsed["helps"]["t_total"] == "Count of things."
        assert parsed["samples"][("t_total", (("op", "query"),))] == 3
        assert parsed["samples"][("t_depth", ())] == 2
        assert parsed["samples"][("t_seconds_count", ())] == 1
        inf_key = ("t_seconds_bucket", (("le", "+Inf"),))
        assert parsed["samples"][inf_key] == 1

    def test_label_escaping_survives(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "", ("sql",))
        family.labels(sql='SELECT "x"\nFROM R\\').inc()
        parsed = parse_prometheus(registry.render())
        (key,) = [k for k in parsed["samples"] if k[0] == "t_total"]
        assert key[1] == (("sql", 'SELECT "x"\nFROM R\\'),)

    def test_malformed_text_raises(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus("what even is this line\n")
        with pytest.raises(ObservabilityError):
            parse_prometheus('t_total{op="unterminated} 1\n')

    def test_empty_family_still_declared(self):
        registry = MetricsRegistry()
        registry.counter("t_errors_total", "Errors.", ("op",))  # no children
        parsed = parse_prometheus(registry.render())
        assert parsed["types"]["t_errors_total"] == "counter"


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

class TestTracing:
    def test_trace_spans_in_order(self):
        trace = Trace(op="query", session="s")
        with trace.span("parse"):
            pass
        with trace.span("evaluate", batch=3):
            pass
        assert [entry.name for entry in trace.spans] == ["parse", "evaluate"]
        assert trace.spans[1].meta == {"batch": 3}
        payload = trace.to_dict()
        assert payload["op"] == "query"
        assert len(payload["trace_id"]) == 16
        assert [s["name"] for s in payload["spans"]] == ["parse", "evaluate"]

    def test_ambient_span_records_on_active_trace(self):
        trace = Trace()
        assert current_trace() is None
        with activate(trace):
            assert current_trace() is trace
            with span("route"):
                pass
        assert current_trace() is None
        assert [entry.name for entry in trace.spans] == ["route"]

    def test_span_is_noop_without_trace(self):
        before = Trace()  # unaffected bystander
        with span("parse"):
            pass
        assert before.spans == []

    def test_trace_ids_distinct_and_hint_masked(self):
        a, b = Trace(), Trace()
        assert a.trace_id != b.trace_id
        assert 0 < a.trace_id < 2**63
        assert a.hint == a.trace_id & 0x7FFFFFFF

    def test_adopted_trace_id(self):
        trace = Trace(trace_id=0xFF)
        assert trace.hex_id == "00000000000000ff"

    def test_ring_bounds_and_snapshots(self):
        ring = TraceRing(capacity=3)
        for _ in range(5):
            ring.record(Trace())
        assert len(ring) == 3
        assert len(ring.snapshot()) == 3
        assert TraceRing(capacity=0).traces() == []


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------

class TestSlowQueryLog:
    def test_disabled_without_threshold(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.maybe_record(duration_s=99.0, sql="SELECT 1")
        assert log.entries() == []

    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert not log.maybe_record(duration_s=0.005, sql="fast")
        assert log.maybe_record(duration_s=0.02, sql="slow")
        (entry,) = log.entries()
        assert entry["sql"] == "slow"
        assert entry["duration_ms"] == pytest.approx(20.0)

    def test_jsonl_file_and_trace_embedding(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_ms=0.0, path=str(path))
        trace = Trace(op="query")
        with trace.span("evaluate"):
            pass
        log.maybe_record(
            duration_s=0.5, sql="SELECT 1", trace=trace, explain="plan",
            cached=False,
        )
        (line,) = path.read_text().splitlines()
        entry = json.loads(line)
        assert entry["explain"] == "plan"
        assert entry["cached"] is False
        assert entry["trace"]["spans"][0]["name"] == "evaluate"

    def test_ring_is_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=4)
        for index in range(10):
            log.maybe_record(duration_s=1.0, sql=f"q{index}")
        assert log.recorded == 10
        assert len(log.entries()) == 4
        assert log.stats()["ring"] == 4


# ----------------------------------------------------------------------
# Binary-header trace hints
# ----------------------------------------------------------------------

class TestTraceHintPacking:
    def test_round_trip(self):
        packed = wire.pack_trace_hint(42, 0x7FFFFFFF)
        assert packed != 42
        assert wire.split_trace_hint(packed) == (42, 0x7FFFFFFF)

    def test_zero_hint_is_identity(self):
        assert wire.pack_trace_hint(42, 0) == 42
        assert wire.split_trace_hint(42) == (42, 0)

    def test_out_of_range_ids_pass_through(self):
        huge = 2**40
        assert wire.pack_trace_hint(huge, 123) == huge
        assert wire.split_trace_hint(-7) == (-7, 0)

    def test_packed_id_fits_signed_i64(self):
        packed = wire.pack_trace_hint(0xFFFFFFFF, 0x7FFFFFFF)
        assert 0 < packed < 2**63


# ----------------------------------------------------------------------
# repro top rendering
# ----------------------------------------------------------------------

class TestRenderTop:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "", ("op",)).labels(
            op="query"
        ).inc(10)
        registry.counter("repro_errors_total", "", ("op",))
        registry.histogram("repro_request_seconds", "", ("op",)).labels(
            op="query"
        ).observe(0.002)
        stage = registry.histogram("repro_stage_seconds", "", ("stage",))
        stage.labels(stage="parse").observe(0.0001)
        stage.labels(stage="evaluate").observe(0.0015)
        return registry.snapshot()

    def test_tables_render(self):
        out = render_top(self._snapshot())
        assert "query" in out
        assert "evaluate" in out
        assert "requests" in out

    def test_qps_from_delta(self):
        first = self._snapshot()
        second = json.loads(json.dumps(first))
        second["repro_requests_total"]["samples"][0]["value"] += 20
        out = render_top(second, previous=first, interval_s=2.0)
        assert "10.0" in out  # 20 requests / 2 s


# ----------------------------------------------------------------------
# Client exception attributes + retry metrics (satellite b)
# ----------------------------------------------------------------------

class TestClientObservability:
    def test_serve_error_surfaces_backpressure_fields(self):
        error = ServeError(
            "saturated", status=503,
            payload={"retry_after": 0.25, "scope": "queue"},
        )
        assert error.retry_after == 0.25
        assert error.scope == "queue"
        bare = ServeError("bad request", status=400, payload={})
        assert bare.retry_after is None and bare.scope is None

    def test_server_busy_attrs(self):
        busy = ServerBusy(
            "busy", retry_after=0.5,
            payload={"retry_after": 0.5, "scope": "client"},
        )
        assert busy.retry_after == 0.5
        assert busy.scope == "client"

    def test_client_counts_busy_and_retries(self, monkeypatch):
        client = ServeClient(port=9, backoff_seed=1)
        busy_envelope = {
            "ok": False, "status": 503, "error": "saturated",
            "retry_after": 0.0, "scope": "queue",
        }
        monkeypatch.setattr(
            client, "connect", lambda: client, raising=False
        )
        monkeypatch.setattr(
            client,
            "_roundtrip_binary",
            lambda op, request_id, fields: dict(busy_envelope),
            raising=False,
        )
        monkeypatch.setattr("time.sleep", lambda _s: None)
        with pytest.raises(ServerBusy) as caught:
            client.query("SELECT COUNT(*) FROM R", retries=2)
        assert caught.value.scope == "queue"
        snapshot = client.metrics.snapshot()
        assert sample_value(
            snapshot, "repro_client_busy_total", {"scope": "queue"}
        ) == 3
        assert sample_value(snapshot, "repro_client_retries_total") == 2
        assert sample_value(
            snapshot, "repro_client_requests_total", {"op": "query"}
        ) == 3


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------

SQL = "SELECT COUNT(*) FROM R WHERE state = 'CA'"


class TestServerObservability:
    @pytest.fixture(scope="class")
    def running(self, summary):
        server = SummaryServer(
            summary, config=ServeConfig(window_ms=1.0, trace_ring=64)
        )
        with ServerThread(server) as thread:
            yield server, thread

    def test_trace_id_in_json_envelope(self, running):
        server, _ = running
        with ServeClient(port=server.port, protocol="json") as client:
            response = client.call("query", sql=SQL)
        assert len(response["trace"]) == 16
        int(response["trace"], 16)  # valid hex

    def test_client_supplied_trace_id_adopted(self, running):
        server, _ = running
        with ServeClient(port=server.port, protocol="json") as client:
            response = client.call("query", sql=SQL, trace="00000000000000ff")
        assert response["trace"] == "00000000000000ff"

    def test_trace_id_on_binary_protocol(self, running):
        server, _ = running
        with ServeClient(port=server.port) as client:
            response = client.call("query", sql=SQL)
        assert len(response["trace"]) == 16

    def test_metrics_op_round_trips(self, running):
        server, _ = running
        with ServeClient(port=server.port) as client:
            client.query(SQL)
            view = client.server_metrics(include_traces=True)
        parsed = parse_prometheus(view["prometheus"])
        declared = set(server.metrics.names())
        assert declared <= set(parsed["types"])
        assert view["snapshot"]["repro_requests_total"]["type"] == "counter"
        assert view["traces"], "ring should hold recent traces"
        spans = {
            s["name"] for t in view["traces"] for s in t["spans"]
        }
        assert {"parse", "canonicalize", "route", "cache_lookup"} <= spans

    def test_stats_single_snapshot_shape(self, running):
        server, _ = running
        with ServeClient(port=server.port) as client:
            client.query(SQL)
            stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["cache"]["hits"] + stats["cache"]["misses"] >= 1
        assert stats["slow_queries"]["enabled"] is False
        assert isinstance(stats["traces"], int)
        assert stats["admission"]["admitted"] >= 1

    def test_stage_histograms_fed(self, running):
        server, _ = running
        with ServeClient(port=server.port) as client:
            client.query(SQL)
        snapshot = server.metrics.snapshot()
        for stage in ("parse", "canonicalize", "route", "cache_lookup",
                      "encode"):
            _, count, _ = histogram_stats(
                snapshot, "repro_stage_seconds", {"stage": stage}
            )
            assert count >= 1, f"stage {stage} never observed"

    def test_unknown_op_counts_as_other(self, running):
        server, _ = running
        before = sample_value(
            server.metrics.snapshot(), "repro_errors_total", {"op": "other"}
        )
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeError):
                client.call("frobnicate")
        after = sample_value(
            server.metrics.snapshot(), "repro_errors_total", {"op": "other"}
        )
        assert after == before + 1


class TestSlowQueryIntegration:
    def test_slow_log_records_with_explain(self, summary, tmp_path):
        path = tmp_path / "slow.jsonl"
        server = SummaryServer(
            summary,
            config=ServeConfig(
                window_ms=1.0, slow_query_ms=0.0, slow_query_log=str(path)
            ),
        )
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                client.query(SQL)
        entries = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert entries, "threshold 0 must record every query"
        entry = entries[0]
        assert entry["sql"] == SQL
        assert entry["explain"]
        assert entry["trace"]["spans"]
        snapshot = server.metrics.snapshot()
        assert sample_value(snapshot, "repro_slow_queries_total") >= 1
        assert server.slow_log.stats()["recorded"] >= 1


class TestCoalescedTracePropagation:
    """Satellite: N same-key requests → one shared evaluate span,
    distinct trace ids, per-request queue-wait spans."""

    def test_shared_evaluate_span(self, summary):
        clients = 4
        server = SummaryServer(
            summary,
            # cache off so every request must coalesce; a wide window
            # so all four land in one flush
            config=ServeConfig(window_ms=60.0, cache_size=0),
        )
        with ServerThread(server):
            barrier = threading.Barrier(clients)
            failures: list[BaseException] = []

            def one_query():
                try:
                    with ServeClient(port=server.port) as client:
                        barrier.wait(timeout=5)
                        client.query(SQL)
                except BaseException as error:  # pragma: no cover
                    failures.append(error)

            threads = [
                threading.Thread(target=one_query) for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15)
        assert not failures
        traces = [t for t in server.traces.traces() if t.op == "query"]
        assert len(traces) == clients
        assert len({t.trace_id for t in traces}) == clients, (
            "every coalesced waiter keeps its own trace id"
        )
        evaluate_ids = set()
        for trace in traces:
            evaluates = [s for s in trace.spans if s.name == "evaluate"]
            waits = [s for s in trace.spans if s.name == "coalesce_wait"]
            assert len(evaluates) == 1, "each trace sees the one evaluation"
            assert len(waits) == 1, "each trace keeps its own queue wait"
            evaluate_ids.add(evaluates[0].span_id)
        assert len(evaluate_ids) == 1, (
            "same-key requests in one flush share one evaluate span"
        )
        assert server.coalescer.coalesced >= clients - 1


class TestChaosMetrics:
    def test_injections_become_labelled_counters(self):
        from repro.chaos import FaultInjector, FaultPlan
        from repro.chaos.faults import FaultSpec
        from repro.errors import InjectedFault

        plan = FaultPlan(
            seed=7, specs=(FaultSpec(hook="server.backend", error=True),)
        )
        injector = FaultInjector(plan).start()
        registry = MetricsRegistry()
        injector.bind_metrics(registry)
        with pytest.raises(InjectedFault):
            injector.act("server.backend")
        snapshot = registry.snapshot()
        assert sample_value(
            snapshot, "repro_chaos_calls_total", {"hook": "server.backend"}
        ) == 1
        assert sample_value(
            snapshot,
            "repro_chaos_injections_total",
            {"hook": "server.backend", "fault": "error"},
        ) == 1
        # the dict-shaped stats() report is unchanged
        stats = injector.stats()
        assert stats["calls"]["server.backend"] == 1
        assert stats["total_injected"] == 1
