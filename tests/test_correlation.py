"""Unit tests for repro.stats.correlation."""

import numpy as np
import pytest

from repro.data.domain import integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.stats.correlation import (
    chi_squared,
    cramers_v,
    is_nearly_uniform_pair,
    pair_correlations,
)


class TestChiSquared:
    def test_independent_table_is_zero(self):
        # Perfectly proportional rows -> expected == observed.
        table = np.array([[10, 20], [20, 40]])
        assert chi_squared(table) == pytest.approx(0.0)

    def test_known_value(self):
        table = np.array([[10, 0], [0, 10]])
        # chi2 = n for a perfect 2x2 association.
        assert chi_squared(table) == pytest.approx(20.0)

    def test_empty_table(self):
        assert chi_squared(np.zeros((3, 3))) == 0.0

    def test_empty_rows_ignored(self):
        table = np.array([[10, 0], [0, 10], [0, 0]])
        assert chi_squared(table) == pytest.approx(20.0)


class TestCramersV:
    def test_perfect_association(self):
        table = np.diag([50, 50, 50])
        assert cramers_v(table, bias_corrected=False) == pytest.approx(1.0)

    def test_independence_raw(self):
        table = np.outer([30, 70], [40, 60])
        assert cramers_v(table, bias_corrected=False) == pytest.approx(0.0)

    def test_bias_correction_kills_noise(self, rng):
        # Independent uniform draws over a wide table: raw V is inflated
        # by chance, corrected V should be near zero.
        rows = rng.integers(0, 50, size=2000)
        cols = rng.integers(0, 30, size=2000)
        table = np.zeros((50, 30))
        np.add.at(table, (rows, cols), 1)
        raw = cramers_v(table, bias_corrected=False)
        corrected = cramers_v(table)
        assert corrected < raw
        assert corrected < 0.05

    def test_range(self, rng):
        table = rng.integers(0, 20, size=(6, 7)).astype(float)
        value = cramers_v(table)
        assert 0.0 <= value <= 1.0

    def test_degenerate_single_row(self):
        assert cramers_v(np.array([[5, 5, 5]])) == 0.0

    def test_empty(self):
        assert cramers_v(np.zeros((2, 2))) == 0.0


class TestPairCorrelations:
    def _correlated_relation(self):
        schema = Schema(
            [integer_domain("x", 4), integer_domain("y", 4), integer_domain("z", 4)]
        )
        rng = np.random.default_rng(0)
        x = rng.integers(0, 4, 3000)
        y = x.copy()  # y perfectly tracks x
        z = rng.integers(0, 4, 3000)  # independent
        return Relation(schema, [x, y, z])

    def test_ranking(self):
        relation = self._correlated_relation()
        ranked = pair_correlations(relation)
        assert ranked[0][0] == (0, 1)
        assert ranked[0][1] > 0.9
        assert all(score < 0.1 for pair, score in ranked[1:])

    def test_subset_restriction(self):
        relation = self._correlated_relation()
        ranked = pair_correlations(relation, attrs=["x", "z"])
        assert [pair for pair, _ in ranked] == [(0, 2)]

    def test_sorted_descending(self):
        relation = self._correlated_relation()
        scores = [score for _, score in pair_correlations(relation)]
        assert scores == sorted(scores, reverse=True)


class TestUniformPair:
    def test_uniform_detected(self, rng):
        rows = rng.integers(0, 10, size=5000)
        cols = rng.integers(0, 10, size=5000)
        table = np.zeros((10, 10))
        np.add.at(table, (rows, cols), 1)
        assert is_nearly_uniform_pair(table)

    def test_correlated_not_uniform(self):
        table = np.diag([100] * 5).astype(float)
        assert not is_nearly_uniform_pair(table)
