"""Tests for the query planner: canonical predicates, routing, the
shared batched executor, and cross-surface equivalence.

The acceptance properties of the planner refactor:

* equivalent query texts produce identical ``CanonicalPredicate`` keys
  and identical answers on exact, summary, and sharded backends;
* contradictory predicates answer ``0`` without invoking any backend;
* ``explain()`` shows the normalize → route → execute stages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Explorer
from repro.baselines.exact import ExactBackend
from repro.core.sharding import ShardedSummary, partition_relation
from repro.core.summary import EntropySummary
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.plan import (
    CanonicalPredicate,
    Planner,
    canonicalize_conditions,
    canonicalize_conjunction,
)
from repro.plan.canonical import EMPTY_KEY
from repro.query.ast import Condition
from repro.query.parser import parse_query
from repro.stats.predicates import Conjunction, RangePredicate, SetPredicate

HOURS = 8


@pytest.fixture(scope="module")
def relation():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", HOURS)]
    )
    rng = np.random.default_rng(11)
    states = rng.choice(3, size=400, p=[0.5, 0.3, 0.2])
    hours = rng.integers(0, HOURS, 400)
    return Relation(schema, [states, hours])


@pytest.fixture(scope="module")
def schema(relation):
    return relation.schema


@pytest.fixture(scope="module")
def summary(relation):
    return EntropySummary.build(
        relation,
        pairs=[("state", "hour")],
        per_pair_budget=6,
        max_iterations=40,
    )


@pytest.fixture(scope="module")
def sharded(relation):
    partition = partition_relation(relation, 2, by="hour")
    return ShardedSummary.fit_partitions(
        partition, max_iterations=40, name="sharded", workers=1
    )


@pytest.fixture(scope="module")
def sessions(relation, summary, sharded):
    return {
        "exact": Explorer.attach(relation),
        "summary": Explorer.attach(summary),
        "sharded": Explorer.attach(sharded),
    }


#: Pairs of equivalent query texts — each pair must normalize to one
#: canonical key and return identical answers on every backend.
EQUIVALENT_TEXTS = [
    (
        "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6",
        "SELECT COUNT(*) FROM R WHERE hour >= 3 AND hour <= 6",
    ),
    (
        "SELECT COUNT(*) FROM R WHERE state = 'CA' AND hour = 2",
        "SELECT COUNT(*) FROM R WHERE hour = 2 AND state = 'CA'",
    ),
    (
        "SELECT COUNT(*) FROM R WHERE state IN ('CA', 'NY')",
        "SELECT COUNT(*) FROM R WHERE state IN ('NY', 'CA', 'CA')",
    ),
    (
        "SELECT COUNT(*) FROM R WHERE hour >= 2 AND hour >= 0",
        "SELECT COUNT(*) FROM R WHERE hour >= 2",
    ),
    (
        "SELECT COUNT(*) FROM R WHERE hour != 0",
        "SELECT COUNT(*) FROM R WHERE hour >= 1",
    ),
    (
        "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 3",
        "SELECT COUNT(*) FROM R WHERE hour = 3",
    ),
    (
        "SELECT COUNT(*) FROM R WHERE state IN ('CA', 'NY', 'WA')",
        "SELECT COUNT(*) FROM R",
    ),
]

CONTRADICTIONS = [
    "SELECT COUNT(*) FROM R WHERE hour >= 5 AND hour <= 2",
    "SELECT COUNT(*) FROM R WHERE state = 'CA' AND state = 'NY'",
    "SELECT COUNT(*) FROM R WHERE state = 'ZZ'",
    "SELECT COUNT(*) FROM R WHERE hour = 99",
    "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6 AND hour = 7",
]


def canonical_of(schema, text) -> CanonicalPredicate:
    return canonicalize_conditions(schema, parse_query(text).conditions)


class TestCanonicalKeys:
    @pytest.mark.parametrize("left,right", EQUIVALENT_TEXTS)
    def test_equivalent_texts_share_one_key(self, schema, left, right):
        assert canonical_of(schema, left).key == canonical_of(schema, right).key

    def test_different_predicates_differ(self, schema):
        keys = {
            canonical_of(
                schema, f"SELECT COUNT(*) FROM R WHERE hour = {value}"
            ).key
            for value in range(HOURS)
        }
        assert len(keys) == HOURS

    @pytest.mark.parametrize("text", CONTRADICTIONS)
    def test_contradictions_share_the_empty_key(self, schema, text):
        canonical = canonical_of(schema, text)
        assert canonical.is_empty
        assert canonical.key == EMPTY_KEY

    def test_trivial_predicate(self, schema):
        canonical = canonical_of(schema, "SELECT COUNT(*) FROM R")
        assert canonical.is_trivial
        assert canonical.key == ()

    def test_canonical_is_hashable_and_eq(self, schema):
        a = canonical_of(schema, "SELECT COUNT(*) FROM R WHERE hour >= 3 AND hour <= 6")
        b = canonical_of(schema, "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6")
        assert a == b
        assert hash(a) == hash(b)

    def test_conjunction_canonicalization_matches_sql(self, schema):
        # A contiguous SetPredicate and the matching RangePredicate
        # collapse to one canonical form.
        from_set = canonicalize_conjunction(
            Conjunction(schema, {"hour": SetPredicate([3, 4, 5, 6])})
        )
        from_range = canonicalize_conjunction(
            Conjunction(schema, {"hour": RangePredicate(3, 6)})
        )
        sql = canonical_of(
            schema, "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6"
        )
        assert from_set.key == from_range.key == sql.key

    @settings(max_examples=40, deadline=None)
    @given(
        low=st.integers(min_value=0, max_value=HOURS - 1),
        high=st.integers(min_value=0, max_value=HOURS - 1),
    )
    def test_between_equals_bounds_pair_property(self, schema, low, high):
        """Property: BETWEEN l AND h ≡ (hour >= l AND hour <= h) for
        every bound pair; reversed bounds via two comparisons are a
        contradiction (BETWEEN itself rejects them at parse time)."""
        split = canonicalize_conditions(
            schema,
            [Condition("hour", ">=", [low]), Condition("hour", "<=", [high])],
        )
        if low > high:
            assert split.is_empty
            return
        between = canonicalize_conditions(
            schema, [Condition("hour", "between", [low, high])]
        )
        assert between.key == split.key
        assert not split.is_empty

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=HOURS - 1),
            min_size=1,
            max_size=6,
        ),
        seed=st.randoms(use_true_random=False),
    )
    def test_in_list_order_and_duplicates_property(self, schema, values, seed):
        """Property: IN lists canonicalize independently of order and
        multiplicity."""
        shuffled = list(values)
        seed.shuffle(shuffled)
        original = canonicalize_conditions(
            schema, [Condition("hour", "in", values)]
        )
        doubled = canonicalize_conditions(
            schema, [Condition("hour", "in", shuffled + shuffled)]
        )
        assert original.key == doubled.key


class TestIdenticalAnswers:
    @pytest.mark.parametrize("left,right", EQUIVALENT_TEXTS)
    def test_equivalent_texts_identical_answers(self, sessions, left, right):
        for explorer in sessions.values():
            assert explorer.count(left) == explorer.count(right)

    def test_exact_answers_match_ground_truth(self, sessions, relation):
        hours = relation.column("hour")
        expected = int(((hours >= 3) & (hours <= 6)).sum())
        for text in EQUIVALENT_TEXTS[0]:
            assert sessions["exact"].count(text) == expected

    @pytest.mark.parametrize("text", CONTRADICTIONS)
    def test_contradictions_answer_zero_everywhere(self, sessions, text):
        for explorer in sessions.values():
            assert explorer.count(text) == 0.0

    def test_four_surfaces_one_canonical_key(self, relation, summary):
        """Explorer.run, Explorer.sql, the fluent builder, and the
        harness's conjunctions all normalize to one key."""
        explorer = Explorer.attach(summary)
        sql_plan = explorer.plan(
            "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6"
        )
        fluent_plan = explorer.plan(
            explorer.query().where(hour__between=(3, 6))
        )
        conjunction_plan = explorer.planner.plan_conjunction(
            Conjunction(relation.schema, {"hour": RangePredicate(3, 6)})
        )
        assert (
            sql_plan.predicate.key
            == fluent_plan.predicate.key
            == conjunction_plan.predicate.key
        )
        assert (
            explorer.sql("SELECT COUNT(*) FROM R WHERE hour >= 3 AND hour <= 6").scalar
            == explorer.query().where(hour__between=(3, 6)).value()
            == explorer.count(
                Conjunction(relation.schema, {"hour": RangePredicate(3, 6)})
            )
        )


class _SpyBackend(ExactBackend):
    """Exact backend that counts how often the model is invoked."""

    def __init__(self, relation):
        super().__init__(relation)
        self.calls = 0

    def count(self, predicate):
        self.calls += 1
        return super().count(predicate)

    def group_counts(self, attrs, predicate):
        self.calls += 1
        return super().group_counts(attrs, predicate)

    def sum_values(self, attr, weights, predicate):
        self.calls += 1
        return super().sum_values(attr, weights, predicate)


class TestContradictionShortCircuit:
    def test_no_backend_invocation(self, relation):
        backend = _SpyBackend(relation)
        explorer = Explorer.attach(backend)
        for text in CONTRADICTIONS:
            assert explorer.count(text) == 0.0
        assert backend.calls == 0

    def test_grouped_contradiction_returns_no_rows(self, relation):
        backend = _SpyBackend(relation)
        explorer = Explorer.attach(backend)
        result = explorer.sql(
            "SELECT state, COUNT(*) FROM R WHERE hour >= 5 AND hour <= 2 "
            "GROUP BY state"
        )
        assert result.rows == []
        assert backend.calls == 0

    def test_avg_over_contradiction_fails_cleanly(self, relation):
        backend = _SpyBackend(relation)
        explorer = Explorer.attach(backend)
        with pytest.raises(QueryError, match="AVG undefined"):
            explorer.sql("SELECT AVG(hour) FROM R WHERE hour = 99")
        assert backend.calls == 0

    def test_sum_over_contradiction_is_zero(self, relation):
        backend = _SpyBackend(relation)
        explorer = Explorer.attach(backend)
        assert explorer.sql(
            "SELECT SUM(hour) FROM R WHERE hour = 99"
        ).scalar == 0.0
        assert backend.calls == 0

    def test_batched_contradictions_skip_backend(self, relation):
        backend = _SpyBackend(relation)
        explorer = Explorer.attach(backend)
        results = explorer.run_many(CONTRADICTIONS)
        assert [result.scalar for result in results] == [0.0] * len(
            CONTRADICTIONS
        )
        assert backend.calls == 0


class TestResultCacheAcrossVariants:
    def test_variant_texts_hit_one_cache_entry(self, summary):
        explorer = Explorer.attach(summary)
        first = explorer.sql("SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6")
        second = explorer.sql(
            "SELECT COUNT(*) FROM R WHERE hour >= 3 AND hour <= 6"
        )
        assert second is first  # one canonical key → one cache entry
        assert explorer.cache_info()["results"]["hits"] == 1

    def test_run_many_dedupes_equivalent_queries(self, relation):
        backend = _SpyBackend(relation)
        explorer = Explorer.attach(backend)
        results = explorer.run_many(
            [
                "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6",
                "SELECT COUNT(*) FROM R WHERE hour >= 3 AND hour <= 6",
                "SELECT COUNT(*) FROM R WHERE hour <= 6 AND hour >= 3",
            ]
        )
        assert len({result.scalar for result in results}) == 1
        assert backend.calls == 1


class TestRouting:
    def test_exact_route(self, relation):
        plan = Explorer.attach(relation).plan(
            "SELECT COUNT(*) FROM R WHERE hour = 3"
        )
        assert plan.route.target == "exact"
        assert plan.route.cost == relation.num_rows

    def test_summary_route_costs_terms(self, summary):
        plan = Explorer.attach(summary).plan(
            "SELECT COUNT(*) FROM R WHERE hour = 3"
        )
        assert plan.route.target == "summary"
        assert plan.route.cost == summary.polynomial.num_terms
        assert plan.route.batched

    def test_sharded_route_prunes(self, sharded):
        explorer = Explorer.attach(sharded)
        # The 2 shards split hour's domain into two contiguous ranges;
        # a point query on hour can only live in one of them.
        plan = explorer.plan("SELECT COUNT(*) FROM R WHERE hour = 0")
        assert plan.route.target == "sharded"
        assert len(plan.route.detail["live_shards"]) == 1
        assert len(plan.route.detail["pruned_shards"]) == 1
        unconstrained = explorer.plan("SELECT COUNT(*) FROM R")
        assert len(unconstrained.route.detail["live_shards"]) == 2

    def test_contradiction_routes_nowhere(self, summary):
        plan = Explorer.attach(summary).plan(
            "SELECT COUNT(*) FROM R WHERE hour = 99"
        )
        assert plan.route.target == "none"

    def test_live_shards_matches_merge_math(self, sharded, relation):
        hours = relation.column("hour")
        for hour in range(HOURS):
            predicate = Conjunction(
                relation.schema, {"hour": RangePredicate.point(hour)}
            )
            live = sharded.live_shards(predicate)
            assert len(live) == 1
            merged = sharded.estimate(predicate)
            expected = int((hours == hour).sum())
            assert merged.expectation == pytest.approx(
                expected, rel=0.25, abs=8
            )


class TestExplain:
    def test_stages_present(self, summary):
        text = Explorer.attach(summary).explain(
            "SELECT COUNT(*) FROM R WHERE hour BETWEEN 3 AND 6"
        )
        assert "normalize:" in text
        assert "route:" in text
        assert "execute:" in text
        assert "ScalarCount" in text

    def test_contradiction_explain(self, relation):
        text = Explorer.attach(relation).explain(
            "SELECT COUNT(*) FROM R WHERE hour >= 5 AND hour <= 2"
        )
        assert "contradiction" in text
        assert "O(1)" in text

    def test_sharded_explain_shows_pruning(self, sharded):
        text = Explorer.attach(sharded).explain(
            "SELECT COUNT(*) FROM R WHERE hour = 0"
        )
        assert "1 pruned" in text

    def test_grouped_explain(self, relation):
        text = Explorer.attach(relation).explain(
            "SELECT state, COUNT(*) FROM R GROUP BY state"
        )
        assert "GroupBy" in text

    def test_engine_explain_matches_explorer(self, relation):
        from repro.query.engine import SQLEngine

        sql = "SELECT COUNT(*) FROM R WHERE hour = 3"
        engine = SQLEngine(ExactBackend(relation))
        assert engine.explain(sql) == Explorer.attach(relation).explain(sql)


class TestPlannerDirect:
    def test_plan_conjunction_trivial(self, relation):
        planner = Planner(ExactBackend(relation))
        plan = planner.plan_conjunction(None)
        assert plan.predicate.is_trivial
        assert planner.execute(plan).scalar == relation.num_rows

    def test_merged_range_intersection(self, schema):
        canonical = canonicalize_conditions(
            schema,
            [
                Condition("hour", ">=", [2]),
                Condition("hour", "<=", [5]),
                Condition("hour", "!=", [5]),
            ],
        )
        assert canonical.key == (
            (1, ("range", 2, 4)),
        )

    def test_empty_conjunction_roundtrip_raises(self, schema):
        canonical = canonicalize_conditions(
            schema, [Condition("hour", ">=", [5]), Condition("hour", "<=", [2])]
        )
        with pytest.raises(QueryError, match="contradictory"):
            canonical.to_conjunction()

    def test_compile_still_strict_for_contradictions(self, relation):
        from repro.query.engine import SQLEngine

        engine = SQLEngine(ExactBackend(relation))
        query = parse_query(
            "SELECT COUNT(*) FROM R WHERE hour >= 5 AND hour <= 2"
        )
        with pytest.raises(QueryError, match="contradiction"):
            engine.compile(query)
        # ... while execute() short-circuits the same query to 0.
        assert engine.execute(query).scalar == 0.0
