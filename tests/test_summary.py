"""Tests for EntropySummary: build, query, persist."""

import numpy as np
import pytest

from repro.core.summary import EntropySummary
from repro.data.binning import Bucket, EquiWidthBinner
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.stats.predicates import Conjunction, RangePredicate


@pytest.fixture
def relation():
    schema = Schema(
        [
            Domain("state", ["CA", "NY", "WA"]),
            integer_domain("hour", 6),
            Domain("kind", [("a", "x"), ("a", "Other"), ("b", "y")]),
        ]
    )
    rng = np.random.default_rng(77)
    rows = rng.integers(0, [3, 6, 3], size=(500, 3))
    return Relation.from_index_rows(schema, rows)


@pytest.fixture
def summary(relation):
    return EntropySummary.build(
        relation,
        pairs=[("state", "hour")],
        per_pair_budget=6,
        max_iterations=60,
        name="test",
    )


class TestBuild:
    def test_no2d_build(self, relation):
        summary = EntropySummary.build(relation, max_iterations=30)
        assert summary.statistic_set.num_multi_dim == 0
        assert summary.total == 500

    def test_build_with_pairs(self, summary):
        assert summary.statistic_set.num_multi_dim > 0
        assert summary.report is not None
        assert summary.report.final_error < 0.01

    def test_automatic_selection(self, relation):
        summary = EntropySummary.build(
            relation, budget=8, num_pairs=2, max_iterations=20
        )
        assert summary.total == 500

    def test_count_matches_one_dim_stats(self, summary, relation):
        for index, label in enumerate(["CA", "NY", "WA"]):
            estimate = summary.count_labels({"state": label})
            true = relation.marginal("state")[index]
            assert estimate.expectation == pytest.approx(true, abs=0.1)


class TestQuerying:
    def test_count_range(self, summary, relation):
        predicate = Conjunction(relation.schema, {"hour": RangePredicate(0, 2)})
        estimate = summary.count(predicate)
        true = relation.count_where(predicate.attribute_masks())
        assert estimate.expectation == pytest.approx(true, abs=0.5)

    def test_group_by_labels(self, summary, relation):
        grouped = summary.group_by(["state"])
        assert set(grouped) == {("CA",), ("NY",), ("WA",)}
        for (label,), estimate in grouped.items():
            index = relation.schema.domain("state").index_of(label)
            assert estimate.expectation == pytest.approx(
                relation.marginal("state")[index], abs=0.1
            )

    def test_group_by_sums_to_total(self, summary):
        grouped = summary.group_by(["kind", "state"])
        total = sum(e.expectation for e in grouped.values())
        assert total == pytest.approx(summary.total, rel=1e-9)

    def test_size_report(self, summary):
        report = summary.size_report()
        assert report["total_bytes"] > 0
        assert report["num_terms"] >= 1
        assert report["num_uncompressed_monomials"] == 3 * 6 * 3


class TestPersistence:
    def test_save_load_round_trip(self, summary, relation, tmp_path):
        prefix = tmp_path / "model"
        summary.save(prefix)
        loaded = EntropySummary.load(prefix)
        assert loaded.total == summary.total
        assert loaded.schema == summary.schema
        predicate = Conjunction(
            relation.schema,
            {"state": RangePredicate.point(0), "hour": RangePredicate(1, 4)},
        )
        assert loaded.count(predicate).expectation == pytest.approx(
            summary.count(predicate).expectation, rel=1e-12
        )

    def test_save_load_preserves_statistics(self, summary, tmp_path):
        prefix = tmp_path / "model"
        summary.save(prefix)
        loaded = EntropySummary.load(prefix)
        assert loaded.statistic_set.num_multi_dim == (
            summary.statistic_set.num_multi_dim
        )
        for original, restored in zip(
            summary.statistic_set.multi_dim, loaded.statistic_set.multi_dim
        ):
            assert original.value == restored.value
            assert original.positions == restored.positions

    def test_bucket_labels_survive(self, tmp_path):
        binner = EquiWidthBinner("x", 0.0, 10.0, 4)
        schema = Schema([binner.domain, integer_domain("y", 3)])
        rng = np.random.default_rng(5)
        relation = Relation(
            schema,
            [rng.integers(0, 4, 100), rng.integers(0, 3, 100)],
        )
        summary = EntropySummary.build(relation, max_iterations=20)
        summary.save(tmp_path / "buckets")
        loaded = EntropySummary.load(tmp_path / "buckets")
        labels = loaded.schema.domain("x").labels
        assert all(isinstance(label, Bucket) for label in labels)
        assert labels == binner.domain.labels

    def test_tuple_labels_survive(self, summary, tmp_path):
        summary.save(tmp_path / "tuples")
        loaded = EntropySummary.load(tmp_path / "tuples")
        assert loaded.schema.domain("kind").labels == [
            ("a", "x"), ("a", "Other"), ("b", "y"),
        ]
