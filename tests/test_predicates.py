"""Unit tests for repro.stats.predicates."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.domain import integer_domain
from repro.data.schema import Schema
from repro.errors import StatisticError
from repro.stats.predicates import (
    TRUE,
    Conjunction,
    RangePredicate,
    SetPredicate,
    TruePredicate,
    conjunction_from_masks,
)


@pytest.fixture
def schema():
    return Schema([integer_domain("a", 5), integer_domain("b", 4)])


class TestTruePredicate:
    def test_mask_all_ones(self):
        assert TRUE.mask(4).all()

    def test_matches_everything(self):
        assert TRUE.matches(0) and TRUE.matches(100)

    def test_is_true_flag(self):
        assert TRUE.is_true
        assert not RangePredicate(0, 1).is_true


class TestRangePredicate:
    def test_mask(self):
        assert RangePredicate(1, 3).mask(5).tolist() == [
            False, True, True, True, False,
        ]

    def test_point(self):
        predicate = RangePredicate.point(2)
        assert predicate.is_point
        assert predicate.mask(4).tolist() == [False, False, True, False]

    def test_matches(self):
        predicate = RangePredicate(1, 3)
        assert predicate.matches(1) and predicate.matches(3)
        assert not predicate.matches(0) and not predicate.matches(4)

    def test_intersect(self):
        assert RangePredicate(0, 3).intersect(RangePredicate(2, 5)) == (
            RangePredicate(2, 3)
        )
        assert RangePredicate(0, 1).intersect(RangePredicate(3, 4)) is None

    def test_contains_range(self):
        assert RangePredicate(0, 5).contains_range(RangePredicate(2, 3))
        assert not RangePredicate(2, 3).contains_range(RangePredicate(0, 5))

    def test_width(self):
        assert RangePredicate(2, 2).width() == 1
        assert RangePredicate(0, 4).width() == 5

    def test_empty_range_rejected(self):
        with pytest.raises(StatisticError):
            RangePredicate(3, 2)

    def test_negative_rejected(self):
        with pytest.raises(StatisticError):
            RangePredicate(-1, 2)

    @given(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9), st.integers(0, 9))
    def test_intersect_agrees_with_masks(self, a, b, c, d):
        low1, high1 = min(a, b), max(a, b)
        low2, high2 = min(c, d), max(c, d)
        first = RangePredicate(low1, high1)
        second = RangePredicate(low2, high2)
        expected = first.mask(10) & second.mask(10)
        result = first.intersect(second)
        if result is None:
            assert not expected.any()
        else:
            assert np.array_equal(result.mask(10), expected)


class TestSetPredicate:
    def test_mask(self):
        assert SetPredicate([0, 2]).mask(4).tolist() == [True, False, True, False]

    def test_matches(self):
        predicate = SetPredicate([1, 3])
        assert predicate.matches(3)
        assert not predicate.matches(2)

    def test_empty_rejected(self):
        with pytest.raises(StatisticError):
            SetPredicate([])


class TestConjunction:
    def test_constrained_positions(self, schema):
        conjunction = Conjunction(schema, {"b": RangePredicate(0, 1)})
        assert conjunction.constrained_positions == [1]
        assert conjunction.predicate_at(0).is_true

    def test_true_predicates_dropped(self, schema):
        conjunction = Conjunction(schema, {"a": TruePredicate()})
        assert conjunction.is_trivial()

    def test_matches_tuple(self, schema):
        conjunction = Conjunction(
            schema,
            {"a": RangePredicate(1, 2), "b": SetPredicate([0, 3])},
        )
        assert conjunction.matches_tuple((1, 0))
        assert conjunction.matches_tuple((2, 3))
        assert not conjunction.matches_tuple((0, 0))
        assert not conjunction.matches_tuple((1, 1))

    def test_attribute_masks(self, schema):
        conjunction = Conjunction(schema, {"a": RangePredicate(0, 0)})
        masks = conjunction.attribute_masks()
        assert list(masks) == [0]
        assert masks[0].tolist() == [True, False, False, False, False]

    def test_non_predicate_rejected(self, schema):
        with pytest.raises(StatisticError, match="must be a Predicate"):
            Conjunction(schema, {"a": 5})

    def test_equality(self, schema):
        first = Conjunction(schema, {"a": RangePredicate(1, 2)})
        second = Conjunction(schema, {0: RangePredicate(1, 2)})
        assert first == second
        assert hash(first) == hash(second)


class TestConjunctionFromMasks:
    def test_full_mask_dropped(self, schema):
        conjunction = conjunction_from_masks(schema, {"a": np.ones(5, dtype=bool)})
        assert conjunction.is_trivial()

    def test_contiguous_mask_becomes_range(self, schema):
        mask = np.array([False, True, True, False, False])
        conjunction = conjunction_from_masks(schema, {"a": mask})
        assert conjunction.predicate_at(0) == RangePredicate(1, 2)

    def test_scattered_mask_becomes_set(self, schema):
        mask = np.array([True, False, True, False, False])
        conjunction = conjunction_from_masks(schema, {"a": mask})
        assert conjunction.predicate_at(0) == SetPredicate([0, 2])

    def test_empty_mask_rejected(self, schema):
        with pytest.raises(StatisticError, match="selects nothing"):
            conjunction_from_masks(schema, {"a": np.zeros(5, dtype=bool)})

    @given(st.lists(st.booleans(), min_size=1, max_size=8).filter(any))
    def test_mask_round_trip(self, bits):
        schema = Schema([integer_domain("x", len(bits))])
        mask = np.array(bits)
        conjunction = conjunction_from_masks(schema, {"x": mask})
        rebuilt = conjunction.predicate_at(0).mask(len(bits))
        assert np.array_equal(rebuilt, mask)
