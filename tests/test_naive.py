"""Unit tests for the naive (uncompressed) polynomial oracle."""

import numpy as np
import pytest

from repro.core.naive import NaivePolynomial
from repro.core.variables import ModelParameters


class TestNaivePolynomial:
    def test_monomial_count(self, small_statistics):
        naive = NaivePolynomial(small_statistics)
        assert naive.num_monomials == 60

    def test_uniform_evaluation(self, small_statistics):
        naive = NaivePolynomial(small_statistics)
        params = ModelParameters(
            [np.ones(size) for size in naive.sizes],
            np.ones(naive.num_deltas),
        )
        assert naive.evaluate(params) == pytest.approx(60.0)

    def test_membership_matches_predicates(self, small_statistics):
        naive = NaivePolynomial(small_statistics)
        for stat_id, statistic in enumerate(small_statistics.multi_dim):
            for row in range(naive.num_monomials):
                indices = tuple(naive.tuple_indices[row])
                expected = statistic.predicate.matches_tuple(indices)
                assert naive.membership[row, stat_id] == expected

    def test_tuple_probabilities_sum_to_one(self, small_statistics, rng):
        naive = NaivePolynomial(small_statistics)
        params = ModelParameters(
            [rng.random(size) + 0.1 for size in naive.sizes],
            rng.random(naive.num_deltas) + 0.1,
        )
        probabilities = naive.tuple_probabilities(params)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities >= 0).all()

    def test_expected_count_unmasked_is_n(self, small_statistics, rng):
        naive = NaivePolynomial(small_statistics)
        params = ModelParameters(
            [rng.random(size) + 0.1 for size in naive.sizes],
            rng.random(naive.num_deltas) + 0.1,
        )
        assert naive.expected_count(params, 400) == pytest.approx(400.0)

    def test_expected_count_monotone_in_mask(self, small_statistics, rng):
        naive = NaivePolynomial(small_statistics)
        params = ModelParameters(
            [rng.random(size) + 0.1 for size in naive.sizes],
            rng.random(naive.num_deltas) + 0.1,
        )
        narrow = {0: np.array([True, False, False, False])}
        wide = {0: np.array([True, True, True, False])}
        assert naive.expected_count(params, 100, narrow) <= naive.expected_count(
            params, 100, wide
        )

    def test_gradient_finite_difference(self, small_statistics, rng):
        naive = NaivePolynomial(small_statistics)
        params = ModelParameters(
            [rng.random(size) + 0.5 for size in naive.sizes],
            rng.random(naive.num_deltas) + 0.5,
        )
        epsilon = 1e-6
        gradient = naive.attribute_gradient(params, 1)
        for index in range(naive.sizes[1]):
            saved = params.alphas[1][index]
            params.alphas[1][index] = saved + epsilon
            up = naive.evaluate(params)
            params.alphas[1][index] = saved - epsilon
            down = naive.evaluate(params)
            params.alphas[1][index] = saved
            assert gradient[index] == pytest.approx(
                (up - down) / (2 * epsilon), rel=1e-4
            )

    def test_delta_gradient_finite_difference(self, small_statistics, rng):
        naive = NaivePolynomial(small_statistics)
        params = ModelParameters(
            [rng.random(size) + 0.5 for size in naive.sizes],
            rng.random(naive.num_deltas) + 0.5,
        )
        epsilon = 1e-6
        for stat_id in range(naive.num_deltas):
            gradient = naive.delta_gradient(params, stat_id)
            saved = params.deltas[stat_id]
            params.deltas[stat_id] = saved + epsilon
            up = naive.evaluate(params)
            params.deltas[stat_id] = saved - epsilon
            down = naive.evaluate(params)
            params.deltas[stat_id] = saved
            assert gradient == pytest.approx((up - down) / (2 * epsilon), rel=1e-4)
