"""Tests for the ingest subsystem: append → delta refit → publish →
hot reload.

Unit pieces (batches, routing, refit math) run on tiny synthetic
relations; the serving-side tests boot a real watcher-enabled
:class:`SummaryServer` and verify the whole freshness loop — including
the acceptance demo: ``repro ingest`` against a served store flips live
clients to the new version with zero dropped requests.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import SummaryBuilder, SummaryStore
from repro.cli import main
from repro.core.summary import EntropySummary, pad_parameters
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import IngestError, ReproError
from repro.ingest import AppendBatch, IngestPipeline, delta_refresh, widen_schema
from repro.serve import ServeClient, ServeConfig, ServerThread, SummaryServer
from repro.stats.predicates import Conjunction, RangePredicate


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

def _schema() -> Schema:
    return Schema(
        [Domain("state", ["CA", "NY", "WA", "TX"]), integer_domain("hour", 8)]
    )


def _relation(rows: int = 1200, seed: int = 5) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation(
        _schema(),
        [
            rng.choice(4, size=rows, p=[0.4, 0.3, 0.2, 0.1]),
            rng.integers(0, 8, rows),
        ],
    )


def _fit(relation, **shard_kwargs):
    builder = (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(16)
        .iterations(30)
        .name("demo")
    )
    if shard_kwargs:
        builder.shards(workers=1, **shard_kwargs)
    return builder.fit()


def _count(summary, schema, **constraints) -> float:
    predicate = Conjunction(
        schema,
        {attr: RangePredicate.point(index) for attr, index in constraints.items()},
    )
    if isinstance(summary, EntropySummary):
        return summary.count(predicate).expectation
    return summary.estimate(predicate).expectation


# ----------------------------------------------------------------------
# AppendBatch
# ----------------------------------------------------------------------

class TestAppendBatch:
    def test_from_rows_in_domain(self):
        batch = AppendBatch.from_rows(
            _schema(), [("CA", 0), ("TX", 7), ("CA", 3)]
        )
        assert batch.num_rows == 3
        assert not batch.grows_domains
        assert batch.schema == _schema()
        assert batch.relation.column("state").tolist() == [0, 3, 0]

    def test_from_rows_wrong_arity(self):
        with pytest.raises(IngestError, match="2 attributes"):
            AppendBatch.from_rows(_schema(), [("CA",)])

    def test_from_rows_domain_growth(self):
        batch = AppendBatch.from_rows(
            _schema(), [("OR", 1), ("CA", 2), ("OR", 3)]
        )
        assert batch.grows_domains
        assert batch.new_labels == {"state": ["OR"]}
        assert batch.schema.domain("state").labels == [
            "CA", "NY", "WA", "TX", "OR",
        ]
        # New label got the next free index; old indices are untouched.
        assert batch.relation.column("state").tolist() == [4, 0, 4]

    def test_from_relation_reindexes_labels(self):
        # Same labels, different order: indices must be remapped.
        other_schema = Schema(
            [Domain("state", ["TX", "CA", "NY", "WA"]), integer_domain("hour", 8)]
        )
        other = Relation(other_schema, [np.array([0, 1]), np.array([2, 4])])
        batch = AppendBatch.from_relation(_schema(), other)
        assert not batch.grows_domains
        assert batch.relation.column("state").tolist() == [3, 0]  # TX, CA
        assert batch.relation.column("hour").tolist() == [2, 4]

    def test_from_relation_attribute_mismatch(self):
        other = Relation(
            Schema([Domain("region", ["CA"]), integer_domain("hour", 8)]),
            [np.array([0]), np.array([0])],
        )
        with pytest.raises(IngestError, match="attributes"):
            AppendBatch.from_relation(_schema(), other)

    def test_widen_schema_noop_when_nothing_new(self):
        schema = _schema()
        assert widen_schema(schema, {}) is schema
        assert widen_schema(schema, {0: []}) is schema


# ----------------------------------------------------------------------
# Core refit primitives
# ----------------------------------------------------------------------

class TestRefit:
    def test_refit_reuses_structure_and_warm_starts(self):
        relation = _relation()
        summary = _fit(relation)
        extra = _relation(rows=150, seed=9)
        combined = Relation(
            relation.schema,
            [
                np.concatenate([relation.column(pos), extra.column(pos)])
                for pos in range(2)
            ],
        )
        warm = summary.refit(combined)
        assert warm.total == combined.num_rows
        assert warm.report.warm_started
        assert warm.num_statistics == summary.num_statistics
        cold = summary.refit(combined, warm_start=False)
        assert not cold.report.warm_started
        # Same statistics, same model: answers agree tightly.
        for state in range(4):
            assert _count(warm, relation.schema, state=state) == pytest.approx(
                _count(cold, relation.schema, state=state), rel=0.01, abs=0.5
            )

    def test_refit_appended_equals_full_remeasure(self):
        """The O(batch) additive update is exactly the O(shard)
        re-measure: identical statistics in, identical solve out."""
        relation = _relation()
        summary = _fit(relation)
        extra = _relation(rows=90, seed=13)
        combined = Relation.concat([relation, extra])
        additive = summary.refit_appended(extra)
        full = summary.refit(combined)
        assert additive.total == full.total == combined.num_rows
        assert additive.statistic_set.one_dim == full.statistic_set.one_dim
        for mine, theirs in zip(
            additive.statistic_set.multi_dim, full.statistic_set.multi_dim
        ):
            assert mine.value == theirs.value
            assert mine.predicate == theirs.predicate
        for pos in range(2):
            assert np.array_equal(
                additive.params.alphas[pos], full.params.alphas[pos]
            )
        assert np.array_equal(additive.params.deltas, full.params.deltas)

    def test_refit_rejects_non_widening_schema(self):
        relation = _relation()
        summary = _fit(relation)
        reordered = Schema(
            [Domain("state", ["NY", "CA", "WA", "TX"]), integer_domain("hour", 8)]
        )
        with pytest.raises(ReproError, match="keep their indices"):
            summary.refit(Relation(reordered, [relation.column(0), relation.column(1)]))

    def test_migrated_is_exact(self):
        relation = _relation()
        summary = _fit(relation)
        wide = Schema(
            [Domain("state", ["CA", "NY", "WA", "TX", "OR"]), integer_domain("hour", 8)]
        )
        migrated = summary.migrated(wide)
        assert migrated.schema == wide
        for state in range(4):
            assert _count(migrated, wide, state=state) == pytest.approx(
                _count(summary, relation.schema, state=state), abs=1e-9
            )
        # The value that did not exist yet answers exactly zero.
        assert _count(migrated, wide, state=4) == 0.0
        # Same schema: migrated() is the identity.
        assert summary.migrated(relation.schema) is summary

    def test_pad_parameters_shapes(self):
        relation = _relation()
        summary = _fit(relation)
        wide = Schema(
            [Domain("state", ["CA", "NY", "WA", "TX", "OR"]), integer_domain("hour", 8)]
        )
        padded = pad_parameters(summary.params, relation.schema, wide)
        assert padded.alphas[0].shape[0] == 5
        assert padded.alphas[0][4] == 0.0
        assert np.array_equal(padded.alphas[1], summary.params.alphas[1])


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

class TestPipeline:
    def test_base_relation_must_match(self):
        relation = _relation()
        summary = _fit(relation)
        with pytest.raises(IngestError, match="fitted over"):
            IngestPipeline(summary, _relation(rows=900))

    def test_round_robin_rejects_reordered_base_relation(self):
        """Positional splitting cannot detect a reordered relation by
        row counts alone; the marginal fingerprint must catch it."""
        relation = _relation()
        sharded = _fit(relation, count=3)
        order = np.argsort(relation.column(0), kind="stable")
        reordered = relation.sample_rows(order)
        with pytest.raises(IngestError, match="original row order"):
            IngestPipeline(sharded, reordered)
        # The faithful relation still splits cleanly.
        assert IngestPipeline(sharded, relation).total == relation.num_rows

    def test_unsharded_append(self):
        relation = _relation()
        summary = _fit(relation)
        report = delta_refresh(summary, relation, [("CA", 0)] * 60)
        assert report.rows_appended == 60
        assert report.shards_refit == (0,)
        assert report.summary.total == relation.num_rows + 60
        exact = relation.count_where({"state": RangePredicate.point(0).mask(4)}) + 60
        assert _count(report.summary, relation.schema, state=0) == pytest.approx(
            exact, rel=0.02, abs=1.0
        )

    def test_ranged_append_refits_only_touched_shard(self):
        relation = _relation()
        sharded = _fit(relation, count=2, by="hour")
        pipeline = IngestPipeline(sharded, relation)
        low, high = sharded.owned_ranges[0]
        report = pipeline.append([("CA", low), ("NY", high)] * 30)
        assert report.shards_refit == (0,)
        refreshed = report.summary
        # The untouched shard model is the same object, not a refit.
        assert refreshed.shards[1] is sharded.shards[1]
        assert refreshed.total == relation.num_rows + 60
        # Merged-estimate invariant: shard counts add up to the total.
        merged = refreshed.estimate(None)
        assert merged.expectation == pytest.approx(refreshed.total, rel=0.01)

    def test_round_robin_append_rebalances(self):
        relation = _relation()
        sharded = _fit(relation, count=3)
        pipeline = IngestPipeline(sharded, relation)
        sizes_before = [rel.num_rows for rel in pipeline._shard_relations]
        report = pipeline.append([("TX", 2)] * 7)
        sizes_after = [rel.num_rows for rel in pipeline._shard_relations]
        assert sum(sizes_after) == sum(sizes_before) + 7
        assert max(sizes_after) - min(sizes_after) <= 1
        assert len(report.shards_refit) == 3

    def test_round_robin_relation_round_trips(self):
        """The documented --write-data loop: saving pipeline.relation
        and re-opening a pipeline on it must reconstruct each shard's
        exact rows (not just matching row counts)."""
        relation = _relation(rows=1201)  # uneven: shard sizes differ
        sharded = _fit(relation, count=3)
        pipeline = IngestPipeline(sharded, relation)
        pipeline.append([("TX", 2), ("CA", 5), ("NY", 1)] * 4)
        refreshed = pipeline.summary
        combined = pipeline.relation
        reopened = IngestPipeline(refreshed, combined)
        for mine, theirs in zip(
            pipeline._shard_relations, reopened._shard_relations
        ):
            for pos in range(combined.schema.num_attributes):
                assert np.array_equal(mine.column(pos), theirs.column(pos))
        # And the reopened pipeline keeps working.
        report = reopened.append([("WA", 0)] * 5)
        assert report.summary.total == combined.num_rows + 5

    def test_empty_batch_is_a_noop_version_wise(self, tmp_path):
        relation = _relation()
        summary = _fit(relation, count=2, by="hour")
        store = SummaryStore(tmp_path / "models")
        store.save(summary, "demo")
        pipeline = IngestPipeline.from_store(store, "demo", relation)
        report = pipeline.append([])
        assert report.rows_appended == 0
        assert report.shards_refit == ()
        assert report.record is None
        # The pipeline's summary object is untouched — no refit happened.
        assert report.summary is pipeline.summary
        assert store.latest_version("demo") == 1
        # And an empty batch normalized from an empty relation too.
        empty = AppendBatch.empty(relation.schema)
        assert pipeline.append(empty).record is None
        assert store.latest_version("demo") == 1

    def test_domain_growth_on_plain_attribute(self):
        relation = _relation()
        sharded = _fit(relation, count=2, by="hour")
        pipeline = IngestPipeline(sharded, relation)
        before = {
            state: _count(sharded, relation.schema, state=state)
            for state in range(4)
        }
        report = pipeline.append([("OR", 0), ("OR", 1)])
        assert report.domain_growth
        refreshed = report.summary
        wide = refreshed.schema
        assert wide.domain("state").size == 5
        assert _count(refreshed, wide, state=4) == pytest.approx(2.0, abs=0.1)
        # Old answers moved only by the two appended rows' influence.
        for state in range(4):
            assert _count(refreshed, wide, state=state) == pytest.approx(
                before[state], rel=0.05, abs=1.5
            )

    def test_domain_growth_on_shard_attribute_widens_top_range(self):
        relation = _relation()
        sharded = _fit(relation, count=2, by="hour")
        pipeline = IngestPipeline(sharded, relation)
        report = pipeline.append([("CA", 8), ("CA", 9)])  # hours 8, 9 are new
        refreshed = report.summary
        assert refreshed.schema.domain("hour").size == 10
        top = refreshed.owned_ranges[-1]
        assert top[1] == 9
        # The new values routed to the top shard; only it was refit.
        assert report.shards_refit == (1,)
        assert _count(refreshed, refreshed.schema, hour=9) == pytest.approx(
            1.0, abs=0.1
        )
        # Pruning still exact: a query on the new hour skips shard 0.
        predicate = Conjunction(
            refreshed.schema, {"hour": RangePredicate.point(9)}
        )
        assert refreshed.live_shards(predicate) == [1]

    def test_lineage_chain_in_store(self, tmp_path):
        relation = _relation()
        summary = _fit(relation, count=2, by="hour")
        store = SummaryStore(tmp_path / "models")
        store.save(summary, "demo", tag="seed")
        pipeline = IngestPipeline.from_store(store, "demo", relation)
        first = pipeline.append([("CA", 0)] * 10, tag="fresh")
        second = pipeline.append([("NY", 7)] * 5)
        assert first.record.version == 2
        assert first.record.tag == "fresh"
        assert first.lineage["parent_version"] == 1
        assert first.lineage["rows_appended"] == 10
        assert second.record.version == 3
        assert second.record.parent_version == 2
        records = store.versions("demo")
        assert [record.parent_version for record in records] == [None, 1, 2]
        assert "+5 rows" in records[-1].describe()
        # The published model round-trips with the appended rows.
        reloaded = store.load("demo")
        assert reloaded.total == relation.num_rows + 15

    def test_parent_version_not_claimed_for_mismatched_summary(self, tmp_path):
        """A summary that is not the store's latest version must not
        label its children as refreshed from it."""
        relation = _relation()
        summary = _fit(relation, count=2, by="hour")
        store = SummaryStore(tmp_path / "models")
        store.save(summary, "demo")  # v1 — matches `summary`
        bigger = Relation(
            relation.schema,
            [
                np.concatenate([relation.column(pos), relation.column(pos)[:50]])
                for pos in range(2)
            ],
        )
        store.save(_fit(bigger, count=2, by="hour"), "demo")  # v2 — different
        # A summary that *is* the latest version gets claimed as parent.
        latest_pipeline = IngestPipeline(
            store.load("demo"), bigger, store=store, name="demo"
        )
        assert latest_pipeline.parent_version == 2
        # Direct constructor with the *v1* summary: latest (v2) does not
        # match it, so lineage must not claim v2 as parent.
        pipeline = IngestPipeline(
            summary, relation, store=store, name="demo"
        )
        assert pipeline.parent_version is None
        report = pipeline.append([("CA", 0)] * 5)
        assert report.lineage["parent_version"] is None

    def test_builder_append_chains(self):
        relation = _relation()
        builder = (
            SummaryBuilder(relation)
            .pairs(("state", "hour"))
            .per_pair_budget(16)
            .iterations(30)
            .name("demo")
        )
        summary = builder.fit()
        report = builder.append(summary, [("WA", 3)] * 20)
        assert report.summary.total == relation.num_rows + 20
        # The builder's relation advanced: a second append chains.
        second = builder.append(report.summary, [("WA", 4)] * 10)
        assert second.summary.total == relation.num_rows + 30


# ----------------------------------------------------------------------
# Serving: the freshness loop
# ----------------------------------------------------------------------

class TestServingFreshness:
    @pytest.fixture()
    def served_store(self, tmp_path):
        relation = _relation(rows=600, seed=11)
        summary = _fit(relation, count=2, by="hour")
        store = SummaryStore(tmp_path / "models")
        store.save(summary, "demo")
        return store, relation

    def test_watch_requires_store(self):
        summary = _fit(_relation(rows=400))
        with pytest.raises(ReproError, match="--watch"):
            SummaryServer(summary, config=ServeConfig(watch_interval=0.05))

    def test_watch_interval_validated(self):
        with pytest.raises(ReproError, match="--watch"):
            ServeConfig(watch_interval=-1).validated()

    def test_watcher_flips_to_published_version(self, served_store):
        store, relation = served_store
        server = SummaryServer(
            store=store,
            name="demo",
            config=ServeConfig(watch_interval=0.05, window_ms=0.5),
        )
        pipeline = IngestPipeline.from_store(store, "demo", relation)
        with ServerThread(server):
            with ServeClient(port=server.port) as client:
                assert client.ping() == {"version": 1}
                pipeline.append([("CA", 0)] * 25)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if client.ping()["version"] == 2:
                        break
                    time.sleep(0.02)
                assert client.ping() == {"version": 2}
                stats = client.stats()
        assert server.reloads == 1
        assert stats["watcher"]["reloads"] == 1
        assert stats["watcher"]["last_seen_version"] == 2

    def test_watcher_respects_operator_rollback(self, served_store):
        """Pinning an older version via reload(version=...) must stick:
        the watcher acts only when the store moves beyond the newest
        version it has seen, never to re-apply one it already acted on."""
        import asyncio

        from repro.serve.watcher import StoreWatcher

        store, relation = served_store
        IngestPipeline.from_store(store, "demo", relation).append(
            [("CA", 0)] * 10
        )  # v2 exists before the server starts
        server = SummaryServer(store=store, name="demo", config=ServeConfig())
        assert server.version == 2  # latest by default
        watcher = StoreWatcher(server, interval=0.01)

        async def drive():
            assert await watcher.check_once() is False  # nothing newer
            server.reload(version=1)  # operator rolls back
            # The watcher has already seen v2: the rollback must stick.
            assert await watcher.check_once() is False
            assert server.version == 1
            return True

        assert asyncio.run(drive())
        assert watcher.reloads == 0

    def test_watcher_survives_unexpected_errors(self, served_store):
        """A poll failure of any kind is counted and swallowed — the
        watcher must keep polling, or the server serves stale data
        forever."""
        import asyncio

        from repro.serve.watcher import StoreWatcher

        store, relation = served_store
        server = SummaryServer(store=store, name="demo", config=ServeConfig())
        watcher = StoreWatcher(server, interval=0.01)
        calls = {"count": 0}
        real_latest = watcher._latest_version

        def flaky():
            calls["count"] += 1
            if calls["count"] == 1:
                raise OSError("manifest read hiccup")  # not a ReproError
            return real_latest()

        watcher._latest_version = flaky

        async def drive():
            assert await watcher.check_once() is False  # swallowed
            IngestPipeline.from_store(store, "demo", relation).append(
                [("CA", 0)] * 10
            )
            return await watcher.check_once()  # next poll still works

        assert asyncio.run(drive()) is True
        assert watcher.errors == 1
        assert watcher.reloads == 1
        assert server.version == 2

    def test_live_traffic_ingest_demo(self, served_store, tmp_path):
        """Acceptance: `repro ingest` against a served store flips
        clients to the new version with zero dropped requests, and
        in-flight answers stay on the generation they started on."""
        store, relation = served_store
        data_prefix = tmp_path / "base"
        batch_prefix = tmp_path / "batch"
        from repro.data.serialize import save_relation

        save_relation(relation, data_prefix)
        save_relation(_relation(rows=80, seed=23), batch_prefix)

        server = SummaryServer(
            store=store,
            name="demo",
            config=ServeConfig(watch_interval=0.05, window_ms=0.5),
        )
        stop = threading.Event()
        errors: list[BaseException] = []
        versions_seen = set()
        answered = [0]

        def chatter(index: int) -> None:
            try:
                with ServeClient(port=server.port) as client:
                    step = 0
                    while not stop.is_set():
                        response = client.call(
                            "query",
                            sql="SELECT COUNT(*) FROM R WHERE hour = "
                            f"{(index + step) % 8}",
                        )
                        assert response["ok"]
                        # Every answer names the generation it ran on —
                        # only published store versions, never a torn
                        # in-between state.
                        versions_seen.add(response["version"])
                        answered[0] += 1
                        step += 1
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)

        with ServerThread(server):
            threads = [
                threading.Thread(target=chatter, args=(index,))
                for index in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)
            code = main(
                [
                    "ingest",
                    "--store", str(store.root),
                    "--name", "demo",
                    "--data", str(data_prefix),
                    "--batch", str(batch_prefix),
                ]
            )
            assert code == 0
            deadline = time.monotonic() + 5.0
            with ServeClient(port=server.port) as probe:
                while time.monotonic() < deadline:
                    if probe.ping()["version"] == 2:
                        break
                    time.sleep(0.02)
                assert probe.ping() == {"version": 2}
            time.sleep(0.15)  # traffic on the new version too
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors, errors[0]
        assert answered[0] > 0
        assert versions_seen <= {1, 2}
        assert 2 in versions_seen

    def test_cli_ingest_writes_combined_data(self, served_store, tmp_path, capsys):
        store, relation = served_store
        from repro.data.serialize import load_relation, save_relation

        data_prefix = tmp_path / "base"
        batch_prefix = tmp_path / "batch"
        combined_prefix = tmp_path / "combined"
        save_relation(relation, data_prefix)
        save_relation(_relation(rows=40, seed=29), batch_prefix)
        code = main(
            [
                "ingest",
                "--store", str(store.root),
                "--name", "demo",
                "--data", str(data_prefix),
                "--batch", str(batch_prefix),
                "--tag", "fresh",
                "--write-data", str(combined_prefix),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "+40 rows" in out
        assert "v2" in out
        combined = load_relation(combined_prefix)
        assert combined.num_rows == relation.num_rows + 40
        record = store.record("demo")
        assert record.version == 2
        assert record.tag == "fresh"
        assert record.lineage["rows_appended"] == 40

    def test_cli_ingest_rejects_bad_iterations(self, served_store, tmp_path, capsys):
        store, relation = served_store
        from repro.data.serialize import save_relation

        save_relation(relation, tmp_path / "base")
        save_relation(_relation(rows=5, seed=2), tmp_path / "batch")
        code = main(
            [
                "ingest",
                "--store", str(store.root),
                "--name", "demo",
                "--data", str(tmp_path / "base"),
                "--batch", str(tmp_path / "batch"),
                "--iterations", "0",
            ]
        )
        assert code == 1
        assert "--iterations" in capsys.readouterr().err
