"""Test suite package (keeps ``tests.conftest`` imports unambiguous)."""
