"""Tests for label resolution and the LinearQuery formalism."""

import numpy as np
import pytest

from repro.data.binning import EquiWidthBinner
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.query.ast import Condition
from repro.query.linear import (
    LinearQuery,
    condition_mask,
    conjunction_from_conditions,
)
from repro.stats.predicates import RangePredicate, SetPredicate


@pytest.fixture
def schema():
    binner = EquiWidthBinner("dist", 0.0, 100.0, 5)
    return Schema(
        [
            Domain("state", ["CA", "NY", "WA"]),
            binner.domain,
            Domain("city", [("CA", "LA"), ("CA", "Other"), ("NY", "NYC")]),
            integer_domain("day", 4),
        ]
    )


class TestConditionMask:
    def test_equality_label(self, schema):
        mask = condition_mask(schema.domain("state"), Condition("state", "=", ["NY"]))
        assert mask.tolist() == [False, True, False]

    def test_equality_numeric_bucket(self, schema):
        mask = condition_mask(schema.domain("dist"), Condition("dist", "=", [37]))
        assert mask.tolist() == [False, True, False, False, False]

    def test_equality_tuple_label_via_slash(self, schema):
        mask = condition_mask(schema.domain("city"), Condition("city", "=", ["CA/LA"]))
        assert mask.tolist() == [True, False, False]

    def test_unknown_value_raises(self, schema):
        with pytest.raises(QueryError, match="not in the active domain"):
            condition_mask(schema.domain("state"), Condition("state", "=", ["TX"]))

    def test_not_equal(self, schema):
        mask = condition_mask(schema.domain("state"), Condition("state", "!=", ["NY"]))
        assert mask.tolist() == [True, False, True]

    def test_in_list(self, schema):
        mask = condition_mask(
            schema.domain("state"), Condition("state", "in", ["CA", "WA"])
        )
        assert mask.tolist() == [True, False, True]

    def test_between_integers(self, schema):
        mask = condition_mask(schema.domain("day"), Condition("day", "between", [1, 2]))
        assert mask.tolist() == [False, True, True, False]

    def test_between_buckets_overlap_semantics(self, schema):
        # [30, 70] overlaps buckets [20,40), [40,60), [60,80).
        mask = condition_mask(
            schema.domain("dist"), Condition("dist", "between", [30, 70])
        )
        assert mask.tolist() == [False, True, True, True, False]

    def test_comparison_on_integers(self, schema):
        mask = condition_mask(schema.domain("day"), Condition("day", "<", [2]))
        assert mask.tolist() == [True, True, False, False]
        mask = condition_mask(schema.domain("day"), Condition("day", ">=", [2]))
        assert mask.tolist() == [False, False, True, True]

    def test_comparison_on_buckets(self, schema):
        mask = condition_mask(schema.domain("dist"), Condition("dist", "<", [25]))
        assert mask.tolist() == [True, True, False, False, False]
        mask = condition_mask(schema.domain("dist"), Condition("dist", ">", [75]))
        assert mask.tolist() == [False, False, False, True, True]

    def test_incomparable_types(self, schema):
        with pytest.raises(QueryError, match="cannot compare"):
            condition_mask(schema.domain("city"), Condition("city", "<", [5]))

    def test_empty_between_raises(self, schema):
        with pytest.raises(QueryError, match="selects no value"):
            condition_mask(schema.domain("day"), Condition("day", "between", [10, 20]))


class TestConjunctionFromConditions:
    def test_builds_tightest_predicates(self, schema):
        conjunction = conjunction_from_conditions(
            schema,
            [
                Condition("state", "=", ["CA"]),
                Condition("day", "between", [1, 3]),
                Condition("dist", "in", [5, 85]),
            ],
        )
        assert conjunction.predicate_at(0) == RangePredicate.point(0)
        assert conjunction.predicate_at(3) == RangePredicate(1, 3)
        assert conjunction.predicate_at(1) == SetPredicate([0, 4])

    def test_empty_conditions(self, schema):
        conjunction = conjunction_from_conditions(schema, [])
        assert conjunction.is_trivial()


class TestLinearQuery:
    @pytest.fixture
    def small(self):
        return Schema([integer_domain("a", 2), integer_domain("b", 3)])

    def test_counting_query_answer(self, small):
        relation = Relation.from_rows(small, [(0, 0), (0, 1), (1, 2), (0, 0)])
        from repro.stats.predicates import Conjunction

        predicate = Conjunction(small, {"a": RangePredicate.point(0)})
        query = LinearQuery.from_conjunction(small, predicate)
        assert query.is_counting_query()
        assert query.answer(relation) == 3.0

    def test_answer_equals_relation_count(self, small, rng):
        from repro.stats.predicates import Conjunction

        relation = Relation(
            small, [rng.integers(0, 2, 100), rng.integers(0, 3, 100)]
        )
        predicate = Conjunction(
            small,
            {"a": RangePredicate.point(1), "b": RangePredicate(0, 1)},
        )
        query = LinearQuery.from_conjunction(small, predicate)
        assert query.answer(relation) == relation.count_where(
            predicate.attribute_masks()
        )

    def test_linearity(self, small):
        from repro.stats.predicates import Conjunction

        relation = Relation.from_rows(small, [(0, 0), (1, 1), (1, 2)])
        q1 = LinearQuery.from_conjunction(
            small, Conjunction(small, {"a": RangePredicate.point(0)})
        )
        q2 = LinearQuery.from_conjunction(
            small, Conjunction(small, {"a": RangePredicate.point(1)})
        )
        combined = q1 + q2
        assert combined.answer(relation) == relation.num_rows
        scaled = 2.0 * q1
        assert scaled.answer(relation) == 2.0 * q1.answer(relation)

    def test_wrong_vector_length(self, small):
        with pytest.raises(QueryError):
            LinearQuery(small, np.ones(5))

    def test_schema_mismatch(self, small):
        other = Schema([integer_domain("a", 2), integer_domain("b", 2)])
        relation = Relation.from_rows(other, [(0, 0)])
        query = LinearQuery(small, np.ones(6))
        with pytest.raises(QueryError):
            query.answer(relation)
