"""Tests for possible-world sampling (Sec 2.1 semantics)."""

import numpy as np
import pytest

from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import solve_statistics
from repro.core.worlds import (
    empirical_query_distribution,
    sample_world,
    sample_world_sequential,
)


@pytest.fixture(scope="module")
def fitted_model():
    import numpy as np

    from repro.data.domain import integer_domain
    from repro.data.relation import Relation
    from repro.data.schema import Schema
    from repro.stats.statistic import StatisticSet, range_statistic_2d

    schema = Schema(
        [integer_domain("A", 4), integer_domain("B", 5), integer_domain("C", 3)]
    )
    generator = np.random.default_rng(1234)
    columns = []
    for size in schema.sizes():
        weights = 1.0 / (np.arange(size) + 1.0)
        weights /= weights.sum()
        columns.append(generator.choice(size, size=400, p=weights))
    relation = Relation(schema, columns)

    def count(masks):
        return float(relation.count_where(masks))

    stat = range_statistic_2d(
        schema, "A", (0, 1), "B", (0, 2),
        count({
            "A": np.array([True, True, False, False]),
            "B": np.array([True, True, True, False, False]),
        }),
    )
    statistic_set = StatisticSet.from_relation(relation, [stat])
    poly = CompressedPolynomial(statistic_set)
    params, _ = solve_statistics(poly, max_iterations=200)
    return statistic_set, poly, params


class TestDirectSampling:
    def test_cardinality(self, fitted_model):
        statistic_set, _, params = fitted_model
        world = sample_world(statistic_set, params, rng=0)
        assert world.num_rows == statistic_set.total

    def test_custom_cardinality(self, fitted_model):
        statistic_set, _, params = fitted_model
        world = sample_world(statistic_set, params, rng=0, num_rows=50)
        assert world.num_rows == 50

    def test_deterministic_with_seed(self, fitted_model):
        statistic_set, _, params = fitted_model
        first = sample_world(statistic_set, params, rng=7)
        second = sample_world(statistic_set, params, rng=7)
        assert np.array_equal(first.column(0), second.column(0))

    def test_marginals_close_to_statistics(self, fitted_model):
        statistic_set, _, params = fitted_model
        # Average marginals over worlds approach the 1D statistics.
        totals = np.zeros(4)
        num_worlds = 40
        for seed in range(num_worlds):
            world = sample_world(statistic_set, params, rng=seed)
            totals += world.marginal(0)
        totals /= num_worlds
        expected = np.asarray(statistic_set.one_dim[0])
        np.testing.assert_allclose(totals, expected, rtol=0.12, atol=6)


class TestSequentialSampling:
    def test_cardinality_and_schema(self, fitted_model):
        statistic_set, poly, params = fitted_model
        world = sample_world_sequential(poly, params, rng=0)
        assert world.num_rows == statistic_set.total
        assert world.schema == statistic_set.schema

    def test_distribution_matches_direct(self, fitted_model):
        statistic_set, poly, params = fitted_model
        # Compare attribute marginals between the two samplers over
        # several worlds — they draw from the same distribution.
        direct = np.zeros(5)
        sequential = np.zeros(5)
        for seed in range(25):
            direct += sample_world(statistic_set, params, rng=seed).marginal(1)
            sequential += sample_world_sequential(
                poly, params, rng=1000 + seed
            ).marginal(1)
        direct /= direct.sum()
        sequential /= sequential.sum()
        np.testing.assert_allclose(direct, sequential, atol=0.03)

    def test_respects_zero_alphas(self, fitted_model):
        statistic_set, poly, params = fitted_model
        pinned = params.copy()
        pinned.alphas[2][1] = 0.0
        world = sample_world_sequential(poly, pinned, rng=3)
        assert (world.column(2) != 1).all()


class TestEmpiricalDistribution:
    def test_matches_closed_form_moments(self, fitted_model):
        statistic_set, poly, params = fitted_model
        from repro.core.inference import InferenceEngine

        engine = InferenceEngine(poly, params, statistic_set.total)
        masks = {0: np.array([True, True, False, False])}
        estimate = engine.estimate_masks(masks)
        answers = empirical_query_distribution(
            statistic_set, params, masks, num_worlds=4000, rng=5
        )
        assert answers.mean() == pytest.approx(estimate.expectation, rel=0.05)
        assert answers.var() == pytest.approx(estimate.variance, rel=0.25)
