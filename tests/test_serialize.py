"""Tests for domain/schema/relation serialization."""

import numpy as np
import pytest

from repro.data.binning import Bucket
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.data.serialize import (
    decode_label,
    decode_schema,
    encode_label,
    encode_schema,
    load_relation,
    save_relation,
)
from repro.errors import ReproError


class TestLabels:
    @pytest.mark.parametrize(
        "label",
        [
            5,
            -3,
            2.75,
            "CA",
            True,
            Bucket(0.0, 10.0),
            Bucket(5.0, 7.5, closed_right=True),
            ("WA", "Seattle"),
            ("WA", ("nested", 3)),
        ],
    )
    def test_round_trip(self, label):
        assert decode_label(encode_label(label)) == label

    def test_numpy_scalars(self):
        assert decode_label(encode_label(np.int64(7))) == 7
        assert decode_label(encode_label(np.float64(1.5))) == 1.5

    def test_unserializable(self):
        with pytest.raises(ReproError):
            encode_label(object())

    def test_unknown_tag(self):
        with pytest.raises(ReproError):
            decode_label({"t": "widget", "v": 1})


class TestSchema:
    def test_round_trip(self):
        schema = Schema(
            [
                Domain("state", ["CA", "NY"]),
                Domain("bucketed", [Bucket(0, 1), Bucket(1, 2, True)]),
                integer_domain("day", 3),
            ]
        )
        assert decode_schema(encode_schema(schema)) == schema


class TestRelation:
    def test_round_trip(self, tmp_path):
        schema = Schema([Domain("s", ["x", "y"]), integer_domain("v", 4)])
        rng = np.random.default_rng(0)
        relation = Relation(
            schema, [rng.integers(0, 2, 50), rng.integers(0, 4, 50)]
        )
        save_relation(relation, tmp_path / "rel")
        loaded = load_relation(tmp_path / "rel")
        assert loaded.schema == relation.schema
        for pos in range(2):
            assert np.array_equal(loaded.column(pos), relation.column(pos))

    def test_empty_relation(self, tmp_path):
        schema = Schema([integer_domain("v", 4)])
        relation = Relation.from_rows(schema, [])
        save_relation(relation, tmp_path / "empty")
        assert load_relation(tmp_path / "empty").num_rows == 0
