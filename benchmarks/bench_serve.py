"""Serving-layer acceptance: coalescing + shared cache vs naive serving.

The serving subsystem's performance claim: on a **repeated-workload
mix** — the dashboard shape: 8+ concurrent clients, few distinct
questions, heavy on GROUP BY and SUM/AVG (the query shapes the model
engine cannot memoize internally) — the server with request coalescing
and the shared TTL result cache sustains **at least 2x** the
throughput of the same server with both turned off, because

* same-canonical-key requests inside one ~2 ms window are answered by
  one execution instead of one per client,
* distinct queries inside a window flush through the planner's batched
  executor as one vectorized pass,
* within the TTL, repeats across *all* clients and sessions are served
  from the cache without touching the backend at all.

Results append to ``BENCH_serve.json`` (p50/p95 latency, QPS, cache
hit rate for both modes) via the shared emitter, giving the repo a
perf trajectory.  ``test_serve_smoke`` is the CI gate: boot on a tiny
summary, fire 50 concurrent requests, assert zero errors and a warm
cache.

Scale via ``REPRO_SCALE`` (``paper`` default, ``small`` for CI).
"""

import numpy as np

from benchmarks._emit import BenchReport
from repro.api import SummaryBuilder
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.experiments.configs import active_scale
from repro.obs import histogram_quantile, histogram_stats
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerThread,
    SummaryServer,
    run_load,
)

REPORT = BenchReport("serve")

CLIENTS = 8

#: The repeated-workload mix: scalar counts (with syntactic variants
#: that must share one canonical key), model-side GROUP BYs, and
#: SUM/AVG aggregates — every shape the serving paper-pitch covers.
WORKLOAD = [
    "SELECT COUNT(*) FROM R WHERE origin_state = 'CA'",
    "SELECT COUNT(*) FROM R WHERE fl_date BETWEEN 40 AND 90",
    "SELECT COUNT(*) FROM R WHERE fl_date >= 40 AND fl_date <= 90",
    "SELECT COUNT(*) FROM R GROUP BY origin_state",
    "SELECT COUNT(*) FROM R WHERE fl_date >= 100 GROUP BY dest_state",
    "SELECT SUM(distance) FROM R WHERE origin_state = 'CA'",
    "SELECT AVG(distance) FROM R WHERE dest_state = 'NY'",
    "SELECT COUNT(*) FROM R GROUP BY dest_state ORDER BY cnt DESC LIMIT 5",
    "SELECT SUM(distance) FROM R WHERE dest_state = 'TX'",
    "SELECT COUNT(*) FROM R WHERE origin_state = 'WA' AND fl_date >= 60",
]


def _drive(summary, config: ServeConfig, requests_per_client: int):
    server = SummaryServer(summary, config=config)
    with ServerThread(server):
        return run_load(
            server.host,
            server.port,
            WORKLOAD,
            clients=CLIENTS,
            requests_per_client=requests_per_client,
        )


def test_coalescing_throughput_speedup(store):
    """Acceptance: coalescing + shared cache >= 2x naive serving."""
    summary = store.flights_summary("Ent1&2&3", "coarse")
    requests = 40 if active_scale().name == "small" else 80

    naive = _drive(
        summary,
        ServeConfig(coalesce=False, cache_size=0),
        requests,
    )
    coalesced = _drive(
        summary,
        ServeConfig(window_ms=2.0),
        requests,
    )

    speedup = coalesced.qps / naive.qps
    print(f"\ncoalescing off: {naive.describe()}")
    print(f"coalescing on:  {coalesced.describe()}")
    print(f"throughput speedup: {speedup:.2f}x")
    REPORT.record(
        {
            "clients": CLIENTS,
            "requests_per_client": requests,
            "workload_queries": len(WORKLOAD),
            "qps_coalesced": round(coalesced.qps, 1),
            "qps_uncoalesced": round(naive.qps, 1),
            "p50_ms_coalesced": round(coalesced.p50_ms, 3),
            "p95_ms_coalesced": round(coalesced.p95_ms, 3),
            "p50_ms_uncoalesced": round(naive.p50_ms, 3),
            "p95_ms_uncoalesced": round(naive.p95_ms, 3),
            "cache_hit_rate": round(coalesced.cache_hit_rate, 4),
            "errors": coalesced.errors + naive.errors,
            "speedup": round(speedup, 2),
        },
        thresholds=[
            ("speedup", ">=", 2.0),
            ("cache_hit_rate", ">", 0.0),
            ("errors", "==", 0),
        ],
    )
    assert naive.errors == 0 and coalesced.errors == 0
    assert coalesced.cache_hit_rate > 0.5, (
        f"repeated workload should mostly hit the shared cache, got "
        f"{coalesced.cache_hit_rate:.0%}"
    )
    assert speedup >= 2.0, (
        f"coalescing+cache speedup {speedup:.2f}x < 2x "
        f"({coalesced.qps:.0f} vs {naive.qps:.0f} q/s)"
    )


#: The traced serving stages, in pipeline order (encode is excluded
#: from the coverage ratio below: it happens after the dispatch window
#: that ``repro_request_seconds`` measures).
STAGES = (
    "parse",
    "canonicalize",
    "route",
    "cache_lookup",
    "coalesce_wait",
    "evaluate",
    "encode",
)


def _tiny_summary():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(3)
    relation = Relation(
        schema,
        [rng.choice(3, size=400, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, 400)],
    )
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(40)
        .name("serve-smoke")
        .fit()
    )


def test_stage_breakdown():
    """Per-stage latency attribution: the trace spans folded into
    ``repro_stage_seconds`` must account for the measured end-to-end
    time — otherwise a future regression could hide in untraced code.

    Runs with the result cache off so every request crosses every
    stage (plan → cache miss → coalesce → evaluate); the coverage
    ratio compares per-stage totals to the dispatch-latency histogram
    over the same requests.
    """
    summary = _tiny_summary()
    workload = [
        "SELECT COUNT(*) FROM R WHERE state = 'CA'",
        "SELECT COUNT(*) FROM R WHERE hour BETWEEN 1 AND 2",
        "SELECT COUNT(*) FROM R GROUP BY state",
        "SELECT SUM(hour) FROM R WHERE state = 'NY'",
    ]
    server = SummaryServer(
        summary, config=ServeConfig(window_ms=2.0, cache_size=0)
    )
    with ServerThread(server):
        report = run_load(
            server.host,
            server.port,
            workload,
            clients=4,
            requests_per_client=25,
        )
        with ServeClient(server.host, server.port) as client:
            snapshot = client.server_metrics()["snapshot"]

    e2e_sum, e2e_count, _ = histogram_stats(
        snapshot, "repro_request_seconds", {"op": "query"}
    )
    row = {
        "stage_requests": e2e_count,
        "stage_e2e_p50_ms": round(
            histogram_quantile(
                snapshot, "repro_request_seconds", 0.5, {"op": "query"}
            )
            * 1e3,
            3,
        ),
        "stage_e2e_mean_ms": round(e2e_sum / e2e_count * 1e3, 3),
    }
    attributed = 0.0
    for stage in STAGES:
        stage_sum, stage_count, _ = histogram_stats(
            snapshot, "repro_stage_seconds", {"stage": stage}
        )
        row[f"stage_{stage}_ms"] = round(
            stage_sum / max(stage_count, 1) * 1e3, 4
        )
        if stage != "encode":  # encode lands after the dispatch window
            attributed += stage_sum
    coverage = attributed / e2e_sum if e2e_sum else 0.0
    row["stage_coverage"] = round(coverage, 4)
    print(f"\nstage breakdown: {row}")
    REPORT.record(
        row,
        thresholds=[
            ("stage_coverage", ">=", 0.9),
            ("stage_coverage", "<=", 1.1),
        ],
    )
    assert report.errors == 0
    assert e2e_count == report.requests
    assert 0.9 <= coverage <= 1.1, (
        f"traced stages cover {coverage:.0%} of end-to-end dispatch time; "
        "the breakdown must sum to within 10% of what clients measured"
    )


def test_serve_smoke():
    """CI gate: tiny summary, 50 concurrent requests, zero errors,
    warm cache.  Independent of the experiment store so it boots in
    seconds on a cold runner."""
    summary = _tiny_summary()
    workload = [
        "SELECT COUNT(*) FROM R WHERE state = 'CA'",
        "SELECT COUNT(*) FROM R WHERE hour BETWEEN 1 AND 2",
        "SELECT COUNT(*) FROM R WHERE hour >= 1 AND hour <= 2",
        "SELECT COUNT(*) FROM R GROUP BY state",
        "SELECT SUM(hour) FROM R WHERE state = 'NY'",
    ]
    server = SummaryServer(summary, config=ServeConfig(window_ms=2.0))
    with ServerThread(server):
        report = run_load(
            server.host,
            server.port,
            workload,
            clients=5,
            requests_per_client=10,
        )
    print(f"\nserve smoke: {report.describe()}")
    REPORT.record(
        {
            "smoke_requests": report.requests,
            "smoke_errors": report.errors,
            "smoke_qps": round(report.qps, 1),
            "smoke_cache_hit_rate": round(report.cache_hit_rate, 4),
        },
        thresholds=[
            ("smoke_errors", "==", 0),
            ("smoke_cache_hit_rate", ">", 0.0),
        ],
    )
    assert report.requests == 50
    assert report.errors == 0, f"{report.errors} errors during smoke load"
    assert report.cache_hit_rate > 0.0
