"""Fig. 2(b): statistic-selection heuristics vs budget.

Regenerates the ZERO / LARGE / COMPOSITE accuracy comparison on the
restricted flights relation.  The benchmark time is the full
experiment (summary builds are cached after the first run).
"""

from benchmarks.conftest import publish
from repro.experiments.fig2 import run_fig2


def test_fig2_heuristics(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig2(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "fig2_heuristics")

    rows = result.rows("error by heuristic and budget")
    by_key = {(row["heuristic"], row["budget"]): row for row in rows}
    budgets = sorted({row["budget"] for row in rows})
    top_budget = budgets[-1]
    # Paper shape (b.i): LARGE and COMPOSITE near-zero heavy-hitter
    # error at the largest budget; ZERO stuck high regardless.
    assert by_key[("large", top_budget)]["heavy_error"] < 0.1
    assert by_key[("composite", top_budget)]["heavy_error"] < 0.1
    for budget in budgets:
        assert by_key[("zero", budget)]["heavy_error"] > 0.3
    # Paper conclusion: COMPOSITE best across all query types.
    for budget in budgets:
        composite_avg = (
            by_key[("composite", budget)]["heavy_error"]
            + by_key[("composite", budget)]["light_error"]
            + by_key[("composite", budget)]["null_error"]
        )
        for other in ("zero", "large"):
            other_avg = (
                by_key[(other, budget)]["heavy_error"]
                + by_key[(other, budget)]["light_error"]
                + by_key[(other, budget)]["null_error"]
            )
            assert composite_avg <= other_avg + 0.05
