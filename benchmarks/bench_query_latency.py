"""Sec 5 latency claims: interactive query answering.

Micro-benchmarks over the largest flights summary (Ent1&2&3) through
the session API: point queries, range queries, a full GROUP BY, and the
batched ``run_many()`` path vs sequential ``run()``, plus the
experiment-level latency table comparing with the 1% sample.  The
paper's bound — average < 500 ms, max < 1 s on a domain of ~1e10
tuples — should hold with two orders of magnitude to spare on our
substrate.
"""

import time

import numpy as np

from benchmarks.conftest import publish
from repro.api import Explorer
from repro.experiments.latency import run_latency
from repro.stats.predicates import Conjunction, RangePredicate


def test_latency_table(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_latency(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "query_latency")

    for row in result.rows("per-query latency"):
        if row["method"].startswith("Ent"):
            assert row["mean_ms"] < 500.0, row
            assert row["max_ms"] < 1000.0, row


def _session(store) -> Explorer:
    return Explorer.attach(store.flights_summary("Ent1&2&3", "coarse"))


def test_point_query_latency(benchmark, store):
    explorer = _session(store)
    schema = explorer.schema
    predicate = Conjunction(
        schema,
        {
            "origin_state": RangePredicate.point(4),
            "dest_state": RangePredicate.point(31),
        },
    )
    count = benchmark(explorer.count, predicate)
    assert count >= 0.0


def test_range_query_latency(benchmark, store):
    explorer = _session(store)
    schema = explorer.schema
    predicate = Conjunction(
        schema,
        {
            "fl_time": RangePredicate(10, 40),
            "distance": RangePredicate(20, 60),
        },
    )
    count = benchmark(explorer.count, predicate)
    assert count >= 0.0


def test_group_by_latency(benchmark, store):
    explorer = _session(store)
    grouped = benchmark(explorer.group_counts, ["dest_state"], None)
    assert len(grouped) == 54
    assert np.isclose(
        sum(grouped.values()), explorer.summary.total, rtol=1e-6
    )


def test_run_many_beats_sequential(store):
    """Acceptance check: ``run_many()`` on a batch of counting queries
    is measurably faster than the same queries via sequential
    ``run()`` — the batch funnels through one vectorized inference
    pass instead of one polynomial evaluation per query."""
    explorer = _session(store)
    schema = explorer.schema
    origin = schema.domain("origin_state")
    time_size = schema.domain("fl_time").size
    rng = np.random.default_rng(13)
    queries = []
    for _ in range(24):
        state = origin.label_of(int(rng.integers(0, origin.size)))
        low = int(rng.integers(0, time_size - 10))
        high = low + int(rng.integers(3, 9))
        queries.append(
            explorer.query()
            .where(origin_state=state)
            .where(fl_time__between=(low, high))
            .to_ast()
        )

    def sequential() -> tuple[float, list[float]]:
        explorer.clear_cache()
        start = time.perf_counter()
        results = [explorer.execute(query) for query in queries]
        return time.perf_counter() - start, [r.scalar for r in results]

    def batched() -> tuple[float, list[float]]:
        explorer.clear_cache()
        start = time.perf_counter()
        results = explorer.run_many(queries)
        return time.perf_counter() - start, [r.scalar for r in results]

    rounds = [(sequential(), batched()) for _ in range(5)]
    reference = rounds[0][0][1]
    for (_, seq_values), (_, bat_values) in rounds:
        assert np.allclose(seq_values, reference)
        assert np.allclose(bat_values, reference)
    seq_time = min(seq for (seq, _), _ in rounds)
    bat_time = min(bat for _, (bat, _) in rounds)
    print(
        f"\nrun_many: {len(queries)} queries, sequential {seq_time*1e3:.2f} ms"
        f" vs batched {bat_time*1e3:.2f} ms ({seq_time/bat_time:.2f}x)"
    )
    assert bat_time < seq_time, (
        f"batched {bat_time*1e3:.2f} ms not faster than sequential "
        f"{seq_time*1e3:.2f} ms"
    )


def test_polynomial_evaluation_latency(benchmark, store):
    """Raw masked evaluation — the Sec 4.2 primitive behind every query."""
    summary = store.flights_summary("Ent1&2&3", "coarse")
    poly = summary.polynomial
    rng = np.random.default_rng(0)
    masks = {
        pos: rng.random(size) > 0.5 for pos, size in enumerate(poly.sizes)
    }
    for mask in masks.values():
        mask[0] = True
    value = benchmark(poly.evaluate, summary.params, masks)
    assert value >= 0.0
