"""Sec 5 latency claims: interactive query answering.

Micro-benchmarks over the largest flights summary (Ent1&2&3): point
queries, range queries, and a full GROUP BY, plus the experiment-level
latency table comparing with the 1% sample.  The paper's bound —
average < 500 ms, max < 1 s on a domain of ~1e10 tuples — should hold
with two orders of magnitude to spare on our substrate.
"""

import numpy as np

from conftest import publish
from repro.experiments.latency import run_latency
from repro.query.backends import SummaryBackend
from repro.stats.predicates import Conjunction, RangePredicate


def test_latency_table(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_latency(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "query_latency")

    for row in result.rows("per-query latency"):
        if row["method"].startswith("Ent"):
            assert row["mean_ms"] < 500.0, row
            assert row["max_ms"] < 1000.0, row


def _summary_backend(store):
    return SummaryBackend(store.flights_summary("Ent1&2&3", "coarse"))


def test_point_query_latency(benchmark, store):
    backend = _summary_backend(store)
    schema = backend.schema
    predicate = Conjunction(
        schema,
        {
            "origin_state": RangePredicate.point(4),
            "dest_state": RangePredicate.point(31),
        },
    )
    count = benchmark(backend.count, predicate)
    assert count >= 0.0


def test_range_query_latency(benchmark, store):
    backend = _summary_backend(store)
    schema = backend.schema
    predicate = Conjunction(
        schema,
        {
            "fl_time": RangePredicate(10, 40),
            "distance": RangePredicate(20, 60),
        },
    )
    count = benchmark(backend.count, predicate)
    assert count >= 0.0


def test_group_by_latency(benchmark, store):
    backend = _summary_backend(store)
    grouped = benchmark(backend.group_counts, ["dest_state"], None)
    assert len(grouped) == 54
    assert np.isclose(
        sum(grouped.values()), backend.summary.total, rtol=1e-6
    )


def test_polynomial_evaluation_latency(benchmark, store):
    """Raw masked evaluation — the Sec 4.2 primitive behind every query."""
    summary = store.flights_summary("Ent1&2&3", "coarse")
    poly = summary.polynomial
    rng = np.random.default_rng(0)
    masks = {
        pos: rng.random(size) > 0.5 for pos, size in enumerate(poly.sizes)
    }
    for mask in masks.values():
        mask[0] = True
    value = benchmark(poly.evaluate, summary.params, masks)
    assert value >= 0.0
