"""Query-planner acceptance: semantic caching and O(1) short-circuits.

The planner refactor's performance claims:

* **repeated-equivalent workloads** — a session answering a workload
  where every query recurs in syntactic variants (``BETWEEN 3 AND 7``
  vs ``x >= 3 AND x <= 7``, reordered conjuncts) must be at least
  1.5x faster than the same session with caching disabled, because the
  result cache keys on the *canonical* predicate: all variants of one
  query share one entry, so only the first of each class pays an
  inference pass.
* **contradiction short-circuit** — a query whose predicate is a
  contradiction (``x >= 5 AND x <= 2``, values outside the active
  domain) answers ``0`` in the normalize stage: zero backend
  invocations, latency well under a real model query's.

Numbers append to ``BENCH_planner.json`` through the shared emitter
(:mod:`benchmarks._emit`) in the same schema as ``BENCH_serve.json``.

Scale via ``REPRO_SCALE`` (``paper`` default, ``small`` for CI).
"""

import time

from benchmarks._emit import BenchReport
from repro.api import Explorer

REPORT = BenchReport("planner")

#: Equivalence classes: every inner list spells one predicate several ways.
VARIANT_CLASSES = [
    [
        "SELECT COUNT(*) FROM R WHERE distance BETWEEN 20 AND 50",
        "SELECT COUNT(*) FROM R WHERE distance >= 20 AND distance <= 50",
        "SELECT COUNT(*) FROM R WHERE distance <= 50 AND distance >= 20",
    ],
    [
        "SELECT COUNT(*) FROM R WHERE origin_state = 'CA' AND fl_time >= 10",
        "SELECT COUNT(*) FROM R WHERE fl_time >= 10 AND origin_state = 'CA'",
        "SELECT COUNT(*) FROM R WHERE fl_time >= 10 AND fl_time >= 0 "
        "AND origin_state = 'CA'",
    ],
    [
        "SELECT COUNT(*) FROM R WHERE fl_time BETWEEN 5 AND 5",
        "SELECT COUNT(*) FROM R WHERE fl_time = 5",
        "SELECT COUNT(*) FROM R WHERE fl_time >= 5 AND fl_time <= 5",
    ],
    [
        "SELECT COUNT(*) FROM R WHERE dest_state = 'NY' AND distance >= 30",
        "SELECT COUNT(*) FROM R WHERE distance >= 30 AND dest_state = 'NY'",
        "SELECT COUNT(*) FROM R WHERE distance >= 30 AND distance >= 1 "
        "AND dest_state = 'NY'",
    ],
]

REPEATS = 20

CONTRADICTIONS = [
    "SELECT COUNT(*) FROM R WHERE fl_time >= 40 AND fl_time <= 2",
    "SELECT COUNT(*) FROM R WHERE origin_state = 'CA' AND origin_state = 'NY'",
    "SELECT COUNT(*) FROM R WHERE distance BETWEEN 30 AND 40 AND distance = 90",
]


def _workload() -> list[str]:
    return [
        text for _ in range(REPEATS) for cls in VARIANT_CLASSES for text in cls
    ]


def _run(explorer: Explorer, workload: list[str]) -> float:
    start = time.perf_counter()
    for sql in workload:
        explorer.sql(sql)
    return time.perf_counter() - start


def test_repeated_equivalent_workload_speedup(store):
    """Acceptance: canonical caching gives >= 1.5x on variant-heavy
    repeated workloads vs the same planner with caches disabled."""
    summary = store.flights_summary("Ent1&2&3", "coarse")
    workload = _workload()

    cold = Explorer.attach(summary, cache_size=0)
    _run(cold, workload[: len(VARIANT_CLASSES) * 3])  # warm model caches
    summary.clear_cache()
    uncached_seconds = _run(cold, workload)

    warm = Explorer.attach(summary, cache_size=256)
    summary.clear_cache()
    cached_seconds = _run(warm, workload)

    hits = warm.cache_info()["results"]["hits"]
    speedup = uncached_seconds / cached_seconds
    print(
        f"\nrepeated-equivalent workload ({len(workload)} queries, "
        f"{len(VARIANT_CLASSES)} equivalence classes): "
        f"uncached {uncached_seconds*1e3:.1f} ms, cached "
        f"{cached_seconds*1e3:.1f} ms — {speedup:.2f}x, {hits} result hits"
    )
    REPORT.record(
        {
            "workload_queries": len(workload),
            "equivalence_classes": len(VARIANT_CLASSES),
            "uncached_ms": round(uncached_seconds * 1e3, 2),
            "cached_ms": round(cached_seconds * 1e3, 2),
            "result_cache_hits": hits,
            "speedup": round(speedup, 2),
        },
        thresholds=[("speedup", ">=", 1.5)],
    )
    # Every query after the first of its class hits the canonical key.
    assert hits == len(workload) - len(VARIANT_CLASSES)
    assert speedup >= 1.5, (
        f"semantic caching speedup {speedup:.2f}x < 1.5x "
        f"(uncached {uncached_seconds:.3f}s vs cached {cached_seconds:.3f}s)"
    )


def test_contradictions_short_circuit(store):
    """Acceptance: contradictions never reach the backend and answer
    far faster than a real model query."""
    summary = store.flights_summary("Ent1&2&3", "coarse")
    explorer = Explorer.attach(summary, cache_size=0)

    engine = summary.engine
    engine.clear_cache()
    misses_before = engine.cache_misses

    start = time.perf_counter()
    for _ in range(REPEATS):
        for sql in CONTRADICTIONS:
            assert explorer.sql(sql).scalar == 0.0
    contradiction_seconds = time.perf_counter() - start
    # Zero polynomial evaluations: the normalize stage answered alone.
    assert engine.cache_misses == misses_before

    live = "SELECT COUNT(*) FROM R WHERE distance BETWEEN 20 AND 50"
    explorer.sql(live)  # warm
    start = time.perf_counter()
    for _ in range(REPEATS):
        explorer.sql(live)
    live_seconds = time.perf_counter() - start

    per_contradiction = contradiction_seconds / (REPEATS * len(CONTRADICTIONS))
    per_live = live_seconds / REPEATS
    print(
        f"\ncontradiction: {per_contradiction*1e6:.0f} µs/query vs live "
        f"model query {per_live*1e6:.0f} µs/query"
    )
    # O(1) in model size: parse + normalize only.  Generous 2x bound on
    # a cached live query keeps the assertion robust on noisy machines;
    # the printed numbers show the real gap.
    allowed = max(per_live * 2.0, 2e-3)
    REPORT.record(
        {
            "contradiction_us_per_query": round(per_contradiction * 1e6, 1),
            "live_us_per_query": round(per_live * 1e6, 1),
            "contradiction_ratio_vs_allowed": round(
                per_contradiction / allowed, 4
            ),
        },
        thresholds=[("contradiction_ratio_vs_allowed", "<", 1.0)],
    )
    assert per_contradiction < allowed
