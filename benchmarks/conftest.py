"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §4).  Summaries and datasets are cached — in-process and on
disk under ``.cache/summaries`` — so repeated runs skip the model
fitting.  Accuracy tables are written to ``benchmarks/results/`` and
printed (visible with ``pytest -s``).

Scale is controlled by ``REPRO_SCALE`` (``paper`` default, ``small``
for quick runs).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.configs import default_store


@pytest.fixture(scope="session")
def store():
    """Process-wide experiment store at the active scale."""
    return default_store()


@pytest.fixture(scope="session")
def results_dir():
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def publish(result, results_dir: Path, name: str) -> None:
    """Write an ExperimentResult to disk and echo it."""
    text = result.to_text()
    (results_dir / f"{name}.txt").write_text(text)
    (results_dir / f"{name}.md").write_text(result.to_markdown())
    print()
    print(text)
