"""Fig. 3: active-domain sizes (dataset construction benchmark).

Checks our generated datasets reproduce the paper's binned domain
sizes exactly; the benchmark measures dataset generation time.
"""

from benchmarks.conftest import publish
from repro.datasets import generate_flights
from repro.experiments.fig3 import run_fig3


def test_fig3_domain_sizes(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig3(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "fig3_domains")

    for row in result.rows("Flights"):
        if row["attribute"] == "# possible tuples":
            continue
        assert row["coarse"] == row["paper_coarse"]
        assert row["fine"] == row["paper_fine"]
    for row in result.rows("Particles"):
        if row["attribute"] == "# possible tuples":
            continue
        assert row["ours"] == row["paper"]


def test_flights_generation_speed(benchmark):
    """Raw generation throughput (not a paper claim; a sanity budget)."""
    dataset = benchmark(generate_flights, num_rows=20_000, seed=3)
    assert dataset.coarse.num_rows == 20_000
