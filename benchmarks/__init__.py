"""Benchmark suite package (keeps ``benchmarks.conftest`` imports
unambiguous next to ``tests.conftest``)."""
