"""Ingest acceptance: delta refresh vs full rebuild on an append.

The incremental-maintenance claim of the ingest subsystem
(:mod:`repro.ingest`): on a **10% append that touches 1 of 4 shards**
of an attribute-partitioned summary, the delta-refresh path —

* route the batch to the shards whose value ranges it touches,
* re-measure only those shards' statistics (bucket structure reused,
  no re-selection),
* warm-start each touched shard's solver from its previous solution,
* reuse the untouched shard models as-is —

is **at least 3x faster** than rebuilding the whole sharded summary
from scratch on the combined relation, while the refreshed model's
mean relative error vs ground truth stays within a bounded factor of
the from-scratch fit's.  Both paths run serially (``workers=1``) so
the comparison measures compute, not process-pool parallelism.

Numbers land in ``BENCH_ingest.json`` through the shared emitter; the
CI ``perf-regression`` job gates on them via ``tools/check_bench.py``.

Scale via ``REPRO_SCALE`` (``paper`` default, ``small`` for CI).
"""

import time

import numpy as np

from benchmarks._emit import BenchReport
from repro.api import SummaryBuilder
from repro.data.relation import Relation
from repro.datasets import generate_flights
from repro.experiments.configs import active_scale
from repro.ingest import IngestPipeline
from repro.stats.predicates import Conjunction, RangePredicate

REPORT = BenchReport("ingest")

NUM_SHARDS = 4
SHARD_BY = "origin_state"
ITERATIONS = 12
TOTAL_PER_PAIR_BUDGET = 180
PAIRS = (
    ("origin_state", "distance"),
    ("dest_state", "distance"),
    ("fl_time", "distance"),
)
#: Appended rows as a fraction of the base relation.
APPEND_FRACTION = 0.10


def _relation():
    return generate_flights(
        num_rows=active_scale().flights_rows, seed=7
    ).coarse


def _builder(relation):
    return (
        SummaryBuilder(relation)
        .pairs(*PAIRS)
        .per_pair_budget(TOTAL_PER_PAIR_BUDGET)
        .iterations(ITERATIONS)
        .shards(NUM_SHARDS, by=SHARD_BY, workers=1)
    )


def _single_shard_batch(base: Relation, summary, size: int) -> Relation:
    """An append batch routed entirely to shard 0.

    Rows are drawn (with replacement) from the base rows whose shard
    attribute falls in shard 0's owned range — the append-mostly shape
    the LSST design motivates: new data lands in one partition.
    """
    low, high = summary.owned_ranges[0]
    column = base.column(summary.by_position)
    candidates = np.flatnonzero((column >= low) & (column <= high))
    rng = np.random.default_rng(23)
    return base.sample_rows(rng.choice(candidates, size=size, replace=True))


def _workload(schema, rng, count):
    """Mixed single- and two-attribute counting queries (the
    bench_sharding shape), weighted toward the appended shard's
    attribute so the refreshed statistics actually get exercised."""
    predicates = []
    origin_size = schema.domain("origin_state").size
    time_size = schema.domain("fl_time").size
    distance_size = schema.domain("distance").size
    for index in range(count):
        state = int(rng.integers(0, origin_size))
        if index % 3 == 0:
            predicates.append(
                Conjunction(schema, {"origin_state": RangePredicate.point(state)})
            )
        elif index % 3 == 1:
            low = int(rng.integers(0, distance_size - 12))
            predicates.append(
                Conjunction(
                    schema,
                    {
                        "origin_state": RangePredicate.point(state),
                        "distance": RangePredicate(low, low + 11),
                    },
                )
            )
        else:
            low = int(rng.integers(0, time_size - 8))
            predicates.append(
                Conjunction(schema, {"fl_time": RangePredicate(low, low + 7)})
            )
    return predicates


def test_delta_refresh_speedup_and_accuracy():
    """Acceptance: >= 3x faster than a full rebuild, error growth bounded."""
    base = _relation()
    _builder(base).iterations(2).fit()  # warm numpy/solver caches

    summary = _builder(base).name("flights-ingest").fit()
    batch = _single_shard_batch(
        base, summary, int(base.num_rows * APPEND_FRACTION)
    )
    combined = Relation.concat([base, batch])

    start = time.perf_counter()
    rebuilt = _builder(combined).name("flights-rebuilt").fit()
    rebuild_s = time.perf_counter() - start

    pipeline = IngestPipeline(summary, base, max_iterations=ITERATIONS)
    start = time.perf_counter()
    report = pipeline.append(batch)
    delta_s = time.perf_counter() - start
    refreshed = report.summary

    speedup = rebuild_s / delta_s
    print(
        f"\n10% append to 1 of {NUM_SHARDS} shards: full rebuild "
        f"{rebuild_s:.2f}s vs delta refresh {delta_s:.2f}s "
        f"({speedup:.2f}x), shards refit: {report.shards_refit}"
    )
    assert report.shards_refit == (0,), (
        "batch was crafted for shard 0 only; routing sent it to "
        f"{report.shards_refit}"
    )
    assert refreshed.total == combined.num_rows

    # Accuracy: the delta-refreshed model tracks ground truth about as
    # well as the from-scratch fit (same statistic structure, slightly
    # staler bucket boundaries on the touched shard).
    predicates = _workload(combined.schema, np.random.default_rng(29), 60)
    rebuilt_errors = []
    delta_errors = []
    for predicate in predicates:
        exact = float(combined.count_where(predicate.attribute_masks()))
        floor = max(exact, 8.0)
        rebuilt_errors.append(
            abs(rebuilt.estimate(predicate).expectation - exact) / floor
        )
        delta_errors.append(
            abs(refreshed.estimate(predicate).expectation - exact) / floor
        )
    rebuilt_error = float(np.mean(rebuilt_errors))
    delta_error = float(np.mean(delta_errors))
    error_ratio = (delta_error + 0.01) / (rebuilt_error + 0.01)
    print(
        f"accuracy over {len(predicates)} queries: mean relative error "
        f"rebuild {rebuilt_error:.4f} vs delta {delta_error:.4f} "
        f"(padded ratio {error_ratio:.2f}x)"
    )

    REPORT.record(
        {
            "num_shards": NUM_SHARDS,
            "append_fraction": APPEND_FRACTION,
            "rebuild_s": round(rebuild_s, 3),
            "delta_refresh_s": round(delta_s, 3),
            "ingest_speedup": round(speedup, 2),
            "accuracy_queries": len(predicates),
            "mean_rel_error_rebuild": round(rebuilt_error, 5),
            "mean_rel_error_delta": round(delta_error, 5),
            "error_ratio": round(error_ratio, 3),
        },
        thresholds=[
            ("ingest_speedup", ">=", 3.0),
            ("error_ratio", "<=", 1.5),
        ],
    )
    assert speedup >= 3.0, (
        f"delta refresh {delta_s:.2f}s is only {speedup:.2f}x faster than "
        f"the {rebuild_s:.2f}s full rebuild (need >= 3x)"
    )
    assert delta_error <= 1.5 * rebuilt_error + 0.015, (
        f"delta-refresh mean error {delta_error:.4f} grew beyond the bound "
        f"vs the from-scratch fit's {rebuilt_error:.4f}"
    )


def test_warm_start_reports_and_converges():
    """The refit path records its warm start and reaches the same
    constraint error the cold path does."""
    base = _relation()
    summary = _builder(base).name("flights-warm").fit()
    batch = _single_shard_batch(base, summary, max(base.num_rows // 20, 10))
    pipeline = IngestPipeline(summary, base, max_iterations=ITERATIONS)
    report = pipeline.append(batch)
    refit_shard = report.summary.shards[0]
    assert refit_shard.report is not None
    assert refit_shard.report.warm_started
    cold = summary.shards[0].refit(
        pipeline._shard_relations[0],
        max_iterations=ITERATIONS,
        warm_start=False,
    )
    warm_error = refit_shard.report.final_error
    cold_error = cold.report.final_error
    print(
        f"\nwarm-start final error {warm_error:.3g} vs cold {cold_error:.3g}"
    )
    REPORT.record(
        {
            "warm_final_error": warm_error,
            "cold_final_error": cold_error,
        },
    )
    assert warm_error <= cold_error * 2 + 1e-6
