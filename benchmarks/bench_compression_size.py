"""Sec 4.1/4.3: compressed vs uncompressed polynomial size, and
summary storage vs 1% samples.

Paper claims encoded below: the compression is orders of magnitude
(their example: 4.4M monomials → ~9k compressed terms at budget 2000),
and the summary's parameters are far smaller than the samples.
"""

from benchmarks.conftest import publish
from repro.experiments.compression import run_compression


def test_compression_size(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_compression(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "compression_size")

    for row in result.rows("polynomial size on restricted flights"):
        # Orders-of-magnitude compression at every budget.
        assert row["ratio"] > 100, row
    for row in result.rows("summary vs 1% sample storage"):
        assert row["summary_param_bytes"] < row["sample_bytes"], row
