"""Fig. 6: F measure over light hitters + null values, Coarse & Fine.

Shape assertions from Sec 6.2: the deep two-pair summaries (Ent1&2,
Ent3&4) post the best F measures, beating the uniform sample; the
EntropyDB family beats uniform sampling across the board.
"""

from benchmarks.conftest import publish
from repro.experiments.fig6 import run_fig6


def test_fig6_f_measure(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig6(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "fig6_fmeasure")

    for section in ("FlightsCoarse", "FlightsFine"):
        scores = {row["method"]: row["f_measure"] for row in result.rows(section)}
        best_ent = max(scores["Ent1&2"], scores["Ent3&4"], scores["Ent1&2&3"])
        assert best_ent > scores["Uni"], section
        # The deep summaries beat the breadth-first one (more buckets
        # catch more empty regions — the paper's Fig. 6 explanation).
        assert max(scores["Ent1&2"], scores["Ent3&4"]) >= scores["Ent1&2&3"] - 0.02
