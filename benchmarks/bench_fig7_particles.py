"""Fig. 7: Particles — query accuracy and runtime vs data size.

Shape assertions from Sec 6.3:

* sampling beats the summaries on heavy hitters (coarse bucketization);
* EntAll beats EntNo2D on the template covered by its 2D statistics
  (density & grp);
* summary query latency stays interactive (well under the paper's 1 s
  bound) at every data size.
"""

from benchmarks.conftest import publish
from repro.experiments.fig7 import run_fig7


def test_fig7_particles(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig7(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "fig7_particles")

    heavy = result.rows("heavy hitters")
    template1 = [row for row in heavy if row["template"].startswith("den")]
    for row in template1:
        # 2D statistics over (density, grp)/(density, mass) must help.
        assert row["EntAll_err"] <= row["EntNo2D_err"] + 0.02
    for row in heavy:
        assert row["Uni_err"] <= row["EntAll_err"] + 0.05, (
            "sampling should win on heavy hitters (coarse buckets)"
        )
        # Interactive latency: paper bound is 1000 ms.
        assert row["EntAll_ms"] < 1000.0
        assert row["EntNo2D_ms"] < 1000.0
