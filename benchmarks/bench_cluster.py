"""Multi-worker serving tier acceptance: the 1-vs-N scaling curve.

The cluster's performance claim: when per-shard evaluation carries a
real service cost — the LSST sizing shape, where summaries are too
large to stay hot and every resident shard charges disk/CPU time per
flush — a 4-worker shard-affine pool sustains **at least 2x** the
throughput of one process serving the same sharded summary, because

* each worker evaluates only the shard slice it owns, so the per-flush
  service floor divides by the worker count while the frontend's
  fan-out runs the slices concurrently,
* the planner's ``live_shards`` pruning still applies per query, so
  point queries touch one worker instead of waking the whole pool,
* merge math runs frontend-side on tiny partials (floats and label
  vectors), not on shards.

The per-shard cost is modeled with ``shard_service_ms`` — a calibrated
floor charged per resident shard per evaluation flush — so the curve
measures the *architecture* (fan-out, affinity, merge) and not the
benchmark box's core count: a single core reproduces the same curve
shape as a 32-core runner, because the single-process configuration
pays the whole floor serially either way.

``test_cluster_smoke`` is the CI gate (``make cluster-smoke``): boot a
frontend + 2 workers, fire 100 concurrent requests with a worker
killed mid-run, and assert zero dropped requests.

Results append to ``BENCH_cluster.json`` via the shared emitter and
gate through ``tools/check_bench.py`` baselines.

Scale via ``REPRO_SCALE`` (``paper`` default, ``small`` for CI).
"""

import threading
import time

import numpy as np

from benchmarks._emit import BenchReport
from repro.api import SummaryBuilder
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.experiments.configs import active_scale
from repro.serve import (
    ClusterCoordinator,
    ServeConfig,
    ServerThread,
    SummaryServer,
    run_load,
)

REPORT = BenchReport("cluster")

NUM_SHARDS = 8
WORKERS = 4
#: Calibrated per-shard service-time floor (milliseconds).  Large
#: enough that the per-flush floor (shards x floor) dominates wire and
#: scheduling overhead on a busy single-core CI runner, small enough
#: that a full curve stays in seconds.
SERVICE_MS = 80.0

#: Cross-shard workload: every query touches most or all live shards,
#: so both configurations pay the service floor over the same shard
#: set and the ratio isolates the fan-out.
WORKLOAD = [
    "SELECT COUNT(*) FROM R",
    "SELECT COUNT(*) FROM R WHERE state = 'CA'",
    "SELECT COUNT(*) FROM R WHERE hour >= 8",
    "SELECT COUNT(*) FROM R WHERE hour BETWEEN 4 AND 27",
    "SELECT SUM(hour) FROM R WHERE state = 'NY'",
    "SELECT AVG(hour) FROM R WHERE state IN ('CA', 'WA')",
    "SELECT state, COUNT(*) FROM R GROUP BY state ORDER BY cnt DESC",
    "SELECT COUNT(*) FROM R WHERE state != 'NY' AND hour <= 23",
]


def _summary():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 32)]
    )
    rng = np.random.default_rng(11)
    relation = Relation(
        schema,
        [
            rng.choice(3, size=800, p=[0.5, 0.3, 0.2]),
            rng.integers(0, 32, 800),
        ],
    )
    return (
        SummaryBuilder(relation)
        .shards(NUM_SHARDS, by="hour", workers=1)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(40)
        .name("cluster-bench")
        .fit()
    )


def _config() -> ServeConfig:
    # The cache is off and coalescing on in BOTH configurations: every
    # request must reach evaluation, and the flush shape is identical,
    # so worker count is the only variable on the curve.  The window is
    # wide relative to client arrival jitter so each closed-loop round
    # lands in ONE flush per configuration — otherwise stragglers pay a
    # whole extra service-floor round and the ratio gets noisy.
    return ServeConfig(
        port=0,
        cache_size=0,
        window_ms=20.0,
        max_queue=512,
        max_inflight_per_client=32,
        shard_service_ms=SERVICE_MS,
    )


def _drive(server, clients: int, requests_per_client: int):
    with ServerThread(server):
        return run_load(
            server.host,
            server.port,
            WORKLOAD,
            clients=clients,
            requests_per_client=requests_per_client,
            timeout=300.0,
        )


def test_cluster_scaling_speedup():
    """Acceptance: 4 shard-affine workers >= 2x single-process qps
    under 100+ concurrent clients."""
    summary = _summary()
    small = active_scale().name == "small"
    clients = 100
    requests = 2 if small else 4

    single = _drive(SummaryServer(summary, config=_config()), clients, requests)
    cluster = _drive(
        ClusterCoordinator(
            summary, workers=WORKERS, replicas=1, config=_config()
        ),
        clients,
        requests,
    )

    speedup = cluster.qps / single.qps
    print(f"\nsingle process: {single.describe()}")
    print(f"{WORKERS} workers:      {cluster.describe()}")
    print(f"cluster speedup: {speedup:.2f}x")
    REPORT.record(
        {
            "clients": clients,
            "requests_per_client": requests,
            "workers": WORKERS,
            "shards": NUM_SHARDS,
            "shard_service_ms": SERVICE_MS,
            "qps_single": round(single.qps, 1),
            "qps_cluster": round(cluster.qps, 1),
            "p95_ms_single": round(single.p95_ms, 3),
            "p95_ms_cluster": round(cluster.p95_ms, 3),
            "cluster_errors": cluster.errors + single.errors,
            "cluster_speedup": round(speedup, 2),
        },
        thresholds=[
            ("cluster_speedup", ">=", 2.0),
            ("cluster_errors", "==", 0),
        ],
    )
    assert single.errors == 0 and cluster.errors == 0
    assert speedup >= 2.0, (
        f"cluster speedup {speedup:.2f}x < 2x "
        f"({cluster.qps:.0f} vs {single.qps:.0f} q/s at {WORKERS} workers)"
    )


def test_cluster_smoke():
    """CI gate: frontend + 2 workers, 100 concurrent requests, one
    worker killed mid-run — zero dropped requests, worker respawned."""
    summary = _summary()
    coordinator = ClusterCoordinator(
        summary,
        workers=2,
        replicas=2,
        config=_config(),
    )
    with ServerThread(coordinator):
        served_before = coordinator.requests
        outcome = {}

        def drive():
            outcome["report"] = run_load(
                coordinator.host,
                coordinator.port,
                WORKLOAD,
                clients=20,
                requests_per_client=5,
                timeout=300.0,
            )

        loader = threading.Thread(target=drive, daemon=True)
        loader.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if coordinator.requests - served_before >= 10:
                break
            time.sleep(0.002)
        assert coordinator.requests - served_before >= 10, "load never started"
        killed = coordinator.kill_worker()
        loader.join(timeout=300)
        assert not loader.is_alive(), "load run hung after the worker kill"
        report = outcome["report"]

        deadline = time.monotonic() + 60
        respawned = False
        while time.monotonic() < deadline:
            stats = coordinator.stats()["cluster"]
            if stats["live"] == 2 and stats["respawns"] >= 1:
                respawned = True
                break
            time.sleep(0.2)

    print(f"\nsmoke (worker {killed} killed mid-run): {report.describe()}")
    REPORT.record(
        {
            "smoke_clients": 20,
            "smoke_requests": report.requests,
            "smoke_errors": report.errors,
            "smoke_qps": round(report.qps, 1),
            "smoke_respawned": int(respawned),
        },
        thresholds=[
            ("smoke_errors", "==", 0),
            ("smoke_requests", ">=", 100),
            ("smoke_respawned", "==", 1),
        ],
    )
    assert report.errors == 0, f"{report.errors} dropped requests"
    assert report.requests == 100
    assert respawned, "killed worker was not respawned within 60s"
