"""Shared benchmark emitter: one ``BENCH_<name>.json`` per suite.

Every acceptance benchmark (planner, sharding, serve) writes its
numbers through a :class:`BenchReport`, so the repo accumulates a
machine-readable perf trajectory in one schema::

    {
      "format_version": 1,
      "name": "serve",
      "scale": "small",
      "created_at": 1753...,
      "metrics": {"qps_coalesced": 4100.0, ...},
      "thresholds": [
        {"metric": "speedup", "op": ">=", "bound": 2.0,
         "actual": 3.4, "passed": true}
      ],
      "passed": true
    }

Files land in the current working directory (the repo root under
pytest); they are build artifacts, not sources — ``BENCH_*.json`` is
gitignored.  A report is rewritten after every ``record()`` call, so a
partially-run suite still leaves its completed metrics on disk.
"""

from __future__ import annotations

import json
import operator
import os
import time
from pathlib import Path

FORMAT_VERSION = 1

_OPS = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
}


class BenchReport:
    """Accumulates metrics and threshold checks for one benchmark suite.

    Tests call :meth:`record` with their metrics and ``(metric, op,
    bound)`` threshold triples; the merged document is rewritten to
    ``BENCH_<name>.json`` on every call.  ``record`` returns the
    failing checks so callers *may* assert on them, but benchmarks
    should keep their own assertions — those carry better messages.
    """

    def __init__(self, name: str, out_dir=None):
        self.name = name
        if out_dir is None:
            # The perf-regression harness (tools/check_bench.py run)
            # redirects each repeat's reports into its own directory.
            out_dir = os.environ.get("REPRO_BENCH_DIR") or Path.cwd()
        self.out_dir = Path(out_dir)
        self.metrics: dict = {}
        self.checks: dict[tuple, dict] = {}

    def record(self, metrics: dict, thresholds=()) -> list[dict]:
        """Merge ``metrics``, evaluate ``thresholds``, rewrite the JSON."""
        self.metrics.update(metrics)
        failures = []
        for metric, op, bound in thresholds:
            if op not in _OPS:
                raise ValueError(
                    f"unknown threshold op {op!r}; choose from {sorted(_OPS)}"
                )
            actual = self.metrics[metric]
            check = {
                "metric": metric,
                "op": op,
                "bound": bound,
                "actual": actual,
                "passed": bool(_OPS[op](actual, bound)),
            }
            self.checks[(metric, op)] = check
            if not check["passed"]:
                failures.append(check)
        self.write()
        return failures

    @property
    def passed(self) -> bool:
        return all(check["passed"] for check in self.checks.values())

    @property
    def path(self) -> Path:
        return self.out_dir / f"BENCH_{self.name}.json"

    def document(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "scale": os.environ.get("REPRO_SCALE", "paper"),
            "created_at": time.time(),
            "metrics": self.metrics,
            "thresholds": list(self.checks.values()),
            "passed": self.passed,
        }

    def write(self) -> Path:
        payload = json.dumps(self.document(), indent=2, sort_keys=True)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.path.write_text(payload + "\n")
        return self.path

    def __repr__(self):
        return (
            f"BenchReport({self.name!r}, {len(self.metrics)} metrics, "
            f"passed={self.passed})"
        )
