"""Wire-protocol acceptance: binary framing + pipelining vs JSON lines.

The binary protocol's performance claim: on the repeated-workload mix
the serving layer targets, the length-prefixed binary protocol with
``query_batch`` pipelining sustains **at least 3x** the throughput of
the line-delimited JSON protocol on the same server and box, and the
non-pipelined binary path answers with a **sub-millisecond p95** once
the shared cache is warm, because

* a framed request/response skips ``json.dumps``/``json.loads`` on
  both ends (a measured share of every JSON round trip),
* group-by count vectors ship as raw float64 buffers, decoded
  zero-copy with ``np.frombuffer``,
* a pipelined batch amortizes one TCP round trip and one admission
  slot over many statements.

The 3x claim is enforced against the checked-in serve baseline: the
pipelined leg must clear **3x** ``BENCH_serve.json``'s ``smoke_qps``
floor (the single-process serving number this PR set out to beat).
The JSON leg of the same run doubles as the cross-protocol anchor:
``wire_speedup`` (pipelined binary over JSON, same box, same minute)
is a portable ratio, gated at 2.5x because the JSON leg alone carries
~15% run-to-run noise; the absolute ``qps_*`` numbers gate with the
wide qps bands in ``tools/check_bench.py``.

Results append to ``BENCH_wire.json`` via the shared emitter.  Scale
via ``REPRO_SCALE`` (``paper`` default, ``small`` for CI).
"""

import json
from pathlib import Path

import numpy as np

from benchmarks._emit import BenchReport
from repro.api import SummaryBuilder
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.experiments.configs import active_scale
from repro.obs import histogram_stats
from repro.serve import ServeConfig, ServeClient, ServerThread, SummaryServer, run_load

REPORT = BenchReport("wire")

CLIENTS = 4
PIPELINE = 64


def _serve_smoke_floor() -> float:
    """3x the checked-in serve baseline's smoke throughput — the
    single-process qps bar this protocol exists to beat.  Falls back
    to 3x the seed measurement if the baseline file is absent."""
    baseline = Path(__file__).parent / "baselines" / "BENCH_serve.json"
    smoke_qps = 4800.0
    if baseline.exists():
        metrics = json.loads(baseline.read_text()).get("metrics", {})
        smoke_qps = float(metrics.get("smoke_qps", smoke_qps))
    return 3.0 * smoke_qps

WORKLOAD = [
    "SELECT COUNT(*) FROM R WHERE state = 'CA'",
    "SELECT COUNT(*) FROM R WHERE hour BETWEEN 1 AND 2",
    "SELECT COUNT(*) FROM R WHERE hour >= 1 AND hour <= 2",
    "SELECT COUNT(*) FROM R GROUP BY state",
    "SELECT SUM(hour) FROM R WHERE state = 'NY'",
    "SELECT AVG(hour) FROM R WHERE state = 'CA'",
    "SELECT COUNT(*) FROM R WHERE state = 'WA' AND hour >= 2",
]


def _summary():
    schema = Schema(
        [Domain("state", ["CA", "NY", "WA"]), integer_domain("hour", 4)]
    )
    rng = np.random.default_rng(3)
    relation = Relation(
        schema,
        [rng.choice(3, size=400, p=[0.5, 0.3, 0.2]), rng.integers(0, 4, 400)],
    )
    return (
        SummaryBuilder(relation)
        .pairs(("state", "hour"))
        .per_pair_budget(4)
        .iterations(40)
        .name("wire-bench")
        .fit()
    )


def test_binary_protocol_speedup():
    """Acceptance: pipelined binary >= 3x the checked-in serve
    baseline's smoke qps (and >= 2.5x the same-box JSON leg), with
    warm-cache binary p95 < 1 ms."""
    requests = 200 if active_scale().name == "small" else 400
    qps_floor = _serve_smoke_floor()
    server = SummaryServer(
        _summary(), config=ServeConfig(window_ms=1.0, cache_ttl=None)
    )
    with ServerThread(server) as running:
        # Warm the shared cache once so every leg measures the serving
        # path (framing + cache + merge), not first-touch model math.
        with ServeClient(port=running.port) as warmer:
            for sql in WORKLOAD:
                warmer.query(sql)

        legs = {
            "json": dict(protocol="json"),
            "binary": dict(protocol="binary"),
            "pipelined": dict(protocol="binary", pipeline=PIPELINE),
            # One closed-loop client: measures the serve path's own
            # latency, not K in-process load threads fighting over the
            # GIL (client threads share this process with the server).
            "latency": dict(protocol="binary", clients=1),
        }
        reports = {}
        for leg, kwargs in legs.items():
            reports[leg] = run_load(
                running.host,
                running.port,
                WORKLOAD,
                clients=kwargs.pop("clients", CLIENTS),
                requests_per_client=requests,
                **kwargs,
            )
            print(f"\n{leg:>9}: {reports[leg].describe()}")
        with ServeClient(port=running.port) as scraper:
            snapshot = scraper.server_metrics()["snapshot"]

    def stage_mean_ms(*stages: str) -> float:
        """Mean per-request milliseconds across the named trace
        stages, from the server's own stage histograms (all legs —
        the wire protocols share one serving pipeline)."""
        total_s, count = 0.0, 0
        for stage in stages:
            stage_sum, stage_count, _ = histogram_stats(
                snapshot, "repro_stage_seconds", {"stage": stage}
            )
            total_s += stage_sum
            count = max(count, stage_count)
        return round(total_s / max(count, 1) * 1e3, 4)

    json_leg, binary, pipelined, latency = (
        reports["json"], reports["binary"], reports["pipelined"],
        reports["latency"],
    )
    wire_speedup = pipelined.qps / json_leg.qps
    binary_speedup = binary.qps / json_leg.qps
    print(f"binary/json: {binary_speedup:.2f}x, pipelined/json: {wire_speedup:.2f}x")
    REPORT.record(
        {
            "clients": CLIENTS,
            "requests_per_client": requests,
            "pipeline_depth": PIPELINE,
            "workload_queries": len(WORKLOAD),
            "qps_json": round(json_leg.qps, 1),
            "qps_binary": round(binary.qps, 1),
            "qps_pipelined": round(pipelined.qps, 1),
            "p50_ms_binary": round(latency.p50_ms, 3),
            "p95_ms_binary": round(latency.p95_ms, 3),
            "p95_ms_pipelined": round(pipelined.p95_ms, 3),
            "binary_speedup": round(binary_speedup, 2),
            "wire_speedup": round(wire_speedup, 2),
            "serve_smoke_floor": round(qps_floor, 1),  # informational
            # Per-stage attribution (informational): where a request's
            # time goes server-side, so a future qps regression here
            # names the guilty stage instead of just the protocol.
            "stage_plan_ms": stage_mean_ms("parse", "canonicalize", "route"),
            "stage_cache_ms": stage_mean_ms("cache_lookup"),
            "stage_encode_ms": stage_mean_ms("encode"),
            "errors": (
                json_leg.errors + binary.errors + pipelined.errors
                + latency.errors
            ),
        },
        thresholds=[
            ("qps_pipelined", ">=", round(qps_floor, 1)),
            ("wire_speedup", ">=", 2.5),
            ("p95_ms_binary", "<", 1.0),
            ("errors", "==", 0),
        ],
    )
    assert json_leg.errors == binary.errors == pipelined.errors == 0
    assert latency.errors == 0
    assert pipelined.qps >= qps_floor, (
        f"pipelined binary {pipelined.qps:.0f} q/s < 3x the serve "
        f"baseline's smoke qps ({qps_floor:.0f})"
    )
    assert wire_speedup >= 2.5, (
        f"pipelined binary speedup {wire_speedup:.2f}x < 2.5x "
        f"({pipelined.qps:.0f} vs {json_leg.qps:.0f} q/s)"
    )
    assert latency.p95_ms < 1.0, (
        f"warm-cache binary p95 {latency.p95_ms:.3f} ms >= 1 ms"
    )


def test_round_trip_equivalence():
    """Both protocols answer the whole workload identically — the
    throughput above is not bought with a different answer."""
    server = SummaryServer(
        _summary(), config=ServeConfig(window_ms=1.0, cache_ttl=None)
    )
    with ServerThread(server) as running:
        with ServeClient(port=running.port) as binary:
            with ServeClient(port=running.port, protocol="json") as debug:
                mismatches = 0
                for sql in WORKLOAD:
                    if binary.query(sql) != debug.query(sql):
                        mismatches += 1
                batch = binary.query_many(WORKLOAD)
                singles = [binary.query(sql) for sql in WORKLOAD]
                if batch != singles:
                    mismatches += 1
    REPORT.record(
        {"equivalence_mismatches": mismatches},
        thresholds=[("equivalence_mismatches", "==", 0)],
    )
    assert mismatches == 0
