"""Fig. 5: per-template error difference vs Ent1&2&3 (FlightsCoarse).

Shape assertions encode the paper's Sec 6.2 observations:

* heavy hitters, pair-4 template: sampling beats Ent1&2&3 (it lacks a
  2D statistic over (origin, dest)), and Ent3&4 — which has one —
  outperforms Ent1&2&3 too;
* light hitters: Ent1&2&3 beats uniform sampling on every template.
"""

from benchmarks.conftest import publish
from repro.experiments.fig5 import run_fig5


def test_fig5_error_difference(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "fig5_error_diff")

    heavy = {row["template"]: row for row in result.rows("heavy hitters")}
    pair4 = heavy["OB & DB (Pair 4)"]
    # Negative difference = method better than Ent1&2&3.
    assert pair4["Uni"] < 0
    assert pair4["Ent3&4"] < 0

    light = result.rows("light hitters")
    for row in light:
        assert row["Uni"] > 0, (
            f"uniform sampling should lose to Ent1&2&3 on light hitters "
            f"({row['template']})"
        )
