"""Chaos soak acceptance: sustained fault-injected multi-tenant traffic.

The serving stack's resilience claim, as a gate: a seeded all-fault
soak — N reader tenants, one streaming ingester publishing
``delta_refresh`` micro-batches, scheduled operator reloads and
rollbacks, and a :class:`~repro.chaos.FaultInjector` attacking every
layer (killed workers, slow/erroring backends, dropped connections on
both sides, failing watcher polls, transient ingest failures) —
completes with

* **zero dropped requests** (every request answered, or cleanly
  retried via Retry-After / reconnect to success),
* **bounded staleness** (each publish served within the derived bound),
* **monotone lineage** (served versions only go back at an injected
  rollback; the publish chain is unbroken),
* **error drift ratio <= 1.2x** the no-chaos replay of the identical
  seeded batch sequence — chaos may slow the system, not corrupt it.

The run is replayable from its seed: the fault plan, batch contents,
and reader query choices are pure functions of ``SEED``.  Results land
in ``BENCH_soak.json`` via the shared emitter; the checked-in baseline
(``benchmarks/baselines/BENCH_soak.json``) lets the perf-regression
gate catch drift-ratio growth across PRs.  Scale via ``REPRO_SCALE``:
the 60 s acceptance run at ``small`` (CI), 120 s otherwise.
"""

from benchmarks._emit import BenchReport
from repro.chaos import FaultPlan, SoakConfig, check_invariants, run_soak
from repro.experiments.configs import active_scale

REPORT = BenchReport("soak")

#: The acceptance seed: CI failures replay locally with
#: ``repro soak --duration 60 --seed 7 --faults all``.
SEED = 7


def _duration_s() -> float:
    return 60.0 if active_scale().name == "small" else 120.0


def test_soak_acceptance():
    """The 60 s all-fault soak: invariants hold, metrics are gated."""
    duration = _duration_s()
    config = SoakConfig(
        duration_s=duration, seed=SEED, readers=4, faults=("all",)
    )
    result = run_soak(config)
    report = check_invariants(result)
    print("\n" + report.describe())

    metrics = dict(result.to_metrics())
    metrics["staleness_bound_s"] = round(result.staleness_bound_s, 3)
    REPORT.record(
        metrics,
        thresholds=[
            # The acceptance criteria, enforced per run (the baseline
            # comparison additionally caps error_drift_ratio growth).
            ("dropped_requests", "<=", 0),
            ("error_drift_ratio", "<=", 1.2),
            ("publishes", ">=", 3),
            ("faults_injected", ">=", 1),
        ],
    )
    # Replayability: the executed fault schedule is derivable from the
    # seed alone — a failing run reproduces without the artifacts.
    assert result.plan == FaultPlan.build(SEED, duration, ("all",))
    assert result.max_staleness_s() <= result.staleness_bound_s
    report.raise_if_failed()
