"""Fig. 8: breadth vs depth in statistic selection, Coarse & Fine.

Shape assertions from Sec 6.4:

* Ent1&2&3 (more attribute pairs, fewer buckets) posts the lowest
  heavy-hitter error among the MaxEnt methods;
* Ent3&4 (attribute cover + more buckets) posts the best F measure;
* No2D is the weakest on heavy hitters (no correlation correction).
"""

from benchmarks.conftest import publish
from repro.experiments.fig8 import run_fig8


def test_fig8_statistic_selection(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig8(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "fig8_stat_selection")

    for section in ("FlightsCoarse", "FlightsFine"):
        rows = {row["method"]: row for row in result.rows(section)}
        errors = {name: row["heavy_error"] for name, row in rows.items()}
        f_scores = {name: row["f_measure"] for name, row in rows.items()}
        assert errors["Ent1&2&3"] <= min(
            errors["No2D"], errors["Ent1&2"], errors["Ent3&4"]
        ) + 0.02, section
        assert errors["No2D"] >= max(
            errors["Ent1&2"], errors["Ent1&2&3"]
        ) - 0.02, section
        assert f_scores["Ent3&4"] >= max(
            f_scores["No2D"], f_scores["Ent1&2"], f_scores["Ent1&2&3"]
        ) - 0.05, section
