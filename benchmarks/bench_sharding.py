"""Sharded summaries: build throughput, merge accuracy, batch latency.

The acceptance bar for the sharding subsystem:

* **build** — fitting 4 shards (same *total* 2D bucket budget, divided
  across shards) is at least 2x faster than the single global fit.
  Two effects compound: per-shard polynomials are far smaller (solve
  cost grows superlinearly with per-model statistic count), and the
  shard fits run in parallel worker processes on multi-core machines.
  The 2x bound holds even serially on one core.
* **accuracy** — merged estimates track the unsharded model: 2% + 0.5
  per query on single-attribute counts (as in
  ``tests/test_sharding.py``), and less than a 2x increase in mean
  relative error vs ground truth on mixed workloads — the price of
  coarser per-shard 2D buckets at constant total budget.
* **latency** — large batched workloads through ``Explorer.run_many``
  are no slower against the sharded model; the per-shard polynomials
  are small enough that evaluating all of them usually costs *less*
  than one pass over the big unsharded polynomial.

Numbers append to ``BENCH_sharding.json`` through the shared emitter
(:mod:`benchmarks._emit`) in the same schema as ``BENCH_serve.json``.

Scale via ``REPRO_SCALE`` (``paper`` default, ``small`` for CI).
"""

import time

import numpy as np
import pytest

from benchmarks._emit import BenchReport
from repro.api import Explorer, SummaryBuilder

REPORT = BenchReport("sharding")
from repro.datasets import generate_flights
from repro.experiments.configs import active_scale
from repro.stats.predicates import Conjunction, RangePredicate

#: Total 2D bucket budget per pair — divided across shards so the
#: sharded and unsharded models are the same overall size.
TOTAL_PER_PAIR_BUDGET = 180
NUM_SHARDS = 4
ITERATIONS = 12
PAIRS = (
    ("origin_state", "distance"),
    ("dest_state", "distance"),
    ("fl_time", "distance"),
)


def _relation():
    return generate_flights(
        num_rows=active_scale().flights_rows, seed=7
    ).coarse


def _builder(relation):
    return (
        SummaryBuilder(relation)
        .pairs(*PAIRS)
        .per_pair_budget(TOTAL_PER_PAIR_BUDGET)
        .iterations(ITERATIONS)
    )


def test_sharded_build_speedup():
    """Acceptance: a 4-shard build beats the global fit by >= 2x."""
    relation = _relation()
    _builder(relation).iterations(2).fit()  # warm numpy/solver caches

    start = time.perf_counter()
    unsharded = _builder(relation).name("flights-flat").fit()
    flat_time = time.perf_counter() - start

    start = time.perf_counter()
    sharded = (
        _builder(relation).name("flights-sharded").shards(NUM_SHARDS).fit()
    )
    sharded_time = time.perf_counter() - start

    print(
        f"\nbuild: unsharded {flat_time:.2f}s "
        f"({unsharded.polynomial.num_terms} terms) vs {NUM_SHARDS} shards "
        f"{sharded_time:.2f}s ({sharded.size_report()['num_terms']} terms "
        f"total) — {flat_time / sharded_time:.2f}x"
    )
    REPORT.record(
        {
            "num_shards": NUM_SHARDS,
            "unsharded_build_s": round(flat_time, 3),
            "sharded_build_s": round(sharded_time, 3),
            "build_speedup": round(flat_time / sharded_time, 2),
        },
        thresholds=[("build_speedup", ">=", 2.0)],
    )
    assert sharded.total == relation.num_rows
    assert flat_time >= 2.0 * sharded_time, (
        f"sharded build {sharded_time:.2f}s not 2x faster than "
        f"unsharded {flat_time:.2f}s"
    )


def _workload(schema, rng, count):
    """Mixed single- and two-attribute range/point counting queries."""
    predicates = []
    origin_size = schema.domain("origin_state").size
    time_size = schema.domain("fl_time").size
    distance_size = schema.domain("distance").size
    for index in range(count):
        state = int(rng.integers(0, origin_size))
        if index % 3 == 0:
            predicates.append(
                Conjunction(schema, {"origin_state": RangePredicate.point(state)})
            )
        elif index % 3 == 1:
            low = int(rng.integers(0, distance_size - 12))
            predicates.append(
                Conjunction(
                    schema,
                    {
                        "origin_state": RangePredicate.point(state),
                        "distance": RangePredicate(low, low + 11),
                    },
                )
            )
        else:
            low = int(rng.integers(0, time_size - 8))
            predicates.append(
                Conjunction(schema, {"fl_time": RangePredicate(low, low + 7)})
            )
    return predicates


def test_sharded_estimates_match_unsharded():
    """Merged answers track the global model within documented bounds.

    Single-attribute counts agree per query (2% + 0.5, both models
    reproduce the fitted marginals).  Multi-attribute conjunctions are
    where two independently fitted MaxEnt models legitimately differ
    (each shard has 1/n of the 2D buckets), so the bound is aggregate
    and anchored to ground truth: the sharded model's mean relative
    error stays below 2x the unsharded model's.
    """
    relation = _relation()
    unsharded = _builder(relation).fit()
    sharded = _builder(relation).shards(NUM_SHARDS).fit()
    predicates = _workload(relation.schema, np.random.default_rng(29), 60)

    flat_errors = []
    sharded_errors = []
    for predicate in predicates:
        exact = float(relation.count_where(predicate.attribute_masks()))
        reference = unsharded.engine.estimate(predicate).expectation
        merged = sharded.estimate(predicate).expectation
        if len(predicate.constrained_positions) == 1:
            assert merged == pytest.approx(reference, rel=0.02, abs=0.5), (
                f"{predicate!r}: sharded {merged:.2f} vs unsharded "
                f"{reference:.2f} exceeds the 2% single-attribute tolerance"
            )
        flat_errors.append(abs(reference - exact) / max(exact, 8.0))
        sharded_errors.append(abs(merged - exact) / max(exact, 8.0))
    flat_error = np.mean(flat_errors)
    sharded_error = np.mean(sharded_errors)
    print(
        f"\naccuracy over {len(predicates)} queries: mean relative error "
        f"unsharded {flat_error:.4f} vs sharded {sharded_error:.4f} "
        f"({sharded_error / flat_error:.2f}x)"
    )
    REPORT.record(
        {
            "accuracy_queries": len(predicates),
            "mean_rel_error_unsharded": round(float(flat_error), 5),
            "mean_rel_error_sharded": round(float(sharded_error), 5),
            "error_ratio": round(float(sharded_error / flat_error), 3),
        },
        thresholds=[("error_ratio", "<=", 2.0)],
    )
    assert sharded_error <= 2.0 * flat_error, (
        f"sharded mean error {sharded_error:.4f} exceeds 2x the "
        f"unsharded {flat_error:.4f}"
    )


def test_sharded_batch_query_latency():
    """Large batches are served at least as fast by the sharded model."""
    relation = _relation()
    unsharded = _builder(relation).fit()
    sharded = _builder(relation).shards(NUM_SHARDS).fit()
    predicates = _workload(relation.schema, np.random.default_rng(31), 96)

    flat_session = Explorer.attach(unsharded)
    sharded_session = Explorer.attach(sharded)

    def run(session):
        session.clear_cache()
        start = time.perf_counter()
        values = session.count_many(predicates)
        return time.perf_counter() - start, values

    rounds = [(run(flat_session), run(sharded_session)) for _ in range(3)]
    flat_time = min(elapsed for (elapsed, _), _ in rounds)
    sharded_time = min(elapsed for _, (elapsed, _) in rounds)
    print(
        f"\nbatch of {len(predicates)}: unsharded {flat_time * 1e3:.1f} ms vs "
        f"{NUM_SHARDS} shards {sharded_time * 1e3:.1f} ms "
        f"({flat_time / sharded_time:.2f}x)"
    )
    REPORT.record(
        {
            "batch_queries": len(predicates),
            "batch_ms_unsharded": round(flat_time * 1e3, 2),
            "batch_ms_sharded": round(sharded_time * 1e3, 2),
            "batch_time_ratio": round(sharded_time / flat_time, 3),
        },
        thresholds=[("batch_time_ratio", "<=", 1.5)],
    )
    # The sharded pass does strictly more bookkeeping per query, so
    # allow a little noise; in practice the smaller per-shard
    # polynomials make it faster outright.
    assert sharded_time <= 1.5 * flat_time, (
        f"sharded batch {sharded_time * 1e3:.1f} ms much slower than "
        f"unsharded {flat_time * 1e3:.1f} ms"
    )
