"""Extension bench: hierarchical summaries (Sec 7 future work).

Not a paper figure — this quantifies the design the paper sketches:
a coarse state-level summary serving group queries instantly, with
per-state city-level polynomials built lazily on first drill-down.
Measured: coarse-query latency, first-drill (leaf build) latency,
warm-drill latency, and drill-down accuracy.
"""

import time

import numpy as np

from benchmarks.conftest import publish
from repro.core.hierarchy import HierarchicalSummary
from repro.evaluation.metrics import relative_error
from repro.evaluation.reporting import ExperimentResult
from repro.stats.predicates import Conjunction, RangePredicate, SetPredicate


def _build_hierarchy(store):
    dataset = store.flights()
    relation = dataset.fine.project(["origin_city", "fl_time", "distance"])
    hierarchy = HierarchicalSummary(
        relation,
        "origin_city",
        coarsen=lambda label: label[0],  # (state, city) -> state
        coarse_kwargs={
            "pairs": [("origin_city", "distance")],
            "per_pair_budget": 60,
            "max_iterations": 10,
        },
        leaf_kwargs={"max_iterations": 10},
    )
    return relation, hierarchy


def test_hierarchical_drilldown(benchmark, store, results_dir):
    relation, hierarchy = benchmark.pedantic(
        lambda: _build_hierarchy(store), rounds=1, iterations=1
    )
    schema = relation.schema
    domain = schema.domain("origin_city")

    result = ExperimentResult(
        "Hierarchical summaries (Sec 7 extension)",
        "Coarse state queries vs lazy city drill-downs on FlightsFine "
        f"origin cities ({hierarchy.num_groups} states, "
        f"{domain.size} cities).",
    )

    rows = []
    # Coarse query: one whole state.
    wa_cities = [
        index for index, label in enumerate(domain.labels) if label[0] == "WA"
    ]
    state_query = Conjunction(schema, {"origin_city": SetPredicate(wa_cities)})
    start = time.perf_counter()
    estimate = hierarchy.count(state_query)
    coarse_ms = (time.perf_counter() - start) * 1e3
    truth = relation.count_where(state_query.attribute_masks())
    rows.append(
        {
            "query": "whole state (coarse level)",
            "latency_ms": coarse_ms,
            "rel_error": relative_error(truth, estimate.expectation),
            "leaves_built": hierarchy.leaf_builds,
        }
    )

    # Cold and warm drill-downs on the busiest cities.
    marginal = relation.marginal("origin_city")
    busiest = np.argsort(marginal)[::-1][:5]
    for label_index in busiest.tolist():
        query = Conjunction(
            schema, {"origin_city": RangePredicate.point(label_index)}
        )
        builds_before = hierarchy.leaf_builds
        start = time.perf_counter()
        estimate = hierarchy.count(query)
        cold_ms = (time.perf_counter() - start) * 1e3
        built_now = hierarchy.leaf_builds > builds_before
        start = time.perf_counter()
        hierarchy.count(query)
        warm_ms = (time.perf_counter() - start) * 1e3
        truth = relation.count_where(query.attribute_masks())
        rows.append(
            {
                "query": f"city {domain.label_of(label_index)[1]} (drill)",
                "latency_ms": cold_ms,
                "warm_ms": warm_ms,
                "built_leaf": built_now,
                "rel_error": relative_error(truth, estimate.expectation),
                "leaves_built": hierarchy.leaf_builds,
            }
        )
    result.add_section("coarse vs drill-down", rows)
    publish(result, results_dir, "hierarchy_extension")

    # Assertions: lazy building, warm drills cheaper than leaf-building
    # cold drills, accurate answers at both levels.
    assert rows[0]["leaves_built"] == 0
    assert rows[-1]["leaves_built"] >= 1
    for row in rows:
        assert row["rel_error"] < 0.05, row
        if row.get("built_leaf"):
            assert row["warm_ms"] < row["latency_ms"]
