"""Sec 3.3 / 6.1: solver cost and convergence.

The paper reports model computation as the dominant preprocessing cost
(30 Mirror Descent sweeps, error threshold 1e-6).  These benchmarks
time one full sweep and a complete solve on the mid-size
configuration, and publish the per-configuration convergence table.
"""

from benchmarks.conftest import publish
from repro.core.polynomial import CompressedPolynomial
from repro.core.solver import MirrorDescentSolver
from repro.experiments.solver_trace import run_solver_trace
from repro.stats.selection import build_statistic_set


def test_solver_trace_table(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_solver_trace(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "solver_trace")

    for row in result.rows("per-configuration cost"):
        # Error trace must reach well under 1% relative violation.
        assert row["final_error"] < 0.01, row
    traces = result.rows("error trace")
    for method in {row["method"] for row in traces}:
        errors = [row["max_error"] for row in traces if row["method"] == method]
        assert errors[-1] < errors[0], method


def _mid_polynomial(store):
    relation = store.flights_relation("coarse")
    statistic_set = build_statistic_set(
        relation,
        pairs=[("fl_time", "distance"), ("origin_state", "dest_state")],
        per_pair_budget=min(store.scale.budget_two_pairs, 300),
    )
    return CompressedPolynomial(statistic_set)


def test_single_sweep(benchmark, store):
    poly = _mid_polynomial(store)
    solver = MirrorDescentSolver(poly, max_iterations=1)

    def one_sweep():
        params, report = solver.solve()
        return report

    report = benchmark.pedantic(one_sweep, rounds=3, iterations=1)
    assert report.iterations == 1


def test_full_solve(benchmark, store):
    poly = _mid_polynomial(store)
    iterations = store.scale.solver_iterations

    def solve():
        solver = MirrorDescentSolver(poly, max_iterations=iterations)
        _, report = solver.solve()
        return report

    report = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert report.final_error < 0.01


def test_polynomial_construction(benchmark, store):
    """Term enumeration cost (the other half of preprocessing)."""
    relation = store.flights_relation("coarse")
    statistic_set = build_statistic_set(
        relation,
        pairs=[("fl_time", "distance"), ("origin_state", "dest_state")],
        per_pair_budget=min(store.scale.budget_two_pairs, 300),
    )
    poly = benchmark(CompressedPolynomial, statistic_set)
    assert poly.num_terms > 0
