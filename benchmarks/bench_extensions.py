"""Extension benches: variance calibration + pair-strategy ablation.

Both exercise claims the paper states but does not plot: the Sec 7
variance formula's calibration, and Sec 6.4's "cover beats
correlation for the same budget" conclusion.
"""

from benchmarks.conftest import publish
from repro.experiments.strategy_ablation import run_strategy_ablation
from repro.experiments.variance import run_variance


def test_variance_calibration(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_variance(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "variance_calibration")

    rows = result.rows("95% interval coverage")
    covered = [
        row for row in rows
        if row["template"].startswith("covered") and row["workload"] == "heavy"
    ]
    uncovered = [
        row for row in rows
        if row["template"].startswith("uncovered") and row["workload"] == "heavy"
    ]
    # Model bias dominates where no 2D statistic covers the template:
    # coverage there must be materially worse than on covered ones.
    best_covered = max(row["coverage"] for row in covered)
    assert best_covered > max(row["coverage"] for row in uncovered)


def test_strategy_ablation(benchmark, store, results_dir):
    result = benchmark.pedantic(
        lambda: run_strategy_ablation(store), rounds=1, iterations=1
    )
    publish(result, results_dir, "strategy_ablation")

    # The data-independent mechanism behind Sec 6.4's conclusion: each
    # strategy wins on the templates its chosen pairs actually cover.
    # (The overall winner depends on the data's correlation profile —
    # see EXPERIMENTS.md.)  Cover uniquely holds the (origin, dest)
    # statistic here; correlation uniquely holds (dest, distance).
    per_template = result.rows("per-template heavy-hitter error")

    def error(strategy, template):
        return next(
            row["heavy_error"]
            for row in per_template
            if row["strategy"] == strategy and row["template"] == template
        )

    pair4 = "origin_state & dest_state"
    pair2 = "dest_state & distance"
    assert error("cover", pair4) < error("correlation", pair4)
    assert error("correlation", pair2) < error("cover", pair2)
