# Development entry points.  The tier-1 verify command is `make test`.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke serve-smoke lint install docs-check

test:
	$(PYTHON) -m pytest -x -q

# Quick benchmark pass at the small scale: the interactive-latency
# suite, including the run_many()-vs-sequential acceptance check.
bench-smoke:
	REPRO_SCALE=small $(PYTHON) -m pytest -q benchmarks/bench_query_latency.py

# Serving-layer smoke: boot the server on a tiny summary, fire 50
# concurrent requests through the real client, assert zero errors and
# a warm cache (the CI serve-smoke job runs exactly this).
serve-smoke:
	REPRO_SCALE=small $(PYTHON) -m pytest -q -s benchmarks/bench_serve.py::test_serve_smoke

# Lint: ruff when available (the CI lint job installs it; this offline
# image may not have it — see [tool.ruff] in pyproject.toml for the
# rule gate), then the always-available compile + import smoke checks.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; skipping (compileall/import smoke still run)"; \
	fi
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -W error::SyntaxWarning -c "import repro, repro.api, repro.plan, repro.serve, repro.cli, repro.experiments"

# Documentation rot check: every ```python block in README.md and
# docs/*.md must compile, every relative link must resolve.
docs-check:
	$(PYTHON) tools/check_docs.py

# Editable install.  This offline image lacks `wheel`, so PEP 660
# editable builds fail; setup.py develop reads the same pyproject
# metadata (see setup.py).  Use `pip install -e .` where wheel exists.
install:
	$(PYTHON) setup.py -q develop
