# Development entry points.  The tier-1 verify command is `make test`.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke lint install docs-check

test:
	$(PYTHON) -m pytest -x -q

# Quick benchmark pass at the small scale: the interactive-latency
# suite, including the run_many()-vs-sequential acceptance check.
bench-smoke:
	REPRO_SCALE=small $(PYTHON) -m pytest -q benchmarks/bench_query_latency.py

# No third-party linter is baked into this image; compileall catches
# syntax errors and the -W error import smoke catches warnings-on-import.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -W error::SyntaxWarning -c "import repro, repro.api, repro.cli, repro.experiments"

# Documentation rot check: every ```python block in README.md and
# docs/*.md must compile, every relative link must resolve.
docs-check:
	$(PYTHON) tools/check_docs.py

# Editable install.  This offline image lacks `wheel`, so PEP 660
# editable builds fail; setup.py develop reads the same pyproject
# metadata (see setup.py).  Use `pip install -e .` where wheel exists.
install:
	$(PYTHON) setup.py -q develop
