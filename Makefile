# Development entry points.  The tier-1 verify command is `make test`.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke bench-all check-bench serve-smoke cluster-smoke obs-smoke soak-smoke soak-full lint install docs-check analyze

test:
	$(PYTHON) -m pytest -x -q

# Quick benchmark pass at the small scale: the interactive-latency
# suite, including the run_many()-vs-sequential acceptance check.
# Median-of-3 via the check_bench runner, so one noisy wall-clock
# comparison on a shared runner cannot fail the job on its own.
bench-smoke:
	REPRO_SCALE=small $(PYTHON) tools/check_bench.py run --repeat 3 \
		--out-dir benchmarks/results/smoke -- -q benchmarks/bench_query_latency.py

#: The acceptance suites that emit BENCH_<name>.json reports.
BENCH_SUITES = benchmarks/bench_planner.py benchmarks/bench_sharding.py \
	benchmarks/bench_serve.py benchmarks/bench_wire.py \
	benchmarks/bench_ingest.py benchmarks/bench_soak.py \
	benchmarks/bench_cluster.py

# Run every report-emitting acceptance suite 3x (reports land in
# benchmarks/results/perf/runN/); passes on a majority of runs.
bench-all:
	REPRO_SCALE=small $(PYTHON) tools/check_bench.py run --repeat 3 \
		--out-dir benchmarks/results/perf -- -q $(BENCH_SUITES)

# The CI perf-regression gate: bench-all, then compare the per-metric
# medians against the checked-in baselines (speedups may regress <=20%,
# error metrics may not grow).  `python tools/check_bench.py update`
# rewrites the baselines from fresh runs when a change legitimately
# moves the numbers.
check-bench: bench-all
	$(PYTHON) tools/check_bench.py compare --runs-root benchmarks/results/perf

# Serving-layer smoke: boot the server on a tiny summary, fire 50
# concurrent requests through the real client, assert zero errors and
# a warm cache (the CI serve-smoke job runs exactly this).
serve-smoke:
	REPRO_SCALE=small $(PYTHON) -m pytest -q -s benchmarks/bench_serve.py::test_serve_smoke

# Cluster smoke: the multi-worker tier end to end — frontend + worker
# pool, 100 concurrent requests with a worker killed mid-run (zero
# dropped requests), then the 1-vs-4 scaling curve gated against the
# checked-in BENCH_cluster.json baseline.  Worker stdout/stderr lands
# in cluster_logs/ so a failing CI run uploads diagnosable output.
cluster-smoke:
	REPRO_SCALE=small REPRO_CLUSTER_LOG_DIR=cluster_logs \
		$(PYTHON) tools/check_bench.py run --repeat 3 \
		--out-dir benchmarks/results/cluster -- -q benchmarks/bench_cluster.py
	$(PYTHON) tools/check_bench.py compare \
		--runs-root benchmarks/results/cluster cluster

# Observability smoke: boot a server with the slow-query log armed,
# drive 50 requests, assert the Prometheus scrape parses, every
# declared metric family is present, traces reach the ring, and the
# slow-query JSONL has evidence-bearing entries (the CI obs-smoke job
# runs exactly this and uploads obs_smoke_slowlog.jsonl on failure).
obs-smoke:
	$(PYTHON) tools/obs_smoke.py

# Chaos soak smoke: the short seeded scenarios as tests (--soak tier),
# then a 30 s all-fault CLI soak whose invariants must hold.  The event
# log lands in soak_events.jsonl BEFORE the exit code is computed, so a
# failing CI soak always uploads a diagnosable artifact.
soak-smoke:
	$(PYTHON) -m pytest -q --soak tests/test_chaos.py
	$(PYTHON) -m repro soak --duration 30 --seed 7 --faults all \
		--events soak_events.jsonl --out soak_report.json

# The nightly-length soak: 120 s, every fault enabled, same seed so a
# failure replays locally with the identical fault schedule.
soak-full:
	$(PYTHON) -m repro soak --duration 120 --seed 7 --faults all \
		--events soak_events.jsonl --out soak_report.json

# Lint: ruff when available (the CI lint job installs it; this offline
# image may not have it — see [tool.ruff] in pyproject.toml for the
# rule gate), then the always-available compile + import smoke checks.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not installed; skipping (compileall/import smoke still run)"; \
	fi
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -W error::SyntaxWarning -c "import repro, repro.api, repro.plan, repro.serve, repro.chaos, repro.cli, repro.experiments"

# Documentation rot check: every ```python block in README.md and
# docs/*.md must compile, every relative link must resolve.
docs-check:
	$(PYTHON) tools/check_docs.py

# Repo-specific static analysis (docs/analysis.md has the rule
# catalogue).  Three passes, in cost order:
#   1. repro-analyze over src/ (always available — stdlib only), with
#      the JSON report written for the CI artifact;
#   2. the serve/ingest suites re-run under the lock-order watchdog;
#   3. mypy over plan/ + api/ when installed (the CI analyze job
#      installs it; this offline image may not have it).
analyze:
	$(PYTHON) -m tools.analyze src --out analyze_report.json
	REPRO_LOCKORDER=1 $(PYTHON) -m pytest -q tests/test_serve.py tests/test_ingest.py
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/plan src/repro/api; \
	else \
		echo "mypy not installed; skipping (the CI analyze job runs it)"; \
	fi

# Editable install.  This offline image lacks `wheel`, so PEP 660
# editable builds fail; setup.py develop reads the same pyproject
# metadata (see setup.py).  Use `pip install -e .` where wheel exists.
install:
	$(PYTHON) setup.py -q develop
