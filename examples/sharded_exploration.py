"""Sharded summaries on the flights dataset: build fast, merge at query.

One global MaxEnt fit is solver-bound: its polynomial grows
superlinearly with the 2D bucket budget.  ``SummaryBuilder.shards(n)``
partitions the relation, divides the budget across shards (total model
size stays constant), fits the per-shard models in parallel worker
processes, and answers queries by evaluating shards independently and
merging — counts add, error bounds combine in quadrature.

This script builds the same configuration unsharded and 4-way sharded,
compares build time, answer quality, and batch latency, then shows
attribute partitioning (``by="origin_state"``), where queries that
constrain the shard attribute prune non-owning shards entirely.

Run:  python examples/sharded_exploration.py            (small data)
      REPRO_ROWS=200000 python examples/sharded_exploration.py
"""

import os
import time

from repro.api import Explorer, SummaryBuilder, SummaryStore
from repro.datasets import generate_flights

PAIRS = (
    ("origin_state", "distance"),
    ("dest_state", "distance"),
    ("fl_time", "distance"),
)


def build(relation, shards=0, by=None):
    builder = (
        SummaryBuilder(relation)
        .pairs(*PAIRS)
        .per_pair_budget(160)
        .iterations(15)
        .name("flights")
    )
    if shards:
        builder.shards(shards, by=by)
    start = time.perf_counter()
    summary = builder.fit()
    return summary, time.perf_counter() - start


def main() -> None:
    num_rows = int(os.environ.get("REPRO_ROWS", "60000"))
    print(f"generating {num_rows} synthetic flights ...")
    dataset = generate_flights(num_rows=num_rows, seed=7)
    relation = dataset.coarse

    print("\n-- build: one global fit vs 4 round-robin shards --")
    flat, flat_time = build(relation)
    sharded, sharded_time = build(relation, shards=4)
    print(f"  unsharded: {flat_time:5.2f}s  {flat!r}")
    print(f"  sharded  : {sharded_time:5.2f}s  {sharded!r}")
    print(f"  speedup  : {flat_time / sharded_time:.2f}x")

    exact = Explorer.attach(relation)
    flat_session = Explorer.attach(flat)
    sharded_session = Explorer.attach(sharded)

    print("\n-- answer quality: merged vs global vs exact --")
    sql = (
        "SELECT COUNT(*) FROM R "
        "WHERE origin_state = 'CA' AND distance >= 1000"
    )
    merged = sharded_session.sql(sql)
    print(f"  exact    : {exact.sql(sql).scalar:9.0f}")
    print(f"  unsharded: {flat_session.sql(sql).scalar:9.1f}")
    print(
        f"  sharded  : {merged.scalar:9.1f}   "
        f"± {merged.std:.1f} (quadrature-merged bounds)"
    )

    print("\n-- batched drill-down through Explorer.run_many --")
    buckets = relation.schema.domain("distance").labels
    span = (buckets[0].low, buckets[-1].high)
    width = (span[1] - span[0]) / 16
    bands = [
        (span[0] + index * width, span[0] + (index + 1) * width)
        for index in range(16)
    ]
    queries = [
        sharded_session.query().where(distance__between=band).to_ast()
        for band in bands
    ]
    for name, session in (("unsharded", flat_session), ("sharded", sharded_session)):
        session.clear_cache()
        start = time.perf_counter()
        session.run_many(queries)
        print(f"  {name:9s}: {len(queries)} queries in "
              f"{(time.perf_counter() - start) * 1e3:6.1f} ms")

    print("\n-- attribute partitioning: shard by origin_state --")
    by_state, by_time = build(relation, shards=4, by="origin_state")
    print(f"  built in {by_time:.2f}s: {by_state!r}")
    session = Explorer.attach(by_state)
    by_state.clear_cache()
    value = session.sql(
        "SELECT COUNT(*) FROM R WHERE origin_state = 'CA'"
    ).scalar
    touched = sum(
        1 for shard in by_state.shards if shard.engine.cache_misses > 0
    )
    print(
        f"  COUNT(origin_state='CA') = {value:.1f} touched "
        f"{touched}/{by_state.num_shards} shards (others pruned)"
    )

    print("\n-- persistence: the shard set is one named version --")
    store = SummaryStore(os.environ.get("REPRO_STORE", ".cache/example-store"))
    record = store.save(by_state, "flights-by-state", tag="demo")
    print(f"  stored as {record.describe()}")
    reopened = Explorer.open(store, "flights-by-state")
    print(f"  reopened: {reopened.summary!r}")


if __name__ == "__main__":
    main()
