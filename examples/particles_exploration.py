"""Exploring N-body simulation snapshots with a MaxEnt summary.

Mirrors the paper's astronomy use case (Sec 6.3): a scientist asks
aggregate questions over a large particle table — cluster membership,
density profiles, per-type mass distributions — against a compact
summary instead of the raw snapshots.

Run:  python examples/particles_exploration.py
"""

import os
import time

from repro.api import Explorer, SummaryBuilder
from repro.baselines import stratified_sample
from repro.datasets import generate_particles
from repro.stats import pair_correlations


def main() -> None:
    rows = int(os.environ.get("REPRO_ROWS", "40000"))
    print(f"generating particles ({rows} per snapshot x 3 snapshots) ...")
    dataset = generate_particles(rows_per_snapshot=rows, seed=11)
    relation = dataset.relation

    print("\nmost correlated attribute pairs (candidates for 2D stats):")
    names = relation.schema.attribute_names
    for (a, b), score in pair_correlations(relation)[:5]:
        print(f"  {names[a]:9s} x {names[b]:9s}  V = {score:.3f}")

    print("\nbuilding the EntAll summary (top pairs, 60 buckets each) ...")
    start = time.perf_counter()
    summary = (
        SummaryBuilder(relation)
        .pairs(("density", "grp"), ("mass", "type"), ("x", "y"))
        .per_pair_budget(60)
        .iterations(20)
        .name("EntAll")
        .fit()
    )
    print(f"  built in {time.perf_counter() - start:.1f}s — {summary!r}")

    approx = Explorer.attach(summary, table_name="Particles")
    exact = Explorer.attach(relation, table_name="Particles")
    strat = Explorer.attach(
        stratified_sample(relation, ("density", "grp"), fraction=0.01, seed=5),
        table_name="Particles",
    )

    questions = [
        (
            "clustered star particles",
            "SELECT COUNT(*) FROM Particles WHERE grp = 1 AND type = 'star'",
        ),
        (
            "dense gas outside clusters (rare!)",
            "SELECT COUNT(*) FROM Particles WHERE grp = 0 AND type = 'gas' "
            "AND density >= 40",
        ),
        (
            "central region of the box",
            "SELECT COUNT(*) FROM Particles WHERE x BETWEEN 0.4 AND 0.6 "
            "AND y BETWEEN 0.4 AND 0.6 AND z BETWEEN 0.4 AND 0.6",
        ),
        (
            "first snapshot only",
            "SELECT COUNT(*) FROM Particles WHERE snapshot = 0 AND grp = 1",
        ),
    ]
    print(f"\n{'question':40s} {'summary':>10s} {'strat 1%':>10s} {'exact':>9s}")
    for label, sql in questions:
        print(
            f"{label:40s} {approx.count(sql):10.1f} "
            f"{strat.count(sql):10.1f} {exact.count(sql):9.0f}"
        )

    # Per-type breakdown through the model.
    print("\nparticle counts by type (summary GROUP BY):")
    result = approx.execute(
        "SELECT type, COUNT(*) AS cnt FROM Particles GROUP BY type "
        "ORDER BY cnt DESC"
    )
    for row in result.rows:
        print(f"  {row.labels[0]:5s} {row.count:10.1f}")

    print("\ncluster fraction per snapshot (summary vs exact):")
    for snapshot in (0, 1, 2):
        sql = (
            f"SELECT COUNT(*) FROM Particles WHERE snapshot = {snapshot} "
            "AND grp = 1"
        )
        print(
            f"  snapshot {snapshot}: {approx.count(sql):10.1f}  "
            f"(exact {exact.count(sql):.0f})"
        )


if __name__ == "__main__":
    main()
