"""Interactive flights exploration — the paper's motivating scenario.

A data analyst explores a flights dataset at "human speed" (Sec 1):
drill into routes, compare against a 1% uniform sample, and watch the
summary distinguish *rare* routes from *nonexistent* ones — the
capability sampling lacks.

Run:  python examples/flights_exploration.py            (small data)
      REPRO_ROWS=200000 python examples/flights_exploration.py
"""

import os
import time

from repro.api import Explorer, SummaryBuilder
from repro.baselines import uniform_sample
from repro.datasets import generate_flights


def main() -> None:
    num_rows = int(os.environ.get("REPRO_ROWS", "60000"))
    print(f"generating {num_rows} synthetic flights ...")
    dataset = generate_flights(num_rows=num_rows, seed=7)
    relation = dataset.coarse

    print("building the Ent1&2&3 summary (pairs 1-3 of the paper) ...")
    start = time.perf_counter()
    summary = (
        SummaryBuilder(relation)
        .pairs(
            ("origin_state", "distance"),
            ("dest_state", "distance"),
            ("fl_time", "distance"),
        )
        .per_pair_budget(150)
        .iterations(20)
        .name("Ent1&2&3")
        .fit()
    )
    print(f"  built in {time.perf_counter() - start:.1f}s — {summary!r}\n")

    approx = Explorer.attach(summary, table_name="Flights")
    exact = Explorer.attach(relation, table_name="Flights")
    sample = Explorer.attach(
        uniform_sample(relation, fraction=0.01, seed=3), table_name="Flights"
    )

    # -- the intro's question: how many flights CA -> NY? --------------
    sql = (
        "SELECT COUNT(*) FROM Flights "
        "WHERE origin_state = 'CA' AND dest_state = 'NY'"
    )
    print("Q1 (intro scenario): flights from CA to NY")
    _compare(sql, approx, sample, exact)

    # -- drill-down: long CA departures ---------------------------------
    sql = (
        "SELECT COUNT(*) FROM Flights "
        "WHERE origin_state = 'CA' AND distance >= 2000"
    )
    print("\nQ2: long-haul departures from CA")
    _compare(sql, approx, sample, exact)

    # -- top destinations (GROUP BY) ------------------------------------
    print("\nQ3: top-5 destination states (summary vs exact)")
    top_approx = approx.execute(
        "SELECT dest_state, COUNT(*) AS cnt FROM Flights "
        "GROUP BY dest_state ORDER BY cnt DESC LIMIT 5"
    )
    top_exact = exact.execute(
        "SELECT dest_state, COUNT(*) AS cnt FROM Flights "
        "GROUP BY dest_state ORDER BY cnt DESC LIMIT 5"
    )
    for approx_row, exact_row in zip(top_approx.rows, top_exact.rows):
        print(
            f"  approx {approx_row.labels[0]:3s} {approx_row.count:9.0f}   "
            f"exact {exact_row.labels[0]:3s} {exact_row.count:7.0f}"
        )

    # -- batched drill-down: one inference pass for many queries --------
    print("\nQ3b: CA departures by distance band (fluent run_many batch)")
    bands = [(0, 499), (500, 999), (1000, 1999), (2000, 5000)]
    batch = approx.run_many(
        [
            approx.query().where(
                origin_state="CA", distance__between=band
            )
            for band in bands
        ]
    )
    for band, result in zip(bands, batch):
        print(f"  {band[0]:4d}-{band[1]:4d} mi: {result.scalar:9.1f}")

    # -- rare vs nonexistent --------------------------------------------
    print("\nQ4: rare vs nonexistent routes (the sampling failure mode)")
    groups = relation.group_by_counts(["origin_state", "dest_state"])
    rare = min(
        (key for key, count in groups.items() if count > 0),
        key=lambda key: groups[key],
    )
    origin_domain = relation.schema.domain("origin_state")
    dest_domain = relation.schema.domain("dest_state")
    rare_sql = (
        "SELECT COUNT(*) FROM Flights WHERE origin_state = "
        f"'{origin_domain.label_of(rare[0])}' AND dest_state = "
        f"'{dest_domain.label_of(rare[1])}'"
    )
    print(f"  rare route {origin_domain.label_of(rare[0])}->"
          f"{dest_domain.label_of(rare[1])} (true count {groups[rare]}):")
    _compare(rare_sql, approx, sample, exact, indent=4)

    missing = next(
        (a, b)
        for a in range(54)
        for b in range(54)
        if a != b and (a, b) not in groups
    )
    missing_sql = (
        "SELECT COUNT(*) FROM Flights WHERE origin_state = "
        f"'{origin_domain.label_of(missing[0])}' AND dest_state = "
        f"'{dest_domain.label_of(missing[1])}'"
    )
    print(f"  nonexistent route {origin_domain.label_of(missing[0])}->"
          f"{dest_domain.label_of(missing[1])} (true count 0):")
    _compare(missing_sql, approx, sample, exact, indent=4)
    print(
        "\nThe 1% sample answers 0 for BOTH routes — it cannot tell rare"
        "\nfrom missing. The summary can infer something about every query"
        "\n(Sec 1); with a 2D statistic over (origin, dest) — the paper's"
        "\nEnt3&4 — it would also pin the missing route near 0."
    )


def _compare(sql, approx, sample, exact, indent=2) -> None:
    pad = " " * indent
    start = time.perf_counter()
    approx_answer = approx.count(sql)
    approx_ms = (time.perf_counter() - start) * 1e3
    sample_answer = sample.count(sql)
    exact_answer = exact.count(sql)
    print(f"{pad}summary : {approx_answer:10.1f}   ({approx_ms:.2f} ms)")
    print(f"{pad}1% sample: {sample_answer:9.1f}")
    print(f"{pad}exact    : {exact_answer:9.0f}")


if __name__ == "__main__":
    main()
