"""Hierarchical summaries: drill from states down to cities (Sec 7).

The paper's future-work proposal for large categorical domains: keep a
small coarse summary (states) for most queries and build per-state
fine summaries (cities) lazily only when a query actually drills down.
This example also demonstrates possible-world sampling — generating a
plausible synthetic instance straight from a fitted model.

Run:  python examples/hierarchical_drilldown.py
"""

import time

import numpy as np

from repro import Domain, Relation, Schema, integer_domain
from repro.core import HierarchicalSummary, sample_world_sequential
from repro.stats.predicates import Conjunction, RangePredicate, SetPredicate


def build_city_relation(num_rows: int = 20_000, seed: int = 13) -> Relation:
    """Flight departures by city: a 21-value city attribute grouped
    into 6 states, plus an hour-of-day attribute."""
    states = {
        "WA": ["Seattle", "Spokane", "Tacoma"],
        "CA": ["LA", "SF", "Fresno", "Oakland", "SanDiego"],
        "NY": ["NYC", "Buffalo", "Albany"],
        "TX": ["Houston", "Dallas", "Austin", "ElPaso"],
        "FL": ["Miami", "Orlando", "Tampa"],
        "IL": ["Chicago", "Springfield", "Peoria"],
    }
    labels = [(state, city) for state, cities in states.items() for city in cities]
    schema = Schema([Domain("city", labels), integer_domain("hour", 24)])
    rng = np.random.default_rng(seed)
    popularity = 1.0 / (np.arange(len(labels)) + 1.0) ** 0.9
    popularity /= popularity.sum()
    city = rng.choice(len(labels), size=num_rows, p=popularity)
    hour = np.clip(
        rng.normal(13, 4, num_rows).astype(np.int64) + (city % 3), 0, 23
    )
    return Relation(schema, [city, hour])


def main() -> None:
    relation = build_city_relation()
    print(f"data: {relation!r}")

    start = time.perf_counter()
    hierarchy = HierarchicalSummary(
        relation,
        "city",
        coarsen=lambda label: label[0],
        coarse_kwargs={
            "pairs": [("city", "hour")], "per_pair_budget": 12,
            "max_iterations": 30,
        },
        leaf_kwargs={"max_iterations": 30},
    )
    print(
        f"coarse summary over {hierarchy.num_groups} states built in "
        f"{time.perf_counter() - start:.1f}s (0 leaves yet)\n"
    )

    schema = relation.schema
    city_domain = schema.domain("city")

    def truth(predicate):
        return relation.count_where(predicate.attribute_masks())

    # State-level query: served by the coarse model, no leaf built.
    wa_cities = [i for i, label in enumerate(city_domain.labels) if label[0] == "WA"]
    state_query = Conjunction(schema, {"city": SetPredicate(wa_cities)})
    estimate = hierarchy.count(state_query)
    print(
        f"all WA departures:        est {estimate.expectation:8.1f}  "
        f"true {truth(state_query):6d}  (leaves built: {hierarchy.leaf_builds})"
    )

    # City-level queries: leaves appear lazily, one per drilled state.
    for city_name in ("Seattle", "SF", "Austin"):
        index = next(
            i for i, label in enumerate(city_domain.labels)
            if label[1] == city_name
        )
        query = Conjunction(schema, {"city": RangePredicate.point(index)})
        start = time.perf_counter()
        estimate = hierarchy.count(query)
        ms = (time.perf_counter() - start) * 1e3
        print(
            f"{city_name:10s} departures:    est {estimate.expectation:8.1f}  "
            f"true {truth(query):6d}  (leaves built: {hierarchy.leaf_builds}, "
            f"{ms:.0f} ms)"
        )

    # Drill with an extra predicate: morning flights from LA.
    la = next(i for i, l in enumerate(city_domain.labels) if l[1] == "LA")
    morning = Conjunction(
        schema, {"city": RangePredicate.point(la), "hour": RangePredicate(6, 11)}
    )
    estimate = hierarchy.count(morning)
    print(
        f"LA morning departures:    est {estimate.expectation:8.1f}  "
        f"true {truth(morning):6d}"
    )

    # ------------------------------------------------------------------
    # Possible-world sampling: synthesize an instance from the CA leaf.
    leaf = hierarchy.leaf("CA")
    world = sample_world_sequential(leaf.polynomial, leaf.params, rng=1)
    print(
        f"\nsampled a synthetic CA world with {world.num_rows} rows; "
        "city marginals (sampled vs model statistic):"
    )
    for index, label in enumerate(leaf.schema.domain("city").labels):
        sampled = int(world.marginal("city")[index])
        expected = leaf.statistic_set.one_dim[
            leaf.schema.position("city")
        ][index]
        print(f"  {label[1]:10s} {sampled:6d} vs {expected:8.1f}")


if __name__ == "__main__":
    main()
