"""Quickstart: summarize a relation and explore it through a session.

Walks the full EntropyDB pipeline on a small synthetic sales table
using the session-oriented API:

1. build a discrete relation,
2. fit a MaxEnt summary with :class:`repro.api.SummaryBuilder`,
3. open an :class:`repro.api.Explorer` session and ask questions —
   fluent queries, SQL, and batched ``run_many()``,
4. inspect error bounds and the summary's size,
5. persist the model into a versioned :class:`repro.api.SummaryStore`.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import Domain, Relation, Schema, integer_domain
from repro.api import Explorer, SummaryBuilder, SummaryStore


def build_sales_relation(num_rows: int = 5000, seed: int = 42) -> Relation:
    """A toy sales table: region and product are correlated, month is
    uniform — the exact setting where a MaxEnt summary shines."""
    schema = Schema(
        [
            Domain("region", ["north", "south", "east", "west"]),
            Domain("product", ["widget", "gadget", "gizmo", "doohickey"]),
            integer_domain("month", 12),
        ]
    )
    rng = np.random.default_rng(seed)
    region = rng.choice(4, size=num_rows, p=[0.4, 0.3, 0.2, 0.1])
    # Each region strongly prefers one product.
    product = np.where(
        rng.random(num_rows) < 0.7, region, rng.integers(0, 4, num_rows)
    )
    month = rng.integers(0, 12, num_rows)
    return Relation(schema, [region, product, month])


def main() -> None:
    relation = build_sales_relation()
    print(f"data: {relation!r}\n")

    # -- 1. fit the summary with the builder ---------------------------
    summary = (
        SummaryBuilder(relation)
        .pairs(("region", "product"))   # the correlated pair
        .per_pair_budget(8)             # 8 KD-tree rectangles
        .iterations(50)
        .name("sales")
        .fit()
    )
    print(f"summary: {summary!r}")
    print(f"solver:  {summary.report!r}")
    size = summary.size_report()
    print(
        f"size:    {size['num_terms']} compressed terms vs "
        f"{size['num_uncompressed_monomials']} monomials uncompressed\n"
    )

    # -- 2. open sessions on the summary and the exact data ------------
    approx = Explorer.attach(summary, table_name="sales")
    exact = Explorer.attach(relation, table_name="sales")

    # Fluent queries — no SQL strings needed.
    queries = [
        approx.query().where(region="north"),
        approx.query().where(region="north", product="widget"),
        approx.query().where(product="gizmo", month__between=(0, 5)),
        approx.query().where(region__in=("east", "west"), month=3),
    ]
    # run_many() answers every counting query of the batch through one
    # vectorized inference pass.
    batch = approx.run_many(queries)
    print(f"{'query':58s}  {'approx':>9s}  {'exact':>7s}")
    for query, result in zip(queries, batch):
        sql = repr(query.to_ast())
        true = exact.sql(sql).scalar
        print(f"{sql[:58]:58s}  {result.scalar:9.1f}  {true:7.0f}")

    # Plain SQL still works against any session.
    sql = "SELECT COUNT(*) FROM sales WHERE region = 'north'"
    assert abs(approx.sql(sql).scalar - batch[0].scalar) < 1e-9

    # -- 3. GROUP BY with ORDER/LIMIT ----------------------------------
    print("\ntop regions (approximate):")
    top = (
        approx.query().group_by("region").order("desc").limit(3).run()
    )
    for labels_and_count in top.to_rows():
        region, count = labels_and_count
        print(f"  {region:8s} {count:9.1f}")

    # -- 4. uncertainty -------------------------------------------------
    result = approx.query().where(region="west", product="widget").run()
    low, high = result.ci95
    true = exact.query().where(region="west", product="widget").value()
    print(
        f"\nwest/widget: {result.scalar:.1f} "
        f"(std {result.std:.1f}, 95% CI [{low:.1f}, {high:.1f}]), true {true:.0f}"
    )

    # -- 5. persist into a versioned store ------------------------------
    with tempfile.TemporaryDirectory() as root:
        store = SummaryStore(root)
        record = store.save(summary, tag="quickstart")
        print(f"\nstored:  {record.describe()}")
        reopened = Explorer.open(store, "sales", table_name="sales")
        reloaded_count = reopened.query().where(region="north").value()
        assert abs(reloaded_count - batch[0].scalar) < 1e-6 * batch[0].scalar
        print("reloaded from store; answers identical.")
    print("done.")


if __name__ == "__main__":
    main()
