"""Quickstart: summarize a relation and ask it questions.

Walks the full EntropyDB pipeline on a small synthetic sales table:

1. build a discrete relation,
2. fit a MaxEnt summary with 2D statistics on the correlated pair,
3. answer SQL counting queries and compare with the exact answers,
4. inspect variance / confidence intervals and the summary's size.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Domain, EntropySummary, Relation, Schema, integer_domain
from repro.baselines import ExactBackend
from repro.query import SQLEngine, SummaryBackend


def build_sales_relation(num_rows: int = 5000, seed: int = 42) -> Relation:
    """A toy sales table: region and product are correlated, month is
    uniform — the exact setting where a MaxEnt summary shines."""
    schema = Schema(
        [
            Domain("region", ["north", "south", "east", "west"]),
            Domain("product", ["widget", "gadget", "gizmo", "doohickey"]),
            integer_domain("month", 12),
        ]
    )
    rng = np.random.default_rng(seed)
    region = rng.choice(4, size=num_rows, p=[0.4, 0.3, 0.2, 0.1])
    # Each region strongly prefers one product.
    product = np.where(
        rng.random(num_rows) < 0.7, region, rng.integers(0, 4, num_rows)
    )
    month = rng.integers(0, 12, num_rows)
    return Relation(schema, [region, product, month])


def main() -> None:
    relation = build_sales_relation()
    print(f"data: {relation!r}\n")

    # -- 1. build the summary -----------------------------------------
    summary = EntropySummary.build(
        relation,
        pairs=[("region", "product")],  # the correlated pair
        per_pair_budget=8,              # 8 KD-tree rectangles
        max_iterations=50,
        name="sales",
    )
    print(f"summary: {summary!r}")
    print(f"solver:  {summary.report!r}")
    size = summary.size_report()
    print(
        f"size:    {size['num_terms']} compressed terms vs "
        f"{size['num_uncompressed_monomials']} monomials uncompressed\n"
    )

    # -- 2. answer SQL against both the summary and the exact data ----
    approx = SQLEngine(SummaryBackend(summary), table_name="sales")
    exact = SQLEngine(ExactBackend(relation), table_name="sales")
    queries = [
        "SELECT COUNT(*) FROM sales WHERE region = 'north'",
        "SELECT COUNT(*) FROM sales WHERE region = 'north' AND product = 'widget'",
        "SELECT COUNT(*) FROM sales WHERE product = 'gizmo' AND month BETWEEN 0 AND 5",
        "SELECT COUNT(*) FROM sales WHERE region IN ('east', 'west') AND month = 3",
    ]
    print(f"{'query':70s}  {'approx':>9s}  {'exact':>7s}")
    for sql in queries:
        print(f"{sql:70s}  {approx.count(sql):9.1f}  {exact.count(sql):7.0f}")

    # -- 3. GROUP BY with ORDER/LIMIT ----------------------------------
    print("\ntop regions (approximate):")
    result = approx.execute(
        "SELECT region, COUNT(*) AS cnt FROM sales GROUP BY region "
        "ORDER BY cnt DESC LIMIT 3"
    )
    for row in result.rows:
        print(f"  {row.labels[0]:8s} {row.count:9.1f}")

    # -- 4. uncertainty -------------------------------------------------
    from repro.stats.predicates import Conjunction, RangePredicate

    predicate = Conjunction(
        relation.schema,
        {"region": RangePredicate.point(3), "product": RangePredicate.point(0)},
    )
    estimate = summary.count(predicate)
    low, high = estimate.ci95
    true = exact.count(
        "SELECT COUNT(*) FROM sales WHERE region = 'west' AND product = 'widget'"
    )
    print(
        f"\nwest/widget: {estimate.expectation:.1f} "
        f"(std {estimate.std:.1f}, 95% CI [{low:.1f}, {high:.1f}]), true {true:.0f}"
    )
    print("done.")


if __name__ == "__main__":
    main()
