"""A tour of 2D-statistic selection (Sec 4.3).

Shows the machinery behind ``repro.api.SummaryBuilder(...).fit()``:

* ranking attribute pairs by (bias-corrected) Cramér's V,
* the *correlation* vs *attribute cover* pair-choice strategies,
* the three per-pair heuristics — LARGE / ZERO / COMPOSITE — and how
  the modified KD-tree carves the value grid,
* the accuracy effect of each heuristic on heavy hitters and empty
  cells.

Run:  python examples/statistics_tour.py
"""

from repro.core import EntropySummary
from repro.datasets import generate_flights
from repro.stats import (
    choose_pairs_by_correlation,
    choose_pairs_by_cover,
    composite_rectangles,
    pair_correlations,
    select_pair_statistics,
)
from repro.stats.statistic import StatisticSet
from repro.workloads import standard_workloads
from repro.evaluation.harness import run_workload
from repro.api import Explorer


def main() -> None:
    dataset = generate_flights(num_rows=60_000, seed=7)
    relation = dataset.coarse
    names = relation.schema.attribute_names

    # ------------------------------------------------------------------
    print("== pair ranking (bias-corrected Cramér's V) ==")
    ranked = pair_correlations(relation)
    for (a, b), score in ranked:
        print(f"  {names[a]:13s} {names[b]:13s} {score:.3f}")

    print("\n== strategy comparison for Ba = 2 ==")
    by_corr = choose_pairs_by_correlation(ranked, 2)
    by_cover = choose_pairs_by_cover(ranked, 2)
    print("  correlation:", [(names[a], names[b]) for a, b in by_corr])
    print("  cover:      ", [(names[a], names[b]) for a, b in by_cover])

    # ------------------------------------------------------------------
    print("\n== the modified KD-tree on (fl_time, distance) ==")
    counts = relation.contingency("fl_time", "distance")
    rectangles = composite_rectangles(counts, 12)
    print(f"  {len(rectangles)} rectangles over a {counts.shape} grid:")
    for rect in sorted(rectangles, key=lambda r: -r.count)[:6]:
        (a_lo, a_hi), (b_lo, b_hi) = rect.ranges
        print(
            f"    time[{a_lo:2d},{a_hi:2d}] x dist[{b_lo:2d},{b_hi:2d}]"
            f"  count={rect.count:8.0f}  cells={rect.num_cells():4d}"
        )

    # ------------------------------------------------------------------
    print("\n== heuristic accuracy on the restricted relation ==")
    restricted = relation.project(["fl_date", "fl_time", "distance"])
    workloads = standard_workloads(
        restricted, ("fl_time", "distance"),
        num_heavy=40, num_light=40, num_null=80, seed=5,
    )
    print(f"  {'heuristic':10s} {'heavy':>8s} {'light':>8s} {'null':>8s}")
    for heuristic in ("zero", "large", "composite"):
        stats = select_pair_statistics(
            restricted, "fl_time", "distance", 300, heuristic, seed=3
        )
        summary = EntropySummary.from_statistics(
            StatisticSet.from_relation(restricted, stats),
            max_iterations=15,
            name=heuristic,
        )
        backend = Explorer.attach(summary, rounded=True)
        row = []
        for kind in ("heavy", "light", "null"):
            run = run_workload(
                backend, heuristic, workloads[kind], restricted.schema
            )
            row.append(run.mean_error)
        print(
            f"  {heuristic:10s} {row[0]:8.3f} {row[1]:8.3f} {row[2]:8.3f}"
        )
    print(
        "\nCOMPOSITE wins overall — the paper's Sec 4.3 conclusion, and the"
        "\nheuristic every summary in the evaluation uses."
    )


if __name__ == "__main__":
    main()
