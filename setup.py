"""Setup shim for legacy (non-PEP-517) installs.

All metadata lives in ``pyproject.toml`` ([project] / [tool.setuptools]);
setuptools >= 61 reads it from there even on this legacy path, so the
installed distribution is ``entropydb-repro``, not UNKNOWN.  The shim
exists because this environment is offline and lacks the ``wheel``
package, so ``pip install -e .`` (PEP 660) cannot build an editable
wheel — use ``python setup.py develop`` here instead.  In environments
with ``wheel`` available, plain ``pip install -e .`` works and installs
the same distribution.
"""

from setuptools import setup

setup()
