"""Setup shim so editable installs work without the `wheel` package
(this environment is offline; PEP 517 builds need bdist_wheel)."""

from setuptools import setup

setup()
