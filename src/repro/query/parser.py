"""Recursive-descent parser for the SQL subset of :mod:`repro.query.ast`.

Grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM name [where] [group] [order] [limit]
    select_list:= (name ',')* COUNT '(' '*' ')' [AS name]
    where      := WHERE condition (AND condition)*
    condition  := name cmp literal
                | name IN '(' literal (',' literal)* ')'
                | name BETWEEN literal AND literal
    group      := GROUP BY name (',' name)*
    order      := ORDER BY name (ASC|DESC)?
    limit      := LIMIT int
    literal    := number | 'string' | "string"
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.query.ast import COMPARISONS, Condition, CountQuery

_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*])
      | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "in", "between", "group", "by",
    "order", "limit", "count", "sum", "avg", "as", "asc", "desc", "or",
}


class _Tokens:
    def __init__(self, text: str):
        self.tokens: list[tuple[str, object]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None:
                if text[pos:].strip() == ";":
                    break
                raise QueryError(f"cannot tokenize query at: {text[pos:pos+20]!r}")
            pos = match.end()
            if match.lastgroup == "number":
                raw = match.group("number")
                value = float(raw) if "." in raw else int(raw)
                self.tokens.append(("literal", value))
            elif match.lastgroup == "string":
                raw = match.group("string")
                quote = raw[0]
                value = raw[1:-1].replace(quote * 2, quote)
                self.tokens.append(("literal", value))
            elif match.lastgroup == "op":
                op = match.group("op")
                self.tokens.append(("op", "!=" if op == "<>" else op))
            elif match.lastgroup == "punct":
                self.tokens.append(("punct", match.group("punct")))
            else:
                word = match.group("word")
                lowered = word.lower()
                if lowered in _KEYWORDS:
                    self.tokens.append(("keyword", lowered))
                else:
                    self.tokens.append(("name", word))
        self.index = 0

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return ("eof", None)

    def next(self):
        token = self.peek()
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            want = value if value is not None else kind
            raise QueryError(f"expected {want!r}, found {token[1]!r}")
        return token[1]

    def accept(self, kind, value=None) -> bool:
        token = self.peek()
        if token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return True
        return False


def parse_query(text: str) -> CountQuery:
    """Parse one SQL counting query into a :class:`CountQuery`."""
    tokens = _Tokens(text)
    tokens.expect("keyword", "select")
    group_select, aggregate, aggregate_attr = _parse_select_list(tokens)
    tokens.expect("keyword", "from")
    table = tokens.expect("name")
    conditions = []
    if tokens.accept("keyword", "where"):
        conditions.append(_parse_condition(tokens))
        while True:
            if tokens.peek() == ("keyword", "or"):
                raise QueryError(
                    "unsupported token 'OR' after "
                    f"{conditions[-1]!r}: the engine answers conjunctive "
                    "queries only (AND of per-attribute predicates, "
                    "Eq. 16); split the query and add the counts instead"
                )
            if not tokens.accept("keyword", "and"):
                break
            conditions.append(_parse_condition(tokens))
    group_by: list[str] = []
    if tokens.accept("keyword", "group"):
        tokens.expect("keyword", "by")
        group_by.append(tokens.expect("name"))
        while tokens.accept("punct", ","):
            group_by.append(tokens.expect("name"))
    order = None
    if tokens.accept("keyword", "order"):
        tokens.expect("keyword", "by")
        tokens.expect("name")  # the count alias; any name accepted
        if tokens.accept("keyword", "desc"):
            order = "desc"
        elif tokens.accept("keyword", "asc"):
            order = "asc"
        else:
            order = "asc"
    limit = None
    if tokens.accept("keyword", "limit"):
        kind, value = tokens.next()
        if kind != "literal" or not isinstance(value, int):
            raise QueryError("LIMIT needs an integer")
        limit = value
    if tokens.peek()[0] != "eof":
        raise QueryError(f"unexpected trailing token {tokens.peek()[1]!r}")
    if group_select and group_by and set(group_select) != set(group_by):
        raise QueryError(
            "selected attributes must match the GROUP BY list; got "
            f"{group_select} vs {group_by}"
        )
    if group_select and not group_by:
        group_by = group_select
    return CountQuery(
        table,
        group_by=group_by,
        conditions=conditions,
        order=order,
        limit=limit,
        aggregate=aggregate,
        aggregate_attr=aggregate_attr,
    )


def _parse_select_list(tokens: _Tokens) -> tuple[list[str], str, str | None]:
    """Group attributes plus the aggregate: COUNT(*) | SUM(a) | AVG(a)."""
    names: list[str] = []
    while True:
        if tokens.accept("keyword", "count"):
            tokens.expect("punct", "(")
            tokens.expect("punct", "*")
            tokens.expect("punct", ")")
            if tokens.accept("keyword", "as"):
                tokens.expect("name")
            return names, "count", None
        for aggregate in ("sum", "avg"):
            if tokens.accept("keyword", aggregate):
                tokens.expect("punct", "(")
                attr = tokens.expect("name")
                tokens.expect("punct", ")")
                if tokens.accept("keyword", "as"):
                    tokens.expect("name")
                return names, aggregate, attr
        names.append(tokens.expect("name"))
        tokens.expect("punct", ",")


def _expect_literal(tokens: _Tokens, context: str):
    """Next token as a literal, with targeted messages for the classic
    mistakes (unquoted strings, keywords in literal position)."""
    kind, value = tokens.next()
    if kind == "literal":
        return value
    if kind == "name":
        raise QueryError(
            f"expected a literal {context}, found bare word {value!r} — "
            f"string literals must be quoted: '{value}'"
        )
    raise QueryError(f"expected a literal {context}, found {value!r}")


def _parse_condition(tokens: _Tokens) -> Condition:
    attribute = tokens.expect("name")
    kind, value = tokens.next()
    if kind == "op":
        if value not in COMPARISONS:
            raise QueryError(f"unsupported comparison {value!r}")
        literal = _expect_literal(tokens, f"after {value!r}")
        return Condition(attribute, value, [literal])
    if kind == "keyword" and value == "in":
        tokens.expect("punct", "(")
        literals = []
        while True:
            literals.append(
                _expect_literal(tokens, f"in the IN list of {attribute!r}")
            )
            if tokens.accept("punct", ")"):
                break
            tokens.expect("punct", ",")
        return Condition(attribute, "in", literals)
    if kind == "keyword" and value == "between":
        low = _expect_literal(tokens, f"as the BETWEEN lower bound of {attribute!r}")
        tokens.expect("keyword", "and")
        high = _expect_literal(tokens, f"as the BETWEEN upper bound of {attribute!r}")
        return Condition(attribute, "between", [low, high])
    raise QueryError(
        f"expected a condition operator after {attribute!r}, found {value!r}"
    )
