"""Query results: a scalar count or a list of group rows.

Split out of :mod:`repro.query.engine` so the planning layer
(:mod:`repro.plan`) and the engine can share the result types without
an import cycle — results sit below both.
"""

from __future__ import annotations

from repro.query.ast import CountQuery


class GroupRow:
    """One GROUP BY output row."""

    __slots__ = ("labels", "count")

    def __init__(self, labels: tuple, count: float):
        self.labels = labels
        self.count = count

    def __iter__(self):
        yield from self.labels
        yield self.count

    def __eq__(self, other):
        if not isinstance(other, GroupRow):
            return NotImplemented
        return self.labels == other.labels and self.count == other.count

    def __repr__(self):
        return f"GroupRow({self.labels!r}, {self.count:g})"


class QueryResult:
    """Result of one execution: a scalar or a list of group rows.

    For scalar counts answered by a model backend, ``estimate`` carries
    the full :class:`~repro.core.inference.QueryEstimate`, so the error
    bounds (``std``, ``ci95``) of Sec 7's Binomial extension travel with
    the result.
    """

    __slots__ = ("query", "scalar", "rows", "estimate")

    def __init__(
        self,
        query: CountQuery,
        scalar: float | None,
        rows: list[GroupRow] | None,
        estimate=None,
    ):
        self.query = query
        self.scalar = scalar
        self.rows = rows
        self.estimate = estimate

    @property
    def is_scalar(self) -> bool:
        return self.scalar is not None

    # -- error bounds (model backends only; None otherwise) -------------
    @property
    def std(self) -> float | None:
        """Model standard deviation of a scalar count, if available."""
        return self.estimate.std if self.estimate is not None else None

    @property
    def ci95(self) -> tuple[float, float] | None:
        """Model 95% confidence interval of a scalar count, if available."""
        return self.estimate.ci95 if self.estimate is not None else None

    # -- conversions -----------------------------------------------------
    def to_rows(self) -> list[tuple]:
        """Uniform row view: ``[(label, ..., count), ...]``.

        A scalar result becomes a single ``(count,)`` row.
        """
        if self.is_scalar:
            return [(self.scalar,)]
        return [tuple(row.labels) + (row.count,) for row in self.rows]

    def to_dict(self) -> dict:
        """Dict view of the result.

        Scalar: ``{"count": x}`` plus ``std``/``ci95`` when the backend
        provides error bounds.  Grouped: label(s) → count, with
        single-attribute groups keyed by the bare label.
        """
        if self.is_scalar:
            out: dict = {"count": self.scalar}
            if self.estimate is not None:
                out["std"] = self.estimate.std
                out["ci95"] = self.estimate.ci95
            return out
        single = len(self.query.group_by) == 1
        return {
            (row.labels[0] if single else row.labels): row.count
            for row in self.rows
        }

    def __repr__(self):
        if self.is_scalar:
            return f"QueryResult({self.scalar:g})"
        return f"QueryResult({len(self.rows)} rows)"
