"""SQL front-end: parser, AST, label resolution, and execution against
exact / sample / summary backends."""

from repro.query.ast import Condition, CountQuery
from repro.query.backends import ShardedBackend, SummaryBackend
from repro.query.engine import CountBackend, GroupRow, QueryResult, SQLEngine
from repro.query.linear import (
    LinearQuery,
    condition_mask,
    conjunction_from_conditions,
)
from repro.query.parser import parse_query

__all__ = [
    "Condition",
    "CountBackend",
    "CountQuery",
    "GroupRow",
    "LinearQuery",
    "QueryResult",
    "SQLEngine",
    "ShardedBackend",
    "SummaryBackend",
    "condition_mask",
    "conjunction_from_conditions",
    "parse_query",
]
