"""SQL front-end: parser, AST, label resolution, and execution against
exact / sample / summary backends.

Planning (predicate normalization, backend routing, the physical
operators) lives one package over in :mod:`repro.plan`; the
:class:`SQLEngine` here is the stable per-backend façade on top of it.
"""

from repro.query.ast import Condition, CountQuery
from repro.query.backends import ShardedBackend, SummaryBackend
from repro.query.engine import CountBackend, SQLEngine
from repro.query.results import GroupRow, QueryResult
from repro.query.linear import (
    LinearQuery,
    condition_mask,
    conjunction_from_conditions,
)
from repro.query.parser import parse_query

__all__ = [
    "Condition",
    "CountBackend",
    "CountQuery",
    "GroupRow",
    "LinearQuery",
    "QueryResult",
    "SQLEngine",
    "ShardedBackend",
    "SummaryBackend",
    "condition_mask",
    "conjunction_from_conditions",
    "parse_query",
]
