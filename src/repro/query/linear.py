"""Linear queries and label → predicate resolution.

Two jobs live here:

* Translate parsed WHERE conditions (over *labels*: state codes, raw
  numbers for bucketized attributes, ...) into a
  :class:`~repro.stats.predicates.Conjunction` over dense indices.
* Provide the paper's formal :class:`LinearQuery` — a vector ``q ∈ R^d``
  over the possible-tuple space with answer ``⟨q, n^I⟩`` (Fig. 1).  It
  is materializable only for small schemas and is used by tests and
  examples to connect the implementation to the paper's model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.binning import Bucket
from repro.data.domain import Domain
from repro.data.frequency import all_tuples, frequency_vector
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import QueryError
from repro.query.ast import Condition
from repro.stats.predicates import Conjunction, conjunction_from_masks


# ----------------------------------------------------------------------
# Label resolution
# ----------------------------------------------------------------------

def _label_key(label):
    """String form used to match SQL literals against composite labels
    (e.g. city labels ``('WA', 'Seattle')`` match ``'WA/Seattle'``)."""
    if isinstance(label, tuple):
        return "/".join(str(part) for part in label)
    return None


def _literal_matches(domain: Domain, literal) -> int | None:
    """Domain index of a literal, or ``None`` when it does not resolve
    to a single label."""
    if literal in domain:
        return domain.index_of(literal)
    if isinstance(literal, str):
        for index, label in enumerate(domain.labels):
            if _label_key(label) == literal:
                return index
    if isinstance(literal, (int, float)):
        for index, label in enumerate(domain.labels):
            if isinstance(label, Bucket) and literal in label:
                return index
    return None


def _comparison_mask(domain: Domain, op: str, literal) -> np.ndarray:
    """Mask for ``A <op> literal`` under per-label-kind semantics:

    * plain labels compare by value (numbers) — the domain must be
      sorted for a range to result, which :func:`conjunction_from_masks`
      does not require anyway;
    * bucket labels use overlap semantics (``A < v`` keeps buckets
      starting below ``v``; ``A > v`` keeps buckets ending above it).
    """
    labels = domain.labels
    mask = np.zeros(domain.size, dtype=bool)
    for index, label in enumerate(labels):
        if isinstance(label, Bucket):
            if op == "<":
                mask[index] = label.low < literal
            elif op == "<=":
                mask[index] = label.low <= literal
            elif op == ">":
                mask[index] = label.high > literal
            elif op == ">=":
                hi_in = label.high if label.closed_right else label.high
                mask[index] = hi_in >= literal
            else:
                raise QueryError(f"unsupported bucket comparison {op!r}")
        else:
            try:
                if op == "<":
                    mask[index] = label < literal
                elif op == "<=":
                    mask[index] = label <= literal
                elif op == ">":
                    mask[index] = label > literal
                elif op == ">=":
                    mask[index] = label >= literal
                else:
                    raise QueryError(f"unsupported comparison {op!r}")
            except TypeError:
                raise QueryError(
                    f"cannot compare {literal!r} with label {label!r} of "
                    f"attribute {domain.name!r}"
                ) from None
    return mask


def condition_mask(
    domain: Domain, condition: Condition, *, strict: bool = True
) -> np.ndarray:
    """Boolean value mask of one condition over a domain.

    ``strict=True`` (the legacy behavior) raises :class:`QueryError`
    when the condition selects no value; ``strict=False`` returns the
    empty mask instead, letting the query planner treat unsatisfiable
    conditions as contradictions that answer ``0`` without touching a
    backend.  Type errors (comparing a number with a string label, ...)
    raise in both modes.
    """
    if condition.op == "=":
        index = _literal_matches(domain, condition.values[0])
        mask = np.zeros(domain.size, dtype=bool)
        if index is None:
            if strict:
                raise QueryError(
                    f"value {condition.values[0]!r} is not in the active "
                    f"domain of {domain.name!r}"
                )
            return mask
        mask[index] = True
        return mask
    if condition.op == "!=":
        # strict mode still rejects out-of-domain values (a typo check);
        # lenient mode keeps every label, the correct NOT-EQUAL reading.
        mask = condition_mask(
            domain,
            Condition(condition.attribute, "=", condition.values),
            strict=strict,
        )
        return ~mask
    if condition.op == "in":
        mask = np.zeros(domain.size, dtype=bool)
        for literal in condition.values:
            index = _literal_matches(domain, literal)
            if index is None:
                if strict:
                    raise QueryError(
                        f"value {literal!r} is not in the active domain of "
                        f"{domain.name!r}"
                    )
                continue
            mask[index] = True
        return mask
    if condition.op == "between":
        low, high = condition.values
        lower = _comparison_mask(domain, ">=", low)
        upper = _comparison_mask(domain, "<=", high)
        mask = lower & upper
        if strict and not mask.any():
            raise QueryError(
                f"BETWEEN {low!r} AND {high!r} selects no value of "
                f"{domain.name!r}"
            )
        return mask
    mask = _comparison_mask(domain, condition.op, condition.values[0])
    if strict and not mask.any():
        raise QueryError(
            f"{condition!r} selects no value of {domain.name!r}"
        )
    return mask


def conjunction_from_conditions(
    schema: Schema, conditions: Sequence[Condition]
) -> Conjunction:
    """Resolve parsed conditions into a dense-index conjunction.

    Multiple conditions on one attribute intersect (``x >= 3 AND
    x <= 7`` equals ``x BETWEEN 3 AND 7``); an empty intersection
    raises, matching the strict semantics of :func:`condition_mask`.
    """
    masks: dict[int, np.ndarray] = {}
    for condition in conditions:
        pos = schema.position(condition.attribute)
        mask = condition_mask(schema.domain(pos), condition)
        if pos in masks:
            mask = masks[pos] & mask
            if not mask.any():
                raise QueryError(
                    f"conditions on {condition.attribute!r} contradict each "
                    "other; no value satisfies all of them"
                )
        masks[pos] = mask
    return conjunction_from_masks(schema, masks)


def numeric_weights(domain: Domain) -> np.ndarray:
    """Numeric value of every label — the weight vector turning a SUM
    over an attribute into a linear query.  Bucket labels contribute
    their midpoint (the standard histogram estimator)."""
    weights = np.empty(domain.size, dtype=float)
    for index, label in enumerate(domain.labels):
        if isinstance(label, Bucket):
            weights[index] = label.midpoint
        elif isinstance(label, bool) or not isinstance(label, (int, float)):
            raise QueryError(
                f"attribute {domain.name!r} is not numeric; cannot SUM/AVG "
                f"over label {label!r}"
            )
        else:
            weights[index] = float(label)
    return weights


# ----------------------------------------------------------------------
# The paper's linear-query formalism
# ----------------------------------------------------------------------

class LinearQuery:
    """A dense linear query ``q ∈ R^d`` over ``Tup`` (paper Sec 3.1).

    Only materializable for small schemas; the production path never
    builds these vectors, but they are the semantic reference point:
    every counting query of the engine equals ``⟨q, n^I⟩`` for the
    vector produced by :meth:`from_conjunction`.
    """

    __slots__ = ("schema", "vector")

    def __init__(self, schema: Schema, vector: np.ndarray):
        vector = np.asarray(vector, dtype=float)
        if vector.shape[0] != schema.num_possible_tuples():
            raise QueryError(
                "linear query vector length must equal the number of "
                "possible tuples"
            )
        self.schema = schema
        self.vector = vector

    @classmethod
    def from_conjunction(
        cls, schema: Schema, predicate: Conjunction
    ) -> "LinearQuery":
        """0/1 counting-query vector of a conjunctive predicate."""
        coords = np.fromiter(
            (
                1.0 if predicate.matches_tuple(indices) else 0.0
                for indices in all_tuples(schema)
            ),
            dtype=float,
            count=schema.num_possible_tuples(),
        )
        return cls(schema, coords)

    def answer(self, relation: Relation) -> float:
        """``⟨q, n^I⟩`` — the exact answer on an instance."""
        if relation.schema != self.schema:
            raise QueryError("relation schema does not match the query")
        return float(np.dot(self.vector, frequency_vector(relation)))

    def is_counting_query(self) -> bool:
        """All coordinates 0/1 (the class the paper's predicates form)."""
        return bool(np.all((self.vector == 0.0) | (self.vector == 1.0)))

    def __add__(self, other: "LinearQuery") -> "LinearQuery":
        if self.schema != other.schema:
            raise QueryError("cannot add queries over different schemas")
        return LinearQuery(self.schema, self.vector + other.vector)

    def __mul__(self, scale: float) -> "LinearQuery":
        return LinearQuery(self.schema, self.vector * float(scale))

    __rmul__ = __mul__
