"""Abstract syntax for the supported SQL subset.

The paper's workloads (Sec 6.2) are conjunctive counting queries,
optionally grouped:

    SELECT [A1, ..., Ag,] COUNT(*) FROM R
    [WHERE A = v AND B IN (u, w) AND C BETWEEN x AND y AND D >= z]
    [GROUP BY A1, ..., Ag]
    [ORDER BY cnt ASC|DESC]
    [LIMIT k]

The AST is deliberately small and backend-agnostic: the same tree is
executed against the exact relation, a sample, or an EntropyDB summary.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QueryError

#: Comparison operators accepted in WHERE conditions.
COMPARISONS = ("=", "<", "<=", ">", ">=", "!=")


class Condition:
    """One WHERE condition on a single attribute."""

    __slots__ = ("attribute", "op", "values")

    def __init__(self, attribute: str, op: str, values: Sequence):
        if op not in COMPARISONS + ("in", "between"):
            raise QueryError(f"unsupported operator {op!r}")
        if op == "between":
            if len(values) != 2:
                raise QueryError("BETWEEN needs exactly two bounds")
            low, high = values
            if (
                isinstance(low, (int, float))
                and isinstance(high, (int, float))
                and not isinstance(low, bool)
                and not isinstance(high, bool)
                and low > high
            ):
                raise QueryError(
                    f"reversed BETWEEN bounds on {attribute!r}: {low!r} > "
                    f"{high!r}; write BETWEEN {high!r} AND {low!r}"
                )
        if op in COMPARISONS and len(values) != 1:
            raise QueryError(f"operator {op!r} needs exactly one literal")
        if op == "in" and not values:
            raise QueryError("IN needs at least one literal")
        self.attribute = attribute
        self.op = op
        self.values = list(values)

    def __repr__(self):
        if self.op == "in":
            return f"{self.attribute} IN ({', '.join(map(repr, self.values))})"
        if self.op == "between":
            return f"{self.attribute} BETWEEN {self.values[0]!r} AND {self.values[1]!r}"
        return f"{self.attribute} {self.op} {self.values[0]!r}"


#: Aggregates supported in the SELECT list.
AGGREGATES = ("count", "sum", "avg")


class CountQuery:
    """A parsed aggregate query (COUNT(*), SUM(attr), or AVG(attr))."""

    __slots__ = (
        "table", "group_by", "conditions", "order", "limit",
        "aggregate", "aggregate_attr",
    )

    def __init__(
        self,
        table: str,
        group_by: Sequence[str] = (),
        conditions: Sequence[Condition] = (),
        order: str | None = None,
        limit: int | None = None,
        aggregate: str = "count",
        aggregate_attr: str | None = None,
    ):
        if aggregate not in AGGREGATES:
            raise QueryError(f"unsupported aggregate {aggregate!r}")
        if aggregate != "count" and aggregate_attr is None:
            raise QueryError(f"{aggregate.upper()} needs an attribute")
        if aggregate != "count" and group_by:
            raise QueryError(
                "SUM/AVG with GROUP BY is not supported; group with "
                "COUNT(*) or aggregate without grouping"
            )
        self.aggregate = aggregate
        self.aggregate_attr = aggregate_attr
        self.table = table
        self.group_by = list(group_by)
        self.conditions = list(conditions)
        if order is not None and order not in ("asc", "desc"):
            raise QueryError(f"ORDER BY direction must be ASC or DESC, got {order!r}")
        if order is not None and not self.group_by:
            raise QueryError("ORDER BY cnt requires a GROUP BY")
        if limit is not None and limit < 1:
            raise QueryError(f"LIMIT must be positive, got {limit}")
        self.order = order
        self.limit = limit
        # Multiple conditions on one attribute are allowed: the query
        # planner's normalize stage intersects them into the single
        # per-attribute predicate of Eq. 16 (``x >= 3 AND x <= 7``
        # becomes the range [3, 7]; an empty intersection answers 0).

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by)

    def __repr__(self):
        parts = ["SELECT "]
        if self.group_by:
            parts.append(", ".join(self.group_by) + ", ")
        if self.aggregate == "count":
            parts.append("COUNT(*)")
        else:
            parts.append(f"{self.aggregate.upper()}({self.aggregate_attr})")
        parts.append(f" FROM {self.table}")
        if self.conditions:
            parts.append(" WHERE " + " AND ".join(map(repr, self.conditions)))
        if self.group_by:
            parts.append(" GROUP BY " + ", ".join(self.group_by))
        if self.order:
            parts.append(f" ORDER BY cnt {self.order.upper()}")
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
        return "".join(parts)
