"""Query execution: one AST, many backends.

A *backend* is anything that can answer conjunctive counting queries —
the exact relation, a sampler, or an EntropyDB summary.  The engine
resolves labels, dispatches, and post-processes GROUP BY results
(ordering, LIMIT), so accuracy experiments run the *same* query text
against every method.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.data.schema import Schema
from repro.errors import QueryError
from repro.query.ast import CountQuery
from repro.query.linear import conjunction_from_conditions
from repro.query.parser import parse_query
from repro.stats.predicates import Conjunction


@runtime_checkable
class CountBackend(Protocol):
    """Minimal interface the engine executes against."""

    schema: Schema

    def count(self, predicate: Conjunction) -> float:
        """Estimated/exact ``COUNT(*)`` under a conjunction."""
        ...

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        """Counts per combination of group-attribute *labels*."""
        ...


class GroupRow:
    """One GROUP BY output row."""

    __slots__ = ("labels", "count")

    def __init__(self, labels: tuple, count: float):
        self.labels = labels
        self.count = count

    def __iter__(self):
        yield from self.labels
        yield self.count

    def __eq__(self, other):
        if not isinstance(other, GroupRow):
            return NotImplemented
        return self.labels == other.labels and self.count == other.count

    def __repr__(self):
        return f"GroupRow({self.labels!r}, {self.count:g})"


class QueryResult:
    """Result of one execution: a scalar or a list of group rows.

    For scalar counts answered by a model backend, ``estimate`` carries
    the full :class:`~repro.core.inference.QueryEstimate`, so the error
    bounds (``std``, ``ci95``) of Sec 7's Binomial extension travel with
    the result.
    """

    __slots__ = ("query", "scalar", "rows", "estimate")

    def __init__(
        self,
        query: CountQuery,
        scalar: float | None,
        rows: list[GroupRow] | None,
        estimate=None,
    ):
        self.query = query
        self.scalar = scalar
        self.rows = rows
        self.estimate = estimate

    @property
    def is_scalar(self) -> bool:
        return self.scalar is not None

    # -- error bounds (model backends only; None otherwise) -------------
    @property
    def std(self) -> float | None:
        """Model standard deviation of a scalar count, if available."""
        return self.estimate.std if self.estimate is not None else None

    @property
    def ci95(self) -> tuple[float, float] | None:
        """Model 95% confidence interval of a scalar count, if available."""
        return self.estimate.ci95 if self.estimate is not None else None

    # -- conversions -----------------------------------------------------
    def to_rows(self) -> list[tuple]:
        """Uniform row view: ``[(label, ..., count), ...]``.

        A scalar result becomes a single ``(count,)`` row.
        """
        if self.is_scalar:
            return [(self.scalar,)]
        return [tuple(row.labels) + (row.count,) for row in self.rows]

    def to_dict(self) -> dict:
        """Dict view of the result.

        Scalar: ``{"count": x}`` plus ``std``/``ci95`` when the backend
        provides error bounds.  Grouped: label(s) → count, with
        single-attribute groups keyed by the bare label.
        """
        if self.is_scalar:
            out: dict = {"count": self.scalar}
            if self.estimate is not None:
                out["std"] = self.estimate.std
                out["ci95"] = self.estimate.ci95
            return out
        single = len(self.query.group_by) == 1
        return {
            (row.labels[0] if single else row.labels): row.count
            for row in self.rows
        }

    def __repr__(self):
        if self.is_scalar:
            return f"QueryResult({self.scalar:g})"
        return f"QueryResult({len(self.rows)} rows)"


class SQLEngine:
    """Executes SQL text / :class:`CountQuery` trees against a backend."""

    def __init__(self, backend: CountBackend, table_name: str = "R"):
        self.backend = backend
        self.table_name = table_name

    def parse(self, query: "CountQuery | str") -> CountQuery:
        """Parse SQL text (if needed) and validate it for this engine."""
        if isinstance(query, str):
            query = parse_query(query)
        if query.table.lower() != self.table_name.lower():
            raise QueryError(
                f"unknown table {query.table!r}; this engine serves "
                f"{self.table_name!r}"
            )
        for attr in query.group_by:
            self.backend.schema.position(attr)  # raises on unknown attributes
        return query

    def compile(self, query: CountQuery) -> Conjunction | None:
        """Resolve the WHERE conditions into a dense-index conjunction."""
        if not query.conditions:
            return None
        return conjunction_from_conditions(self.backend.schema, query.conditions)

    def execute(self, query: "CountQuery | str") -> QueryResult:
        """Parse (if needed), validate, and run a query against the backend."""
        query = self.parse(query)
        return self.execute_compiled(query, self.compile(query))

    def execute_compiled(
        self, query: CountQuery, predicate: Conjunction | None
    ) -> QueryResult:
        """Run an already-validated query with a precompiled predicate.

        The split lets the Explorer cache compiled predicates across
        repeated interactive queries and skip re-resolution.
        """
        schema = self.backend.schema
        if query.aggregate != "count":
            return QueryResult(query, self._aggregate(query, predicate), None)
        if not query.is_grouped:
            conjunction = predicate or Conjunction(schema, {})
            estimator = getattr(self.backend, "estimate", None)
            if estimator is not None:
                estimate = estimator(conjunction)
                return QueryResult(
                    query, float(self.backend.count(conjunction)), None, estimate
                )
            return QueryResult(query, float(self.backend.count(conjunction)), None)
        counts = self.backend.group_counts(query.group_by, predicate)
        rows = [GroupRow(labels, count) for labels, count in counts.items()]
        if query.order == "desc":
            rows.sort(key=lambda row: (-row.count, str(row.labels)))
        elif query.order == "asc":
            rows.sort(key=lambda row: (row.count, str(row.labels)))
        else:
            rows.sort(key=lambda row: str(row.labels))
        if query.limit is not None:
            rows = rows[: query.limit]
        return QueryResult(query, None, rows)

    def _aggregate(self, query: CountQuery, predicate) -> float:
        """SUM/AVG dispatch: a weighted linear query plus, for AVG, the
        matching COUNT in the denominator (ratio estimator)."""
        from repro.query.linear import numeric_weights

        schema = self.backend.schema
        pos = schema.position(query.aggregate_attr)
        weights = numeric_weights(schema.domain(pos))
        sum_method = getattr(self.backend, "sum_values", None)
        if sum_method is None or getattr(self.backend, "supports_sum", True) is False:
            raise QueryError(
                f"backend {self.backend!r} does not support SUM/AVG"
            )
        total = float(sum_method(pos, weights, predicate))
        if query.aggregate == "sum":
            return total
        conjunction = predicate or Conjunction(schema, {})
        count = float(self.backend.count(conjunction))
        if count <= 0:
            raise QueryError("AVG undefined: no rows match the predicate")
        return total / count

    def count(self, sql: str) -> float:
        """Shortcut: execute and unwrap a scalar count."""
        result = self.execute(sql)
        if not result.is_scalar:
            raise QueryError("query is grouped; use execute()")
        return result.scalar
