"""Query execution: one AST, many backends — via the shared planner.

A *backend* is anything that can answer conjunctive counting queries —
the exact relation, a sampler, or an EntropyDB summary.  Since the
planner refactor, :class:`SQLEngine` is a thin façade over
:class:`repro.plan.Planner`: parsing/validation, predicate
normalization, backend routing, and the physical operators all live in
:mod:`repro.plan` and are shared with the Explorer, the CLI, and the
evaluation harness.  The engine remains the stable low-level surface
tests and scripts use to run one query against one backend.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.data.schema import Schema
from repro.errors import QueryError
from repro.plan.canonical import canonicalize_conjunction
from repro.plan.planner import Planner
from repro.query.ast import CountQuery
from repro.query.results import GroupRow, QueryResult
from repro.stats.predicates import Conjunction

__all__ = [
    "CountBackend",
    "GroupRow",
    "QueryResult",
    "SQLEngine",
]


@runtime_checkable
class CountBackend(Protocol):
    """Minimal interface the engine executes against."""

    schema: Schema

    def count(self, predicate: Conjunction) -> float:
        """Estimated/exact ``COUNT(*)`` under a conjunction."""
        ...

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        """Counts per combination of group-attribute *labels*."""
        ...


class SQLEngine:
    """Executes SQL text / :class:`CountQuery` trees against a backend."""

    def __init__(self, backend: CountBackend, table_name: str = "R"):
        self.backend = backend
        self.table_name = table_name
        self.planner = Planner(backend, table_name=table_name)

    def parse(self, query: "CountQuery | str") -> CountQuery:
        """Parse SQL text (if needed) and validate it for this engine."""
        return self.planner.parse(query)

    def compile(self, query: CountQuery) -> Conjunction | None:
        """Resolve the WHERE conditions into a dense-index conjunction.

        Contradictory conditions raise here (legacy strict semantics);
        :meth:`execute` instead short-circuits them to ``0`` through
        the planner.
        """
        if not query.conditions:
            return None
        predicate = self.planner.normalize(query)
        if predicate.is_empty:
            raise QueryError(
                f"predicate is a contradiction: {predicate.empty_reason}"
            )
        if predicate.is_trivial:
            return None
        return predicate.to_conjunction()

    def plan(self, query: "CountQuery | str"):
        """Full :class:`~repro.plan.planner.QueryPlan` for a query."""
        return self.planner.plan(query)

    def explain(self, query: "CountQuery | str") -> str:
        """Render the normalize → route → execute stages of a query."""
        return self.planner.explain(query)

    def execute(self, query: "CountQuery | str") -> QueryResult:
        """Parse (if needed), plan, and run a query against the backend."""
        return self.planner.execute(self.planner.plan(query))

    def execute_compiled(
        self, query: CountQuery, predicate: Conjunction | None
    ) -> QueryResult:
        """Run an already-validated query with a precompiled predicate.

        Kept for callers that cache compiled conjunctions themselves;
        the predicate is re-canonicalized (cheap — mask algebra only)
        so it flows through the same plan machinery.
        """
        canonical = canonicalize_conjunction(
            predicate, schema=self.backend.schema
        )
        plan = self.planner.plan(query, predicate=canonical)
        return self.planner.execute(plan)

    def count(self, sql: str) -> float:
        """Shortcut: execute and unwrap a scalar count."""
        result = self.execute(sql)
        if not result.is_scalar:
            raise QueryError("query is grouped; use execute()")
        return result.scalar
