"""Backend adapter exposing an EntropyDB summary to the SQL engine."""

from __future__ import annotations

from typing import Sequence

from repro.core.summary import EntropySummary
from repro.stats.predicates import Conjunction


class SummaryBackend:
    """Answers counting queries with MaxEnt expected values.

    ``rounded=True`` applies the paper's rounding (estimates below 0.5
    become 0), which is what the F-measure experiments evaluate.
    """

    def __init__(self, summary: EntropySummary, rounded: bool = False):
        self.summary = summary
        self.schema = summary.schema
        self.rounded = rounded

    def count(self, predicate: Conjunction) -> float:
        """Model-expected COUNT(*) under a conjunction."""
        estimate = self.summary.count(predicate)
        if self.rounded:
            return float(estimate.rounded)
        return estimate.expectation

    def sum_values(self, attr, weights, predicate: Conjunction | None) -> float:
        """Model-expected ``SUM(w(attr))`` (Sec 7 aggregate extension)."""
        return self.summary.engine.sum_estimate(
            self.schema.position(attr), weights, predicate
        )

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        estimates = self.summary.group_by(attrs, predicate)
        if self.rounded:
            return {
                labels: float(estimate.rounded)
                for labels, estimate in estimates.items()
            }
        return {
            labels: estimate.expectation for labels, estimate in estimates.items()
        }

    def __repr__(self):
        return f"SummaryBackend({self.summary.name!r})"
