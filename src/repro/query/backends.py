"""Backend adapter exposing an EntropyDB summary to the SQL engine."""

from __future__ import annotations

from typing import Sequence

from repro.api.backend import Backend
from repro.core.inference import QueryEstimate
from repro.core.summary import EntropySummary
from repro.stats.predicates import Conjunction


class SummaryBackend(Backend):
    """Answers counting queries with MaxEnt expected values.

    ``rounded=True`` applies the paper's rounding (estimates below 0.5
    become 0), which is what the F-measure experiments evaluate.
    """

    supports_sum = True
    is_exact = False

    def __init__(self, summary: EntropySummary, rounded: bool = False):
        self.summary = summary
        self.schema = summary.schema
        self.rounded = rounded
        self.name = summary.name

    def value_of(self, estimate: QueryEstimate) -> float:
        """The scalar this backend reports for an estimate (honors
        ``rounded``) — lets batch callers reuse estimates they already
        hold instead of re-running inference."""
        if self.rounded:
            return float(estimate.rounded)
        return estimate.expectation

    def count(self, predicate: Conjunction) -> float:
        """Model-expected COUNT(*) under a conjunction."""
        return self.value_of(self.summary.count(predicate))

    def estimate(self, predicate: Conjunction) -> QueryEstimate:
        """Full model estimate with variance / confidence interval."""
        return self.summary.count(predicate)

    def estimate_many(
        self, predicates: Sequence[Conjunction]
    ) -> list[QueryEstimate]:
        """Batched estimates through one vectorized polynomial pass."""
        return self.summary.engine.estimate_batch(predicates)

    def count_many(self, predicates: Sequence[Conjunction]) -> list[float]:
        """Batched counts — the fast path behind ``Explorer.run_many``."""
        return [
            self.value_of(estimate) for estimate in self.estimate_many(predicates)
        ]

    def sum_values(self, attr, weights, predicate: Conjunction | None) -> float:
        """Model-expected ``SUM(w(attr))`` (Sec 7 aggregate extension)."""
        return self.summary.engine.sum_estimate(
            self.schema.position(attr), weights, predicate
        )

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        estimates = self.summary.group_by(attrs, predicate)
        return {
            labels: self.value_of(estimate)
            for labels, estimate in estimates.items()
        }

    def __repr__(self):
        return f"SummaryBackend({self.summary.name!r})"
