"""Backend adapters exposing EntropyDB summaries to the SQL engine.

:class:`SummaryBackend` serves a single :class:`EntropySummary`;
:class:`ShardedBackend` serves a :class:`~repro.core.sharding.ShardedSummary`
by fanning queries across the shards and merging their answers.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.backend import Backend
from repro.core.inference import QueryEstimate
from repro.core.sharding import MergedEstimate, ShardedSummary
from repro.core.summary import EntropySummary
from repro.stats.predicates import Conjunction


class SummaryBackend(Backend):
    """Answers counting queries with MaxEnt expected values.

    ``rounded=True`` applies the paper's rounding (estimates below 0.5
    become 0), which is what the F-measure experiments evaluate.
    """

    supports_sum = True
    is_exact = False

    def __init__(self, summary: EntropySummary, rounded: bool = False):
        self.summary = summary
        self.schema = summary.schema
        self.rounded = rounded
        self.name = summary.name

    def value_of(self, estimate: QueryEstimate) -> float:
        """The scalar this backend reports for an estimate (honors
        ``rounded``) — lets batch callers reuse estimates they already
        hold instead of re-running inference."""
        if self.rounded:
            return float(estimate.rounded)
        return estimate.expectation

    def count(self, predicate: Conjunction) -> float:
        """Model-expected COUNT(*) under a conjunction."""
        return self.value_of(self.summary.count(predicate))

    def estimate(self, predicate: Conjunction) -> QueryEstimate:
        """Full model estimate with variance / confidence interval."""
        return self.summary.count(predicate)

    def estimate_many(
        self, predicates: Sequence[Conjunction]
    ) -> list[QueryEstimate]:
        """Batched estimates through one vectorized polynomial pass."""
        return self.summary.engine.estimate_batch(predicates)

    def count_many(self, predicates: Sequence[Conjunction]) -> list[float]:
        """Batched counts — the fast path behind ``Explorer.run_many``."""
        return [
            self.value_of(estimate) for estimate in self.estimate_many(predicates)
        ]

    def sum_values(self, attr, weights, predicate: Conjunction | None) -> float:
        """Model-expected ``SUM(w(attr))`` (Sec 7 aggregate extension)."""
        return self.summary.engine.sum_estimate(
            self.schema.position(attr), weights, predicate
        )

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        estimates = self.summary.group_by(attrs, predicate)
        return {
            labels: self.value_of(estimate)
            for labels, estimate in estimates.items()
        }

    def __repr__(self):
        return f"SummaryBackend({self.summary.name!r})"


class ShardedBackend(Backend):
    """Answers counting queries by merging per-shard MaxEnt estimates.

    Same contract as :class:`SummaryBackend` — the SQL engine and the
    Explorer cannot tell the two apart — but each call evaluates every
    non-pruned shard of a :class:`~repro.core.sharding.ShardedSummary`
    and combines the answers (counts add, variances add).  Batched
    entry points fan the per-shard passes across a thread pool when
    ``parallel`` is enabled (default: machines with more than one
    core).
    """

    supports_sum = True
    is_exact = False

    def __init__(
        self,
        summary: ShardedSummary,
        rounded: bool = False,
        parallel: bool | None = None,
    ):
        self.summary = summary
        self.schema = summary.schema
        self.rounded = rounded
        self.parallel = parallel
        self.name = summary.name

    def value_of(self, estimate: MergedEstimate) -> float:
        """Scalar reported for a merged estimate (honors ``rounded``)."""
        if self.rounded:
            return float(estimate.rounded)
        return estimate.expectation

    def count(self, predicate: Conjunction) -> float:
        return self.value_of(self.summary.estimate(predicate))

    def estimate(self, predicate: Conjunction) -> MergedEstimate:
        """Full merged estimate with quadrature-combined error bounds."""
        return self.summary.estimate(predicate)

    def estimate_many(
        self, predicates: Sequence[Conjunction]
    ) -> list[MergedEstimate]:
        """Batched merged estimates — one vectorized pass per shard,
        shards evaluated in parallel."""
        return self.summary.estimate_batch(predicates, parallel=self.parallel)

    def count_many(self, predicates: Sequence[Conjunction]) -> list[float]:
        return [
            self.value_of(estimate) for estimate in self.estimate_many(predicates)
        ]

    def sum_values(self, attr, weights, predicate: Conjunction | None) -> float:
        return self.summary.sum_estimate(attr, weights, predicate)

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        estimates = self.summary.group_by(attrs, predicate)
        return {
            labels: self.value_of(estimate)
            for labels, estimate in estimates.items()
        }

    def describe(self) -> dict:
        card = super().describe()
        card["shards"] = self.summary.num_shards
        card["shard_by"] = self.summary.shard_by
        return card

    def __repr__(self):
        return (
            f"ShardedBackend({self.summary.name!r}, "
            f"shards={self.summary.num_shards})"
        )
