"""Append batches: new rows, validated against (and possibly widening)
a summary's schema.

The ingest layer accepts appended data in whatever shape the caller
has — label rows, a saved :class:`~repro.data.relation.Relation` — and
normalizes it to an :class:`AppendBatch`: a relation over the *target*
schema plus a record of any **domain growth** (labels never seen at
build time).  Growth is handled by widening: new labels are appended to
the affected domains, so every existing index — and with it every
fitted statistic, bucket boundary, and model parameter — keeps its
meaning (see :func:`repro.core.summary.require_widened_schema`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import IngestError


def widen_schema(schema: Schema, new_labels: dict) -> Schema:
    """Schema with extra labels appended to some domains.

    ``new_labels`` maps attribute position to an ordered list of labels
    to append.  Returns ``schema`` unchanged when there is nothing to
    add.
    """
    if not any(new_labels.values()):
        return schema
    domains = []
    for pos, domain in enumerate(schema.domains):
        extra = new_labels.get(pos)
        if extra:
            domains.append(Domain(domain.name, domain.labels + list(extra)))
        else:
            domains.append(domain)
    return Schema(domains)


class AppendBatch:
    """One batch of rows to append to a summarized relation.

    Attributes
    ----------
    schema:
        The (possibly widened) schema the batch's indices refer to.
    relation:
        The batch rows as a :class:`Relation` over ``schema``.
    new_labels:
        ``{attribute name: [new labels]}`` for every domain the batch
        grew; empty when all values were already in the active domains.
    """

    __slots__ = ("schema", "relation", "new_labels")

    def __init__(self, schema: Schema, relation: Relation, new_labels: dict):
        self.schema = schema
        self.relation = relation
        self.new_labels = new_labels

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    @property
    def grows_domains(self) -> bool:
        return bool(self.new_labels)

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "AppendBatch":
        """Build a batch from label rows (one tuple of labels per row).

        Labels outside an attribute's active domain are appended to it
        in first-seen order — the domain-growth path.
        """
        grown: dict[int, list] = {}
        lookup: list[dict] = []
        for pos, domain in enumerate(schema.domains):
            lookup.append({label: index for index, label in enumerate(domain.labels)})
        columns: list[list[int]] = [[] for _ in schema.domains]
        for row in rows:
            row = tuple(row)
            if len(row) != schema.num_attributes:
                raise IngestError(
                    f"append row {row!r} has {len(row)} values; schema has "
                    f"{schema.num_attributes} attributes"
                )
            for pos, label in enumerate(row):
                index = lookup[pos].get(label)
                if index is None:
                    index = len(lookup[pos])
                    lookup[pos][label] = index
                    grown.setdefault(pos, []).append(label)
                columns[pos].append(index)
        widened = widen_schema(schema, grown)
        relation = Relation(
            widened,
            [np.asarray(column, dtype=np.int64) for column in columns],
        )
        return cls(
            widened,
            relation,
            {
                schema.attribute_names[pos]: labels
                for pos, labels in sorted(grown.items())
            },
        )

    @classmethod
    def from_relation(cls, schema: Schema, relation: Relation) -> "AppendBatch":
        """Build a batch from a relation saved with its own schema.

        The batch relation must have the same attribute names in the
        same order; its labels are re-indexed into ``schema``'s domains
        (growing them where needed), so the two relations may disagree
        on label *order* or on which labels exist.
        """
        if relation.schema.attribute_names != schema.attribute_names:
            raise IngestError(
                f"append batch has attributes {relation.schema.attribute_names}, "
                f"summary expects {schema.attribute_names}"
            )
        grown: dict[int, list] = {}
        columns = []
        for pos, domain in enumerate(schema.domains):
            batch_domain = relation.schema.domain(pos)
            index_of = {label: index for index, label in enumerate(domain.labels)}
            mapping = np.empty(batch_domain.size, dtype=np.int64)
            for batch_index, label in enumerate(batch_domain.labels):
                index = index_of.get(label)
                if index is None:
                    index = len(index_of)
                    index_of[label] = index
                    grown.setdefault(pos, []).append(label)
                mapping[batch_index] = index
            columns.append(mapping[relation.column(pos)])
        widened = widen_schema(schema, grown)
        return cls(
            widened,
            Relation(widened, columns),
            {
                schema.attribute_names[pos]: labels
                for pos, labels in sorted(grown.items())
            },
        )

    @classmethod
    def empty(cls, schema: Schema) -> "AppendBatch":
        """The zero-row batch (an ingest no-op)."""
        return cls(
            schema,
            Relation(
                schema,
                [np.empty(0, dtype=np.int64) for _ in schema.domains],
            ),
            {},
        )

    def __repr__(self):
        growth = f", grew {sorted(self.new_labels)}" if self.new_labels else ""
        return f"AppendBatch(rows={self.num_rows}{growth})"
