"""The append pipeline: route → delta-refit → publish.

One :class:`IngestPipeline` owns the mutable ingest state of one
summary: the per-shard base relations, the current fitted model, and
(optionally) the :class:`~repro.api.store.SummaryStore` it publishes
refreshed versions to.  Each :meth:`append`:

1. **routes** the batch rows to shards — attribute-partitioned
   summaries send each row to the shard owning its value range
   (domain growth widens the top shard's range), round-robin summaries
   continue the original cycle so appends keep shard sizes balanced
   within one row;
2. **delta-refits only the touched shards** — each shard's solver is
   warm-started from its previous solution and reuses its bucket
   structure (no statistic re-selection), so an append touching 1 of N
   shards costs roughly 1/N of a full rebuild (see
   ``benchmarks/bench_ingest.py``); untouched shards are reused as-is
   (or exactly migrated when another shard grew a domain);
3. **publishes** the refreshed shard set to the store as a new child
   version carrying lineage metadata — ``parent_version``,
   ``rows_appended``, ``shards_refit``, ``domain_growth`` — which the
   serve layer's :class:`~repro.serve.watcher.StoreWatcher` picks up to
   hot-reload live sessions.

An empty batch is a no-op version-wise: nothing is refit, nothing is
published.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.sharding import ShardedSummary
from repro.core.summary import EntropySummary
from repro.data.relation import Relation
from repro.errors import IngestError
from repro.ingest.batch import AppendBatch


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`IngestPipeline.append` did."""

    summary: "EntropySummary | ShardedSummary"
    rows_appended: int
    shards_refit: tuple[int, ...]
    domain_growth: bool
    seconds: float
    #: Store record of the published version; ``None`` when the append
    #: was a no-op or the pipeline has no store attached.
    record: object | None = None
    lineage: dict | None = field(default=None)

    @property
    def published_version(self) -> int | None:
        return None if self.record is None else self.record.version

    def describe(self) -> str:
        if self.rows_appended == 0:
            return "ingest: empty batch, nothing to do"
        shards = (
            ", ".join(str(index) for index in self.shards_refit) or "-"
        )
        growth = ", domains grew" if self.domain_growth else ""
        published = (
            f", published v{self.published_version}"
            if self.record is not None
            else ""
        )
        return (
            f"ingest: +{self.rows_appended} rows, refit shard(s) "
            f"[{shards}] in {self.seconds:.2f}s{growth}{published}"
        )


class IngestPipeline:
    """Incremental maintenance of one summary over an append-mostly feed.

    Parameters
    ----------
    summary:
        The currently fitted :class:`EntropySummary` or
        :class:`ShardedSummary`.
    relation:
        The exact relation the summary was fitted from (row counts are
        verified; a mismatch raises :class:`IngestError` instead of
        silently drifting the statistics).
    store / name:
        When given, every non-empty append publishes the refreshed
        summary to the store under ``name`` with lineage metadata.
    max_iterations / threshold:
        Solver knobs for the delta refits (the warm start usually
        converges well inside the cap).
    """

    def __init__(
        self,
        summary: "EntropySummary | ShardedSummary",
        relation: Relation,
        *,
        store=None,
        name: str | None = None,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        chaos=None,
    ):
        #: Optional :class:`~repro.chaos.FaultInjector`.  Its
        #: ``ingest.append`` hook fires at the top of :meth:`append`,
        #: before any state mutates — an injected failure leaves the
        #: pipeline consistent and the batch safely retryable.
        self.chaos = chaos
        if relation.schema != summary.schema:
            raise IngestError(
                "base relation schema does not match the summary's "
                f"({relation.schema!r} vs {summary.schema!r})"
            )
        if relation.num_rows != summary.total:
            raise IngestError(
                f"base relation has {relation.num_rows} rows but the summary "
                f"was fitted over {summary.total}; pass the relation the "
                "summary was built from (plus every batch already ingested)"
            )
        self.summary = summary
        self.store = store
        self.name = name if name is not None else summary.name
        self.max_iterations = max_iterations
        self.threshold = threshold
        self.parent_version: int | None = None
        if store is not None and store.has(self.name):
            # Claim the latest stored version as lineage parent only if
            # it plausibly *is* the supplied summary — a caller holding
            # an older version (or a fresh unsaved fit) must not have
            # its children mislabeled as refreshed from the latest.
            # from_store() pins the loaded record's version exactly.
            latest = store.record(self.name)
            shards = (
                summary.num_shards
                if isinstance(summary, ShardedSummary)
                else 0
            )
            if (
                latest.total == summary.total
                and latest.num_statistics == summary.num_statistics
                and latest.shards == shards
            ):
                self.parent_version = latest.version
        self._shard_relations = self._split(relation)

    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store,
        name: str,
        relation: Relation,
        *,
        version: int | None = None,
        tag: str | None = None,
        max_iterations: int = 30,
        threshold: float = 1e-6,
        chaos=None,
    ) -> "IngestPipeline":
        """Pipeline over a stored summary (latest version by default)."""
        record, summary = store.load_with_record(name, version=version, tag=tag)
        pipeline = cls(
            summary,
            relation,
            store=store,
            name=name,
            max_iterations=max_iterations,
            threshold=threshold,
            chaos=chaos,
        )
        pipeline.parent_version = record.version
        return pipeline

    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.summary.schema

    @property
    def relation(self) -> Relation:
        """The full base relation, in an order :meth:`_split` inverts.

        Round-robin shard sets interleave (shard ``i``'s rows occupy
        global positions ``i, i+n, i+2n, ...`` — the same assignment
        ``partition_relation`` uses), so saving this relation and
        re-opening a pipeline on it (the ``repro ingest --write-data``
        round trip) reconstructs each shard's rows *exactly*.  Ranged
        shard sets concatenate; their split is by value, not position.
        """
        relations = self._shard_relations
        if len(relations) == 1:
            return relations[0]
        if (
            isinstance(self.summary, ShardedSummary)
            and self.summary.owned_ranges is None
        ):
            total = sum(rel.num_rows for rel in relations)
            count = len(relations)
            columns = []
            for pos in range(self.schema.num_attributes):
                column = np.empty(total, dtype=np.int64)
                for index, rel in enumerate(relations):
                    column[index::count] = rel.column(pos)
                columns.append(column)
            return Relation(self.schema, columns)
        columns = [
            np.concatenate([rel.column(pos) for rel in relations])
            for pos in range(self.schema.num_attributes)
        ]
        return Relation(self.schema, columns)

    @property
    def total(self) -> int:
        return self.summary.total

    # ------------------------------------------------------------------
    def _split(self, relation: Relation) -> list[Relation]:
        """Reconstruct the per-shard base relations of the summary."""
        summary = self.summary
        if isinstance(summary, EntropySummary):
            return [relation]
        if summary.owned_ranges is not None:
            pos = summary.by_position
            column = relation.column(pos)
            shards = []
            for low, high in summary.owned_ranges:
                keep = (column >= low) & (column <= high)
                shards.append(relation.sample_rows(np.flatnonzero(keep)))
        else:
            rows = np.arange(relation.num_rows)
            shards = [
                relation.sample_rows(rows[start :: summary.num_shards])
                for start in range(summary.num_shards)
            ]
        round_robin = summary.owned_ranges is None
        for index, (shard_relation, shard) in enumerate(
            zip(shards, summary.shards)
        ):
            if shard_relation.num_rows != shard.total:
                raise IngestError(
                    f"shard {index}: base relation yields "
                    f"{shard_relation.num_rows} rows but the shard model was "
                    f"fitted over {shard.total}; the relation does not match "
                    "the summary"
                )
            if round_robin:
                # Positional splitting yields the right row *counts* for
                # any row order — only the marginals can tell a reordered
                # relation (whose rows would land in the wrong shards)
                # from the one the shards were actually fitted on.
                for pos, counts in enumerate(shard.statistic_set.one_dim):
                    observed = shard_relation.marginal(pos).astype(float)
                    if not np.array_equal(observed, np.asarray(counts)):
                        raise IngestError(
                            f"shard {index}: base relation rows do not match "
                            "the shard model (marginals differ on attribute "
                            f"{relation.schema.attribute_names[pos]!r}); "
                            "round-robin ingest needs the relation in its "
                            "original row order — e.g. the one written by "
                            "`repro ingest --write-data`"
                        )
        return shards

    def _normalize(self, batch) -> AppendBatch:
        if isinstance(batch, AppendBatch):
            return batch
        if isinstance(batch, Relation):
            return AppendBatch.from_relation(self.schema, batch)
        return AppendBatch.from_rows(self.schema, batch)

    @staticmethod
    def _rebased(relation: Relation, schema) -> Relation:
        """The same rows under a widened schema (indices are unchanged
        by widening, so the columns carry over)."""
        if relation.schema == schema:
            return relation
        return Relation(
            schema,
            [
                relation.column(pos)
                for pos in range(schema.num_attributes)
            ],
        )

    # ------------------------------------------------------------------
    def route(self, batch: AppendBatch) -> list[np.ndarray]:
        """Row indices of ``batch`` destined for each shard.

        Attribute-partitioned summaries route by owned value range
        (indices beyond the top range — domain growth — go to the top
        shard, whose range is widened by :meth:`append`).  Round-robin
        summaries *continue the cycle*: the batch row at global
        position ``N + k`` goes to shard ``(N + k) % n``, exactly the
        assignment ``partition_relation`` gave the original rows — so
        shard sizes stay balanced within one row and the
        :attr:`relation` round trip stays exact.
        """
        summary = self.summary
        if isinstance(summary, EntropySummary):
            return [np.arange(batch.num_rows)]
        if summary.owned_ranges is not None:
            assignment = summary.route_indices(
                batch.relation.column(summary.by_position)
            )
        else:
            assignment = (
                self.total + np.arange(batch.num_rows)
            ) % summary.num_shards
        return [
            np.flatnonzero(assignment == index)
            for index in range(summary.num_shards)
        ]

    def append(self, batch, *, tag: str | None = None) -> IngestReport:
        """Apply one append batch; returns what happened.

        ``batch`` may be an :class:`AppendBatch`, a
        :class:`~repro.data.relation.Relation` (re-indexed by label), or
        an iterable of label rows.  Empty batches change nothing and
        publish nothing.
        """
        started = time.perf_counter()
        if self.chaos is not None:
            # Opt-in chaos hook, before any mutation: a raising
            # injector leaves the pipeline consistent and the caller
            # retries the identical batch.
            self.chaos.act("ingest.append")
        batch = self._normalize(batch)
        if batch.num_rows == 0:
            return IngestReport(
                summary=self.summary,
                rows_appended=0,
                shards_refit=(),
                domain_growth=False,
                seconds=time.perf_counter() - started,
            )
        schema = batch.schema  # widened when the batch grew a domain
        grew = batch.grows_domains
        routed = self.route(batch)

        summary = self.summary
        if isinstance(summary, EntropySummary):
            base = self._rebased(self._shard_relations[0], schema)
            combined = Relation.concat([base, batch.relation])
            refreshed: EntropySummary | ShardedSummary = summary.refit_appended(
                batch.relation,
                max_iterations=self.max_iterations,
                threshold=self.threshold,
            )
            self._shard_relations = [combined]
            refit_ids: tuple[int, ...] = (0,)
        else:
            replacements: dict[int, EntropySummary] = {}
            new_relations = list(self._shard_relations)
            touched = []
            for index, rows in enumerate(routed):
                base = self._rebased(new_relations[index], schema)
                if rows.size == 0:
                    new_relations[index] = base
                    if grew:
                        # Another shard grew a domain: re-anchor this
                        # one on the widened schema without re-solving
                        # (exact — new values carry parameter 0).
                        replacements[index] = summary.shards[index].migrated(
                            schema
                        )
                    continue
                shard_batch = batch.relation.sample_rows(rows)
                # Statistics update additively over the batch rows only
                # — O(batch), not O(shard) — see refit_appended.
                replacements[index] = summary.shards[index].refit_appended(
                    shard_batch,
                    max_iterations=self.max_iterations,
                    threshold=self.threshold,
                )
                new_relations[index] = Relation.concat([base, shard_batch])
                touched.append(index)
            ranges = summary.owned_ranges
            if ranges is not None and grew:
                # The top shard owns everything above the old ranges.
                pos = summary.by_position
                top = schema.domain(pos).size - 1
                low, high = ranges[-1]
                ranges = [*ranges[:-1], (low, max(high, top))]
            refreshed = summary.with_shards(replacements, ranges=ranges)
            self._shard_relations = new_relations
            refit_ids = tuple(touched)

        self.summary = refreshed
        lineage = {
            "parent_version": self.parent_version,
            "rows_appended": batch.num_rows,
            "shards_refit": list(refit_ids),
            "domain_growth": grew,
        }
        if batch.new_labels:
            lineage["new_labels"] = {
                attr: [str(label) for label in labels]
                for attr, labels in batch.new_labels.items()
            }
        record = None
        if self.store is not None:
            record = self.store.save(
                refreshed, self.name, tag=tag, lineage=lineage
            )
            self.parent_version = record.version
        return IngestReport(
            summary=refreshed,
            rows_appended=batch.num_rows,
            shards_refit=refit_ids,
            domain_growth=grew,
            seconds=time.perf_counter() - started,
            record=record,
            lineage=lineage,
        )

    def __repr__(self):
        target = (
            f", publishes {self.name!r}" if self.store is not None else ""
        )
        return (
            f"IngestPipeline({self.summary!r}, n={self.total}{target})"
        )


def delta_refresh(
    summary: "EntropySummary | ShardedSummary",
    relation: Relation,
    batch,
    *,
    max_iterations: int = 30,
    threshold: float = 1e-6,
) -> IngestReport:
    """One-shot append without a pipeline (no store publishing)."""
    pipeline = IngestPipeline(
        summary,
        relation,
        max_iterations=max_iterations,
        threshold=threshold,
    )
    return pipeline.append(batch)


__all__ = ["AppendBatch", "IngestPipeline", "IngestReport", "delta_refresh"]
