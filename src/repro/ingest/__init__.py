"""Incremental summary maintenance: append → delta refit → publish.

EntropyDB's summaries (journals_pvldb_OrrSB17) are fitted once over a
static relation; this package makes them *maintainable* under an
append-mostly feed without ever paying for a full rebuild:

* :class:`AppendBatch` — new rows normalized against the summary's
  schema, with domain growth handled by widening (old indices keep
  their meaning);
* :class:`IngestPipeline` — routes batch rows to the shards whose
  value ranges they touch, **delta-refits only those shards** (each
  solver warm-started from its previous solution, bucket structure
  reused), and publishes the refreshed shard set to a
  :class:`~repro.api.store.SummaryStore` as a child version with
  lineage metadata;
* :func:`delta_refresh` — the one-shot form.

The serve layer's :class:`~repro.serve.watcher.StoreWatcher` closes the
loop: it notices the published version and hot-reloads live sessions,
so data staleness becomes a tunable, not a redeploy.
"""

from repro.ingest.batch import AppendBatch, widen_schema
from repro.ingest.pipeline import IngestPipeline, IngestReport, delta_refresh

__all__ = [
    "AppendBatch",
    "IngestPipeline",
    "IngestReport",
    "delta_refresh",
    "widen_schema",
]
