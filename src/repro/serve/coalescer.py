"""Request coalescing: many concurrent clients, one vectorized pass.

The paper's query path makes batching almost free — a batch of counting
queries is one vectorized polynomial evaluation (PR 3's
``execute_batch``), so N concurrent clients asking N questions should
cost roughly one question.  The :class:`Coalescer` turns that into a
serving-side mechanism:

* requests arriving within a **window** (default ~2 ms) collect into
  one batch;
* requests carrying the same **key** (the plan's canonical cache key)
  *dedup*: one execution answers all of them;
* a batch also flushes early when it reaches ``max_batch`` distinct
  keys, bounding worst-case queueing under load;
* the flush runs ``run_batch`` (typically
  ``Planner.execute_many`` via the server's thread executor) once for
  the whole batch and fans results back to every waiter.

The class is asyncio-native and generic: keys are any hashable, items
are opaque, ``run_batch`` maps a list of unique items to a list of
results.  Tests drive it with plain integers and a spy function.
Counters live in the shared :class:`~repro.obs.MetricsRegistry`
(flushes labelled by what triggered them), read back through the
attribute properties the stats endpoint and benchmarks use.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, Sequence

from repro.errors import ReproError
from repro.obs import MetricsRegistry


class Coalescer:
    """Micro-batching queue with same-key dedup.

    ``run_batch`` receives the **unique** items of a batch (first
    submission wins per key) and must return one result per item, in
    order.  It is awaited, so pass an async function; CPU-bound
    executors should wrap their work in ``loop.run_in_executor``.
    """

    def __init__(
        self,
        run_batch: Callable[[list], Awaitable[Sequence]],
        *,
        window: float = 0.002,
        max_batch: int = 64,
        metrics: MetricsRegistry | None = None,
    ):
        if window < 0:
            raise ReproError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        self.run_batch = run_batch
        self.window = float(window)
        self.max_batch = int(max_batch)
        # key -> (item, [futures waiting on it])
        self._pending: dict[Hashable, tuple[object, list[asyncio.Future]]] = {}
        self._timer: asyncio.TimerHandle | None = None
        self._flush_tasks: set[asyncio.Task] = set()
        self._closed = False
        # -- counters (stats endpoint / bench) --
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._submitted = self.metrics.counter(
            "repro_coalescer_submitted_total", "Submissions accepted."
        )
        self._coalesced = self.metrics.counter(
            "repro_coalescer_coalesced_total",
            "Submissions answered by another submission's execution.",
        )
        self._flushes = self.metrics.counter(
            "repro_coalescer_flushes_total",
            "Batches flushed, by trigger (size, window, drain).",
            ("reason",),
        )
        self._largest_batch = self.metrics.gauge(
            "repro_coalescer_largest_batch",
            "Most distinct keys one flush ever carried.",
        )

    # -- submission -------------------------------------------------------
    async def submit(self, key: Hashable, item) -> object:
        """Enqueue ``item`` under ``key``; resolves with its result.

        Submissions sharing a key within one window share one
        execution and therefore one result object.
        """
        if self._closed:
            raise ReproError("coalescer is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._submitted.inc()
        entry = self._pending.get(key)
        if entry is not None:
            self._coalesced.inc()
            entry[1].append(future)
        else:
            self._pending[key] = (item, [future])
            if len(self._pending) >= self.max_batch:
                self._flush_now(loop, reason="size")
            elif self._timer is None:
                self._timer = loop.call_later(
                    self.window, self._flush_on_window, loop
                )
        return await future

    # -- flushing ---------------------------------------------------------
    def _flush_on_window(self, loop) -> None:
        self._timer = None
        if self._pending:
            self._flush_now(loop, reason="window")

    def _flush_now(self, loop, reason: str = "drain") -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = self._pending
        self._pending = {}
        self._flushes.labels(reason=reason).inc()
        self._largest_batch.set_max(len(batch))
        task = loop.create_task(self._run(batch))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _run(self, batch: dict) -> None:
        items = [item for item, _ in batch.values()]
        try:
            results = await self.run_batch(items)
        except BaseException as error:
            for _, futures in batch.values():
                for future in futures:
                    if not future.cancelled():
                        future.set_exception(error)
            return
        for (_, futures), result in zip(batch.values(), results):
            for future in futures:
                if future.cancelled():
                    continue
                # Per-item failures: run_batch may map a single bad
                # item to an exception instance instead of poisoning
                # the whole flush.
                if isinstance(result, BaseException):
                    future.set_exception(result)
                else:
                    future.set_result(result)

    async def drain(self) -> None:
        """Flush pending work and wait for every in-flight flush to
        finish — waiters must hold answers before the loop goes away."""
        if self._pending:
            self._flush_now(asyncio.get_running_loop())
        while self._flush_tasks:
            await asyncio.gather(
                *list(self._flush_tasks), return_exceptions=True
            )

    async def close(self) -> None:
        """Flush pending work and reject future submissions."""
        self._closed = True
        await self.drain()

    # -- introspection ----------------------------------------------------
    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def coalesced(self) -> int:
        return int(self._coalesced.value)

    @property
    def flushes(self) -> int:
        return int(self._flushes.total())

    @property
    def flushes_by_size(self) -> int:
        return int(self._flushes.labels(reason="size").value)

    @property
    def flushes_by_window(self) -> int:
        return int(self._flushes.labels(reason="window").value)

    @property
    def largest_batch(self) -> int:
        return int(self._largest_batch.value)

    def stats(self, snapshot: dict | None = None) -> dict:
        # ``snapshot`` is accepted for signature parity with the other
        # components; the coalescer only ever runs on the event loop
        # thread, so its attribute reads cannot tear.
        del snapshot
        submitted, flushes = self.submitted, self.flushes
        return {
            "window_ms": self.window * 1e3,
            "max_batch": self.max_batch,
            "pending": len(self._pending),
            "submitted": submitted,
            "coalesced": self.coalesced,
            "flushes": flushes,
            "flushes_by_size": self.flushes_by_size,
            "flushes_by_window": self.flushes_by_window,
            "largest_batch": self.largest_batch,
            "mean_batch": (
                round((submitted - len(self._pending)) / flushes, 2)
                if flushes
                else 0.0
            ),
        }

    def __repr__(self):
        return (
            f"Coalescer(window={self.window * 1e3:g}ms, "
            f"max_batch={self.max_batch}, flushes={self.flushes})"
        )
