"""Admission control: bounded queues, per-client fairness, fast 503s.

The serving layer's contract with interactive clients is *low latency
or an honest no* — queuing a request the server cannot serve soon just
converts overload into timeout storms.  Admission is decided before a
request costs anything:

* **global depth** — at most ``max_queue`` admitted-but-unfinished
  requests across the whole server; past that, new work is rejected
  with a 503-style error carrying a ``Retry-After`` hint sized to the
  backlog;
* **per-client in-flight limit** — one client pipelining hundreds of
  requests cannot starve the rest; past ``max_inflight`` its own
  requests bounce (its fault, its hint) while other clients keep
  being admitted.

The controller only counts; the coalescer and executor do the work.
Its counters live in the shared :class:`~repro.obs.MetricsRegistry`
(rejections labelled by scope), so saturation shows up on the same
Prometheus scrape as the latency it causes.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError
from repro.obs import MetricsRegistry, sample_value


class ServerSaturated(ReproError):
    """Admission rejected a request; retry after ``retry_after`` seconds.

    ``scope`` is ``"queue"`` (global backlog full) or ``"client"`` (the
    caller exceeded its own in-flight allowance).
    """

    def __init__(self, message: str, retry_after: float, scope: str):
        super().__init__(message)
        self.retry_after = retry_after
        self.scope = scope


class AdmissionController:
    """Counts in-flight work and rejects past the configured bounds.

    ``flush_window`` (seconds) sizes the ``Retry-After`` hint: the
    coalescer drains roughly one batch per window, so a full queue
    clears in about ``depth × window / max_batch`` — the hint rounds
    that up pessimistically (one window per queued request) so a
    well-behaved client backs off enough to actually get in.
    """

    def __init__(
        self,
        max_queue: int = 64,
        max_inflight_per_client: int = 16,
        flush_window: float = 0.002,
        metrics: MetricsRegistry | None = None,
    ):
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        if max_inflight_per_client < 1:
            raise ReproError(
                "max_inflight_per_client must be >= 1, "
                f"got {max_inflight_per_client}"
            )
        self.max_queue = int(max_queue)
        self.max_inflight_per_client = int(max_inflight_per_client)
        self.flush_window = float(flush_window)
        # EWMA of observed service time: the hint starts from the
        # window (optimistic) and adapts as completions stream in, so
        # a slow backend produces honest, larger Retry-After values.
        self._service_ewma = self.flush_window
        self._lock = threading.Lock()
        self._depth = 0
        self._per_client: dict[str, int] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._admitted = self.metrics.counter(
            "repro_admission_admitted_total", "Requests admitted."
        )
        self._rejected = self.metrics.counter(
            "repro_admission_rejected_total",
            "Requests rejected, by scope (queue = global backlog full, "
            "client = caller over its in-flight allowance).",
            ("scope",),
        )
        self._rejected_queue = self._rejected.labels(scope="queue")
        self._rejected_client = self._rejected.labels(scope="client")
        self._depth_gauge = self.metrics.gauge(
            "repro_admission_depth", "Admitted-but-unfinished requests."
        )
        self._peak_depth = self.metrics.gauge(
            "repro_admission_peak_depth", "Highest depth ever admitted."
        )

    # -- hints ------------------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Feed one completed request's service time into the hint."""
        with self._lock:
            self._service_ewma = 0.8 * self._service_ewma + 0.2 * max(
                seconds, 0.0
            )

    def _retry_after(self, backlog: int) -> float:  # repro: holds[_lock]
        """Seconds until the backlog plausibly drains (>= one window).

        Both callers sit inside :meth:`acquire`'s ``with self._lock``
        block — the EWMA read here is guarded by that caller-held lock.
        """
        per_request = max(self.flush_window, self._service_ewma)
        return round(max(per_request, backlog * per_request), 4)

    # -- admission --------------------------------------------------------
    def acquire(self, client: str) -> None:
        """Admit one request for ``client`` or raise :class:`ServerSaturated`.

        Every successful ``acquire`` must be paired with a ``release``
        (use :meth:`held` for the context-manager form).
        """
        with self._lock:
            if self._depth >= self.max_queue:
                self._rejected_queue.inc()
                raise ServerSaturated(
                    f"server saturated: {self._depth} requests queued "
                    f"(max_queue={self.max_queue})",
                    self._retry_after(self._depth),
                    scope="queue",
                )
            inflight = self._per_client.get(client, 0)
            if inflight >= self.max_inflight_per_client:
                self._rejected_client.inc()
                raise ServerSaturated(
                    f"client {client} has {inflight} requests in flight "
                    f"(max_inflight_per_client="
                    f"{self.max_inflight_per_client})",
                    self._retry_after(inflight),
                    scope="client",
                )
            self._depth += 1
            self._per_client[client] = inflight + 1
            self._admitted.inc()
            self._depth_gauge.set(self._depth)
            self._peak_depth.set_max(self._depth)

    def release(self, client: str) -> None:
        with self._lock:
            self._depth -= 1
            remaining = self._per_client.get(client, 1) - 1
            if remaining <= 0:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = remaining
            self._depth_gauge.set(self._depth)

    class _Held:
        __slots__ = ("controller", "client")

        def __init__(self, controller, client):
            self.controller = controller
            self.client = client

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            self.controller.release(self.client)

    def held(self, client: str) -> "_Held":
        """``with admission.held(client):`` — acquire now, release on exit."""
        self.acquire(client)
        return self._Held(self, client)

    # -- introspection ----------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def admitted(self) -> int:
        return int(self._admitted.value)

    @property
    def rejected_queue(self) -> int:
        return int(self._rejected_queue.value)

    @property
    def rejected_client(self) -> int:
        return int(self._rejected_client.value)

    @property
    def peak_depth(self) -> int:
        return int(self._peak_depth.value)

    def stats(self, snapshot: dict | None = None) -> dict:
        if snapshot is None:
            snapshot = self.metrics.snapshot()
        with self._lock:
            clients_in_flight = len(self._per_client)
        return {
            "depth": int(sample_value(snapshot, "repro_admission_depth")),
            "max_queue": self.max_queue,
            "max_inflight_per_client": self.max_inflight_per_client,
            "clients_in_flight": clients_in_flight,
            "admitted": int(
                sample_value(snapshot, "repro_admission_admitted_total")
            ),
            "rejected_queue": int(
                sample_value(
                    snapshot,
                    "repro_admission_rejected_total",
                    {"scope": "queue"},
                )
            ),
            "rejected_client": int(
                sample_value(
                    snapshot,
                    "repro_admission_rejected_total",
                    {"scope": "client"},
                )
            ),
            "peak_depth": int(
                sample_value(snapshot, "repro_admission_peak_depth")
            ),
        }

    def __repr__(self):
        return (
            f"AdmissionController(depth={self.depth}/{self.max_queue}, "
            f"per_client<={self.max_inflight_per_client})"
        )
