"""The :class:`StoreWatcher`: staleness as a tunable, not a redeploy.

The ingest pipeline publishes refreshed summary versions to the
:class:`~repro.api.store.SummaryStore`; the watcher closes the loop on
the serving side.  It periodically reads the store manifest (a cheap
single-file read, run in an executor so the event loop never blocks)
and, when a **newer** version of the served name appears, triggers the
server's existing hot-reload path — in-flight requests stay pinned to
the generation they started on, and the versioned result cache needs no
sweep.

The poll interval *is* the staleness bound: a server watching every
``t`` seconds serves data at most ``t + refit`` seconds behind the
ingest feed.  Enable with ``repro serve --watch SECONDS`` or
``ServeConfig(watch_interval=...)``.
"""

from __future__ import annotations

import asyncio
import time

from repro.errors import ReproError
from repro.obs import MetricsRegistry, sample_value


class StoreWatcher:
    """Auto-reload a :class:`~repro.serve.server.SummaryServer` when its
    store gains a newer version of the served summary name."""

    def __init__(self, server, interval: float,
                 metrics: MetricsRegistry | None = None):
        if interval <= 0:
            raise ReproError(
                f"watch_interval (--watch) must be > 0, got {interval}"
            )
        self.server = server
        self.interval = float(interval)
        if metrics is None:
            metrics = getattr(server, "metrics", None) or MetricsRegistry()
        self.metrics = metrics
        self._checks = metrics.counter(
            "repro_watcher_checks_total", "Store-manifest polls."
        )
        self._reloads = metrics.counter(
            "repro_watcher_reloads_total", "Hot reloads the watcher triggered."
        )
        self._errors = metrics.counter(
            "repro_watcher_errors_total", "Polls that failed (and were "
            "swallowed — the watcher must outlive transient trouble)."
        )
        self.last_seen: int | None = None
        self.last_check_at: float | None = None
        #: Highest version this watcher has acted on.  Reloads trigger
        #: only when the store moves *beyond* it — so an operator who
        #: rolls back with ``reload(version=...)`` stays rolled back
        #: until a genuinely new version is published, instead of the
        #: watcher flapping the server straight back to the bad one.
        self._high_water = int(server.version)
        self._task: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Begin polling on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-store-watcher"
            )

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # -- polling -----------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            await self.check_once()

    async def check_once(self) -> bool:
        """One manifest poll; returns True when a reload was triggered.

        Any failure — a store error (name deleted mid-poll), a
        transient filesystem hiccup reading the manifest, a
        half-written model file failing to load — is counted and
        swallowed: the watcher must outlive transient trouble and keep
        polling, or the server silently serves stale data forever.
        """
        loop = asyncio.get_running_loop()
        self._checks.inc()
        self.last_check_at = time.monotonic()
        try:
            latest = await loop.run_in_executor(None, self._latest_version)
            self.last_seen = latest
            if latest > self._high_water:
                await self.server._reload_in_executor()
                self._reloads.inc()
                self._high_water = latest
                return True
        except asyncio.CancelledError:
            raise
        except Exception:
            self._errors.inc()
        return False

    def _latest_version(self) -> int:
        # Executor thread.  The opt-in chaos hook injects transient
        # poll failures (manifest unreadable, store flaking) that the
        # error-swallowing contract above must absorb.
        chaos = getattr(self.server, "chaos", None)
        if chaos is not None:
            chaos.act("watcher.poll")
        return self.server.store.latest_version(self.server.name)

    # -- introspection -----------------------------------------------------
    @property
    def checks(self) -> int:
        return int(self._checks.value)

    @property
    def reloads(self) -> int:
        return int(self._reloads.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    def stats(self, snapshot: dict | None = None) -> dict:
        if snapshot is None:
            snapshot = self.metrics.snapshot()
        return {
            "interval_s": self.interval,
            "checks": int(
                sample_value(snapshot, "repro_watcher_checks_total")
            ),
            "reloads": int(
                sample_value(snapshot, "repro_watcher_reloads_total")
            ),
            "errors": int(
                sample_value(snapshot, "repro_watcher_errors_total")
            ),
            "last_seen_version": self.last_seen,
        }

    def __repr__(self):
        return (
            f"StoreWatcher(every {self.interval:g}s, checks={self.checks}, "
            f"reloads={self.reloads})"
        )
