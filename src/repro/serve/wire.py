"""The binary wire protocol (and the strict JSON encoder).

The JSON-lines protocol of :mod:`repro.serve.server` spends a measured
share of every round trip encoding and parsing text.  This module is
the fast path: length-prefixed binary frames with a fixed struct-packed
header and a small self-describing value codec, so a response carrying
a group-by count vector ships the raw float64 buffer (decoded
zero-copy with ``np.frombuffer``) instead of a list of JSON literals.

Frame layout (big-endian, 16-byte header)::

    offset  size  field
    0       2     magic  0xAB 0x52  ("\\xabR" — first byte is non-ASCII,
                  so a JSON-lines request can never alias a frame)
    2       1     protocol version (WIRE_VERSION)
    3       1     opcode
    4       4     body length in bytes (uint32, <= MAX_BODY)
    8       8     request id (int64, echoed on the response)
    16      ...   body — one codec-packed value (usually a dict)

The request-id field carries a piggybacked **trace hint** in its spare
upper bits: clients number requests from 1, so ids fit in 32 bits and
bits 32–62 are free.  Replies echo the request id in the low 32 bits
with the low 31 bits of the server's trace id above them
(:func:`pack_trace_hint` / :func:`split_trace_hint`), keeping the
whole i64 positive.  Clients that send an id wider than 32 bits simply
get it echoed verbatim — the hint rides only when the bits are spare.

A server sniffs the **first byte** of each connection: ``0xAB`` selects
the binary loop, anything else (``{``, whitespace, ...) falls back to
newline-delimited JSON — so existing JSON clients keep working with no
flag.  Version negotiation is fail-fast: a frame whose version byte
differs from :data:`WIRE_VERSION` is answered with a status-400 error
frame naming both versions, then the connection closes.

The value codec covers exactly the types the serve protocol speaks —
``None``, bools, 64-bit ints, floats, strings, bytes, lists, string-
keyed dicts, and float64 numpy vectors::

    tag   payload
    'N'   none
    'T'   true
    'F'   false
    'i'   int64 (big-endian)
    'd'   float64 (big-endian)
    's'   uint32 length + UTF-8 bytes
    'b'   uint32 length + raw bytes
    'l'   uint32 count + packed items
    'm'   uint32 count + packed key/value pairs (keys are strings)
    'A'   uint32 count + native-endian float64 buffer

Anything else is a programming error and raises :class:`WireError` —
the server maps encode failures to a 500-style response instead of
silently stringifying them (which is also why :func:`encode_json_line`
lives here: the JSON debug path shares the same strictness).
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ReproError

#: First frame bytes; byte 0 is non-ASCII so JSON requests cannot alias.
MAGIC = b"\xabR"
#: Bump on any incompatible frame/codec change.
WIRE_VERSION = 1
#: Largest accepted frame body; oversized frames are rejected with a
#: clean status-400 error frame before the connection closes.
MAX_BODY = 16 * 1024 * 1024

_HEADER = struct.Struct(">2sBBIq")
HEADER_SIZE = _HEADER.size

# -- opcodes -----------------------------------------------------------
OP_QUERY = 0x01
OP_QUERY_BATCH = 0x02
OP_PING = 0x03
OP_STATS = 0x04
OP_DESCRIBE = 0x05
OP_RELOAD = 0x06
#: Escape hatch: any request dict (op name carried in the body), so the
#: binary protocol covers future ops without a version bump.
OP_REQUEST = 0x07
OP_REPLY = 0x81
OP_ERROR = 0x82

#: op name <-> request opcode (ops without a dedicated opcode travel as
#: OP_REQUEST with the name in the body).
OPCODE_OF_OP = {
    "query": OP_QUERY,
    "query_batch": OP_QUERY_BATCH,
    "ping": OP_PING,
    "stats": OP_STATS,
    "describe": OP_DESCRIBE,
    "reload": OP_RELOAD,
}
OP_OF_OPCODE = {opcode: op for op, opcode in OPCODE_OF_OP.items()}
REQUEST_OPCODES = (*OPCODE_OF_OP.values(), OP_REQUEST)
RESPONSE_OPCODES = (OP_REPLY, OP_ERROR)
ALL_OPCODES = (*REQUEST_OPCODES, *RESPONSE_OPCODES)


class WireError(ReproError):
    """A frame or value violates the wire protocol."""


class WireVersionError(WireError):
    """The peer speaks a different protocol version."""

    def __init__(self, version: int):
        super().__init__(
            f"unsupported wire protocol version {version}; this server "
            f"speaks version {WIRE_VERSION}"
        )
        self.version = version


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def _pack_into(value, out: list) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int) and not isinstance(value, bool):
        if not _I64_MIN <= value <= _I64_MAX:
            raise WireError(f"integer {value} does not fit in 64 bits")
        out.append(b"i" + _I64.pack(value))
    elif isinstance(value, float):
        out.append(b"d" + _F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + _U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(b"b" + _U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise WireError(
                f"only 1-D float arrays are wire-serializable, got shape "
                f"{value.shape}"
            )
        vector = np.ascontiguousarray(value, dtype=np.float64)
        out.append(b"A" + _U32.pack(vector.shape[0]))
        out.append(vector.tobytes())
    elif isinstance(value, (list, tuple)):
        out.append(b"l" + _U32.pack(len(value)))
        for item in value:
            _pack_into(item, out)
    elif isinstance(value, dict):
        out.append(b"m" + _U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out.append(b"s" + _U32.pack(len(raw)))
            out.append(raw)
            _pack_into(item, out)
    elif isinstance(value, (np.integer, np.floating, np.bool_)):
        _pack_into(value.item(), out)
    else:
        raise WireError(
            f"type {type(value).__name__} is not wire-serializable"
        )


def packb(value) -> bytes:
    """Pack one value into codec bytes."""
    out: list = []
    _pack_into(value, out)
    return b"".join(out)


class _Reader:
    __slots__ = ("view", "offset")

    def __init__(self, buffer):
        self.view = memoryview(buffer)
        self.offset = 0

    def take(self, count: int) -> memoryview:
        end = self.offset + count
        if end > len(self.view):
            raise WireError("truncated value in frame body")
        piece = self.view[self.offset : end]
        self.offset = end
        return piece


def _unpack_map(reader: _Reader, count: int) -> dict:
    result = {}
    for _ in range(count):
        key_tag = bytes(reader.take(1))
        if key_tag != b"s":
            raise WireError("dict keys must be strings")
        (length,) = _U32.unpack(reader.take(4))
        key = str(reader.take(length), "utf-8")
        result[key] = _unpack(reader)
    return result


def _unpack(reader: _Reader):
    tag = bytes(reader.take(1))
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"d":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        (length,) = _U32.unpack(reader.take(4))
        return str(reader.take(length), "utf-8")
    if tag == b"b":
        (length,) = _U32.unpack(reader.take(4))
        return bytes(reader.take(length))
    if tag == b"A":
        (count,) = _U32.unpack(reader.take(4))
        # Zero-copy: the array is a view over the frame bytes (which it
        # keeps alive); no Python floats are ever materialized.
        return np.frombuffer(reader.take(count * 8), dtype=np.float64)
    if tag == b"l":
        (count,) = _U32.unpack(reader.take(4))
        return [_unpack(reader) for _ in range(count)]
    if tag == b"m":
        (count,) = _U32.unpack(reader.take(4))
        return _unpack_map(reader, count)
    raise WireError(f"unknown codec tag {tag!r}")


def unpackb(buffer):
    """Unpack one codec value; rejects trailing garbage."""
    reader = _Reader(buffer)
    value = _unpack(reader)
    if reader.offset != len(reader.view):
        raise WireError(
            f"{len(reader.view) - reader.offset} trailing bytes after value"
        )
    return value


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

#: The trace hint is 31 bits so a packed id never sets the i64 sign bit.
TRACE_HINT_MASK = 0x7FFFFFFF
#: Request ids wider than this cannot carry a hint (bits aren't spare).
REQUEST_ID_MASK = 0xFFFFFFFF


def pack_trace_hint(request_id: int, trace_hint: int) -> int:
    """Fold a trace hint into a request id's spare upper bits.

    Ids outside ``[0, 2**32)`` pass through unchanged — their bits are
    not spare, and echoing the id verbatim matters more than tracing.
    """
    if not 0 <= request_id <= REQUEST_ID_MASK:
        return request_id
    return ((trace_hint & TRACE_HINT_MASK) << 32) | request_id


def split_trace_hint(packed_id: int) -> tuple[int, int]:
    """``(request_id, trace_hint)`` of one id field (hint 0 = none)."""
    if not 0 <= packed_id <= _I64_MAX:
        return packed_id, 0
    return packed_id & REQUEST_ID_MASK, (packed_id >> 32) & TRACE_HINT_MASK


def encode_frame(opcode: int, request_id: int, payload) -> bytes:
    """One complete frame: header + packed body."""
    if opcode not in ALL_OPCODES:
        raise WireError(f"unknown opcode 0x{opcode:02x}")
    body = packb(payload)
    if len(body) > MAX_BODY:
        raise WireError(
            f"frame body of {len(body)} bytes exceeds MAX_BODY ({MAX_BODY})"
        )
    return _HEADER.pack(MAGIC, WIRE_VERSION, opcode, len(body), request_id) + body


def decode_header(header: bytes) -> tuple[int, int, int]:
    """``(opcode, body_length, request_id)`` of one header.

    Raises :class:`WireVersionError` on a version mismatch (the frame is
    otherwise well-formed, so the reply can echo the request id) and
    :class:`WireError` on bad magic or an oversized length.
    """
    magic, version, opcode, length, request_id = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireVersionError(version)
    if length > MAX_BODY:
        raise WireError(
            f"frame body of {length} bytes exceeds MAX_BODY ({MAX_BODY})",
        )
    if opcode not in ALL_OPCODES:
        raise WireError(f"unknown opcode 0x{opcode:02x}")
    return opcode, length, request_id


class FrameDecoder:
    """Incremental frame parser for arbitrarily-chunked byte streams.

    ``feed(data)`` buffers and yields every complete ``(opcode,
    request_id, payload)`` — a frame split across any number of TCP
    reads decodes once its last byte arrives."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, int, object]]:
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            opcode, length, request_id = decode_header(
                bytes(self._buffer[:HEADER_SIZE])
            )
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            frames.append((opcode, request_id, unpackb(body)))

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def encode_request(request: dict, request_id: int) -> bytes:
    """Frame one request dict (its ``op`` picks the opcode)."""
    op = request.get("op", "query")
    opcode = OPCODE_OF_OP.get(op, OP_REQUEST)
    body = {key: value for key, value in request.items() if key != "id"}
    return encode_frame(opcode, request_id, body)


def decode_request(opcode: int, body: bytes) -> dict:
    """Request dict of one received frame (op restored from the opcode)."""
    if opcode not in REQUEST_OPCODES:
        raise WireError(f"opcode 0x{opcode:02x} is not a request")
    payload = unpackb(body) if body else {}
    if not isinstance(payload, dict):
        raise WireError("request body must be a dict")
    if opcode != OP_REQUEST:
        payload["op"] = OP_OF_OPCODE[opcode]
    elif "op" not in payload:
        raise WireError("generic request frame is missing 'op'")
    return payload


def error_frame(request_id: int, status: int, message: str, **fields) -> bytes:
    """A ready-to-send connection-level error frame."""
    envelope = {"ok": False, "status": status, "error": message, **fields}
    return encode_frame(OP_ERROR, request_id, envelope)


def truncated_frame() -> bytes:
    """The first half of a valid header — the chaos harness writes this
    before dropping a connection to simulate a mid-frame failure."""
    return _HEADER.pack(MAGIC, WIRE_VERSION, OP_REPLY, 0, 0)[: HEADER_SIZE // 2]


# ----------------------------------------------------------------------
# Result payload views
# ----------------------------------------------------------------------

def is_packed_rows(payload) -> bool:
    """Whether a payload is the wire-neutral grouped shape (parallel
    ``labels`` rows + one float64 ``counts`` vector)."""
    return (
        isinstance(payload, dict)
        and payload.get("kind") == "rows"
        and "counts" in payload
    )


def rows_view(payload: dict) -> dict:
    """Documented client shape of a grouped payload:
    ``{"kind": "rows", "group_by": [...], "rows": [[*labels, count]...]}``."""
    if not is_packed_rows(payload):
        return payload
    counts = np.asarray(payload["counts"], dtype=np.float64)
    return {
        "kind": "rows",
        "group_by": list(payload.get("group_by", [])),
        "rows": [
            [*labels, float(count)]
            for labels, count in zip(payload["labels"], counts.tolist())
        ],
    }


def client_view(payload):
    """What ``ServeClient.query`` hands back, whatever the transport."""
    if is_packed_rows(payload):
        return rows_view(payload)
    return payload


# ----------------------------------------------------------------------
# Strict JSON encoding (the debug path)
# ----------------------------------------------------------------------

def jsonify(value):
    """Recursively convert a response to plain JSON types.

    Unlike ``json.dumps(..., default=str)`` this refuses to guess: any
    type outside the wire vocabulary raises :class:`WireError`, which
    the server maps to a 500-style response — serialization bugs fail
    loudly instead of shipping stringified garbage.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, dict):
        if is_packed_rows(value):
            return jsonify(rows_view(value))
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(
                    f"JSON object keys must be strings, got "
                    f"{type(key).__name__}"
                )
            out[key] = jsonify(item)
        return out
    raise WireError(f"type {type(value).__name__} is not wire-serializable")


def encode_json_line(response: dict) -> bytes:
    """One strict JSON-lines response (raises :class:`WireError` on any
    non-serializable value; never stringifies silently)."""
    return json.dumps(
        jsonify(response), separators=(",", ":"), allow_nan=True
    ).encode() + b"\n"


def _self_check() -> None:  # pragma: no cover - import-time sanity
    assert HEADER_SIZE == 16
    assert MAGIC[0] >= 0x80, "magic byte 0 must be non-ASCII for sniffing"


_self_check()
