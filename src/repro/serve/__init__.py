"""The serving layer: summaries as a concurrent network service.

Everything below this package answers queries for *one in-process
caller*; this package multiplexes many concurrent clients onto those
same shared structures:

* :class:`SummaryServer` / :class:`ServeConfig` — asyncio TCP server
  hosting named sessions over one backend, with hot reload of store
  versions (``SIGHUP`` or the ``reload`` op); speaks the binary
  framed protocol (:mod:`repro.serve.wire`) and line-delimited JSON
  on the same port (first-byte sniff per connection);
* :class:`Coalescer` — micro-batching with same-canonical-key dedup,
  flushing through the planner's batched executor;
* :class:`TTLCache` — the process-wide result cache keyed on
  ``(store version, canonical predicate key)``;
* :class:`AdmissionController` / :class:`ServerSaturated` —
  backpressure with ``Retry-After`` hints;
* :class:`ServeClient` / :class:`ServerBusy` — the synchronous client;
* :class:`StoreWatcher` — auto hot-reload when the ingest pipeline
  publishes a newer store version (``repro serve --watch``);
* :func:`run_load` / :class:`LoadReport` — the closed-loop load
  generator behind ``repro bench-serve``;
* :class:`ClusterCoordinator` / :class:`ShardWorkerServer` — the
  multi-worker tier (``repro serve --workers N``): a frontend that
  fans shard-pruned plans out to shard-affine worker processes over
  the binary protocol and merges the partial aggregates
  (:mod:`repro.serve.cluster`, docs/serving.md).

See ``docs/serving.md`` for the lifecycle and tuning guide.
"""

from repro.serve import wire
from repro.serve.admission import AdmissionController, ServerSaturated
from repro.serve.cache import TTLCache
from repro.serve.client import ServeClient, ServeError, ServerBusy
from repro.serve.cluster import (
    ClusterCoordinator,
    ShardWorkerServer,
    WorkerSpec,
)
from repro.serve.coalescer import Coalescer
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.server import (
    ServeConfig,
    ServerThread,
    SummaryServer,
    result_payload,
)
from repro.serve.watcher import StoreWatcher
from repro.serve.wire import WireError, WireVersionError

__all__ = [
    "AdmissionController",
    "ClusterCoordinator",
    "Coalescer",
    "LoadReport",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerBusy",
    "ServerSaturated",
    "ServerThread",
    "ShardWorkerServer",
    "StoreWatcher",
    "SummaryServer",
    "WorkerSpec",
    "TTLCache",
    "WireError",
    "WireVersionError",
    "result_payload",
    "run_load",
    "wire",
]
