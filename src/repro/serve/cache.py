"""Process-wide TTL + LRU result cache for the serving layer.

One cache is shared by every session the server hosts: entries key on
``(store version, canonical predicate key)``, so

* syntactic variants of one query from *different* clients share one
  entry (the canonical key already collapses them, see
  :mod:`repro.plan.canonical`);
* a hot reload to a new store version naturally stops hitting the old
  generation's entries — no invalidation sweep, the old keys just age
  out of the LRU;
* every entry expires after ``ttl`` seconds, bounding how stale an
  answer can be if the underlying data is re-summarized in place.

The cache is thread-safe (the server's executor threads and the event
loop both touch it) and exposes hit/miss/evict/expire counters for the
``stats`` endpoint and the load bench's hit-rate metric.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable


class TTLCache:
    """LRU-bounded map whose entries expire ``ttl`` seconds after
    insertion.

    ``maxsize=0`` disables storage (every ``get`` misses); ``ttl=None``
    disables expiry (pure LRU).  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        maxsize: int = 2048,
        ttl: float | None = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.maxsize = max(int(maxsize), 0)
        self.ttl = None if ttl is None else float(ttl)
        self.clock = clock
        self._data: OrderedDict[Hashable, tuple[float | None, object]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: Hashable):
        """The cached value, or ``None`` on miss/expiry."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires_at, value = entry
            if expires_at is not None and self.clock() >= expires_at:
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if not self.maxsize:
            return
        expires_at = None if self.ttl is None else self.clock() + self.ttl
        with self._lock:
            self._data[key] = (expires_at, value)
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        with self._lock:
            self._data.clear()

    def __len__(self):
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since construction (0.0 when never queried).

        Snapshotted under the lock: reading ``hits`` and ``misses``
        separately while executor threads count lookups can observe a
        torn pair (hits from after a lookup, misses from before it) and
        report a rate above 1.0.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counter snapshot — one consistent view taken under the lock."""
        with self._lock:
            size = len(self._data)
            hits, misses = self.hits, self.misses
            evictions, expirations = self.evictions, self.expirations
        lookups = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "ttl": self.ttl,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "expirations": expirations,
            "hit_rate": round(hits / lookups if lookups else 0.0, 4),
        }

    def __repr__(self):
        return (
            f"TTLCache(size={len(self)}/{self.maxsize}, ttl={self.ttl}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
