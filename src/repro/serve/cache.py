"""Process-wide TTL + LRU result cache for the serving layer.

One cache is shared by every session the server hosts: entries key on
``(store version, canonical predicate key)``, so

* syntactic variants of one query from *different* clients share one
  entry (the canonical key already collapses them, see
  :mod:`repro.plan.canonical`);
* a hot reload to a new store version naturally stops hitting the old
  generation's entries — no invalidation sweep, the old keys just age
  out of the LRU;
* every entry expires after ``ttl`` seconds, bounding how stale an
  answer can be if the underlying data is re-summarized in place.

The cache is thread-safe (the server's executor threads and the event
loop both touch it).  Its hit/miss/evict/expire counters live in an
:class:`~repro.obs.MetricsRegistry` — the server passes its shared
registry so one Prometheus scrape (and one ``stats`` snapshot) covers
every component consistently; standalone caches get a private one.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable

from repro.obs import MetricsRegistry, sample_value


class TTLCache:
    """LRU-bounded map whose entries expire ``ttl`` seconds after
    insertion.

    ``maxsize=0`` disables storage (every ``get`` misses); ``ttl=None``
    disables expiry (pure LRU).  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        maxsize: int = 2048,
        ttl: float | None = 60.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ):
        self.maxsize = max(int(maxsize), 0)
        self.ttl = None if ttl is None else float(ttl)
        self.clock = clock
        self._data: OrderedDict[Hashable, tuple[float | None, object]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "repro_cache_hits_total", "Result-cache lookups answered."
        )
        self._misses = self.metrics.counter(
            "repro_cache_misses_total",
            "Result-cache lookups that missed (including expiries).",
        )
        self._evictions = self.metrics.counter(
            "repro_cache_evictions_total", "Entries dropped by the LRU bound."
        )
        self._expirations = self.metrics.counter(
            "repro_cache_expirations_total", "Entries dropped past their TTL."
        )
        self._size = self.metrics.gauge(
            "repro_cache_size", "Entries currently cached."
        )

    def get(self, key: Hashable):
        """The cached value, or ``None`` on miss/expiry."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._misses.inc()
                return None
            expires_at, value = entry
            if expires_at is not None and self.clock() >= expires_at:
                del self._data[key]
                self._expirations.inc()
                self._misses.inc()
                self._size.set(len(self._data))
                return None
            self._data.move_to_end(key)
            self._hits.inc()
            return value

    def put(self, key: Hashable, value) -> None:
        if not self.maxsize:
            return
        expires_at = None if self.ttl is None else self.clock() + self.ttl
        with self._lock:
            self._data[key] = (expires_at, value)
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._data))

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        with self._lock:
            self._data.clear()
            self._size.set(0)

    def __len__(self):
        with self._lock:
            return len(self._data)

    # Counter attributes kept as read properties — the registry is the
    # single writer, these are the stable introspection surface.
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @property
    def expirations(self) -> int:
        return int(self._expirations.value)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since construction (0.0 when never queried).

        Computed from one registry snapshot: reading ``hits`` and
        ``misses`` as separate locked reads while executor threads
        count lookups can observe a torn pair and report a rate above
        1.0.
        """
        snapshot = self.metrics.snapshot()
        hits = sample_value(snapshot, "repro_cache_hits_total")
        misses = sample_value(snapshot, "repro_cache_misses_total")
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def stats(self, snapshot: dict | None = None) -> dict:
        """Counter view from **one** registry snapshot (callers holding
        a whole-server snapshot pass it in, so every component's stats
        describe the same instant)."""
        if snapshot is None:
            snapshot = self.metrics.snapshot()
        hits = sample_value(snapshot, "repro_cache_hits_total")
        misses = sample_value(snapshot, "repro_cache_misses_total")
        lookups = hits + misses
        return {
            "size": int(sample_value(snapshot, "repro_cache_size")),
            "maxsize": self.maxsize,
            "ttl": self.ttl,
            "hits": int(hits),
            "misses": int(misses),
            "evictions": int(
                sample_value(snapshot, "repro_cache_evictions_total")
            ),
            "expirations": int(
                sample_value(snapshot, "repro_cache_expirations_total")
            ),
            "hit_rate": round(hits / lookups if lookups else 0.0, 4),
        }

    def __repr__(self):
        return (
            f"TTLCache(size={len(self)}/{self.maxsize}, ttl={self.ttl}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
