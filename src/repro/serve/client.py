"""A small synchronous client for the serve protocols.

Used by the test suite, the CLI (``repro ping`` / ``repro bench-serve``)
and the load generator.  One client owns one TCP connection and sends
one request at a time::

    with ServeClient(port=9876) as client:
        client.ping()
        payload = client.query("SELECT COUNT(*) FROM R WHERE x >= 3")
        print(payload["value"])

The default transport is the length-prefixed binary protocol
(:mod:`repro.serve.wire`); pass ``protocol="json"`` for the
line-delimited JSON debug protocol.  Both speak to the same server —
it sniffs the first byte of each connection.  ``query_many`` pipelines
a whole batch of statements into one ``query_batch`` round trip.

A 503-style rejection raises :class:`ServerBusy` carrying the server's
``Retry-After`` hint; ``query(..., retries=N)`` sleeps on the hint and
retries — the honest-backpressure loop every well-behaved client of an
admission-controlled service runs.
"""

from __future__ import annotations

import json
import random
import socket
import time

from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.serve import wire


def backoff_delay(attempt: int, hint: float, rng: random.Random) -> float:
    """One retry delay: the server's Retry-After hint, floored by an
    exponential schedule, scaled by ±50% jitter.

    The jitter is the desynchronizer: without it, every client rejected
    by a saturated server receives the same hint, sleeps the same
    wall-clock interval, and stampedes back *in lockstep* — re-saturating
    the queue and starving everyone again (the thundering-herd loop
    ``tests/test_serve.py::TestClientBackoff`` reproduces).  Each client
    drawing from its own RNG spreads the herd across the window.
    """
    base = max(hint, 0.001 * (1.6 ** min(attempt, 20)))
    return base * rng.uniform(0.5, 1.5)


class ServeError(ReproError):
    """The server answered ``ok: false`` (or the transport failed).

    The server's backpressure fields ride along as attributes, so
    callers never re-parse ``payload``: ``retry_after`` (seconds, or
    ``None`` when the server gave no hint) and ``scope`` (``"queue"``,
    ``"client"``, ``"chaos"``, or ``None``).
    """

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        hint = self.payload.get("retry_after")
        self.retry_after = float(hint) if hint is not None else None
        self.scope = self.payload.get("scope")


class ServerBusy(ServeError):
    """Admission control said no; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float, payload: dict):
        super().__init__(message, status=503, payload=payload)
        self.retry_after = retry_after


class ServeClient:
    """One synchronous connection to a :class:`SummaryServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        session: str = "default",
        protocol: str = "binary",
        backoff_seed: int | None = None,
        chaos=None,
    ):
        if port <= 0:
            raise ReproError(f"client needs a positive --port, got {port}")
        if protocol not in ("binary", "json"):
            raise ReproError(
                f"unknown protocol {protocol!r}; expected 'binary' or 'json'"
            )
        self.host = host
        self.port = int(port)
        self.protocol = protocol
        self.timeout = timeout
        self.session = session
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0
        # Per-client jitter stream: by default seeded from the system
        # entropy pool so concurrent clients desynchronize; pass
        # ``backoff_seed`` for reproducible retry schedules in tests.
        self._backoff_rng = random.Random(backoff_seed)
        #: Optional :class:`~repro.chaos.FaultInjector` — the
        #: ``client.drop_connection`` hook (flaky-network simulation).
        self._chaos = chaos
        #: Client-side observability: every 503 and every backoff sleep
        #: is counted here, so a load generator can report how much of
        #: its wall clock went to backpressure (scraped per client).
        self.metrics = MetricsRegistry()
        self._calls_total = self.metrics.counter(
            "repro_client_requests_total", "Requests sent, by op.", ("op",)
        )
        self._busy_total = self.metrics.counter(
            "repro_client_busy_total",
            "503 rejections received, by server-reported scope.",
            ("scope",),
        )
        self._retries_total = self.metrics.counter(
            "repro_client_retries_total",
            "Backoff-and-retry cycles actually slept through.",
        )

    # -- connection --------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as error:
                raise ServeError(
                    f"transport error: cannot connect to "
                    f"{self.host}:{self.port}: {error}"
                ) from error
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol ----------------------------------------------------------
    def call(self, op: str, **fields) -> dict:
        """Send one request, return the raw response envelope.

        Raises :class:`ServerBusy` on 503 and :class:`ServeError` on
        any other ``ok: false`` answer.
        """
        self.connect()
        if self._chaos is not None and self._chaos.decide(
            "client.drop_connection"
        ):
            # Injected client-side drop: tear the connection down and
            # surface a transport error, exactly like a flaky network.
            self.close()
            raise ServeError(
                f"chaos: injected client-side connection drop to "
                f"{self.host}:{self.port}"
            )
        self._next_id += 1
        request_id = self._next_id
        self._calls_total.labels(op=op).inc()
        if self.protocol == "binary":
            response = self._roundtrip_binary(op, request_id, fields)
        else:
            response = self._roundtrip_json(op, request_id, fields)
        if response.get("ok"):
            return response
        status = int(response.get("status", 0))
        message = response.get("error", "server error")
        if status == 503:
            self._busy_total.labels(
                scope=str(response.get("scope") or "unknown")
            ).inc()
            raise ServerBusy(
                message,
                retry_after=float(response.get("retry_after", 0.01)),
                payload=response,
            )
        raise ServeError(message, status=status, payload=response)

    def _roundtrip_json(self, op: str, request_id: int, fields: dict) -> dict:
        request = {"id": request_id, "op": op, **fields}
        try:
            self._sock.sendall(json.dumps(request).encode() + b"\n")
            while True:
                line = self._file.readline()
                if not line:
                    raise ServeError(
                        f"server {self.host}:{self.port} closed the connection"
                    )
                response = json.loads(line)
                if response.get("id") in (request_id, None):
                    return response
        except (OSError, ValueError) as error:
            raise ServeError(
                f"transport error talking to {self.host}:{self.port}: {error}"
            ) from error

    def _read_frame_bytes(self, count: int) -> bytes:
        data = self._file.read(count)
        if data is None or len(data) != count:
            raise ServeError(
                f"server {self.host}:{self.port} closed the connection"
            )
        return data

    def _roundtrip_binary(self, op: str, request_id: int, fields: dict) -> dict:
        request = {"op": op, **fields}
        try:
            self._sock.sendall(wire.encode_request(request, request_id))
            while True:
                header = self._read_frame_bytes(wire.HEADER_SIZE)
                opcode, length, reply_id = wire.decode_header(header)
                body = self._read_frame_bytes(length)
                # The server echoes our id in the low 32 bits and rides
                # its trace-id hint in the spare upper bits.
                echo_id, trace_hint = wire.split_trace_hint(reply_id)
                if echo_id == request_id:
                    response = wire.unpackb(body)
                    if trace_hint and "trace" not in response:
                        response["trace"] = format(trace_hint, "016x")
                    return response
                if echo_id == 0 and opcode == wire.OP_ERROR:
                    # Connection-level error: the server is about to
                    # close; there will be no frame with our id.
                    return wire.unpackb(body)
        except (OSError, ValueError, wire.WireError) as error:
            raise ServeError(
                f"transport error talking to {self.host}:{self.port}: {error}"
            ) from error

    # -- convenience wrappers ----------------------------------------------
    def query(
        self,
        sql: str,
        *,
        session: str | None = None,
        retries: int = 0,
        deadline_s: float | None = None,
    ) -> dict:
        """Run one SQL query; returns the result payload dict.

        Scalars: ``{"kind": "scalar", "value": ..., "std", "ci95"}``.
        Grouped: ``{"kind": "rows", "group_by": [...], "rows": [...]}``.
        ``retries`` > 0 backs off on the server's ``Retry-After`` hint
        when admission control rejects, with an exponential floor (so a
        hint that undershoots the true service time cannot make the
        client spin through its retry budget) and ±50% jitter (so a
        fleet of rejected clients cannot stampede back in lockstep —
        see :func:`backoff_delay`).  ``deadline_s`` bounds the *total*
        wall clock across all retries: once the next backoff would
        overrun it, the last :class:`ServerBusy` is raised instead of
        sleeping — a saturated server cannot hold a client hostage for
        ``retries × Retry-After`` seconds.
        """
        attempts = max(int(retries), 0) + 1
        deadline = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        for attempt in range(attempts):
            try:
                response = self.call(
                    "query", sql=sql, session=session or self.session
                )
                return wire.client_view(response["result"])
            except ServerBusy as busy:
                if attempt == attempts - 1:
                    raise
                delay = backoff_delay(
                    attempt, busy.retry_after, self._backoff_rng
                )
                if deadline is not None and time.monotonic() + delay > deadline:
                    raise  # total retry budget exhausted
                self._retries_total.inc()
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def query_many(
        self,
        sqls: list,
        *,
        session: str | None = None,
        retries: int = 0,
        deadline_s: float | None = None,
    ) -> list:
        """Pipeline a batch of statements in one ``query_batch`` round
        trip; returns one result payload per statement, in order.  The
        whole batch costs one admission slot and one network round trip
        — the high-throughput path for bulk query streams.  Retry
        semantics match :meth:`query` (the batch retries as a unit)."""
        attempts = max(int(retries), 0) + 1
        deadline = (
            None if deadline_s is None else time.monotonic() + float(deadline_s)
        )
        for attempt in range(attempts):
            try:
                response = self.call(
                    "query_batch",
                    sqls=list(sqls),
                    session=session or self.session,
                )
                return [
                    wire.client_view(result) for result in response["results"]
                ]
            except ServerBusy as busy:
                if attempt == attempts - 1:
                    raise
                delay = backoff_delay(
                    attempt, busy.retry_after, self._backoff_rng
                )
                if deadline is not None and time.monotonic() + delay > deadline:
                    raise  # total retry budget exhausted
                self._retries_total.inc()
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def count(self, sql: str, **kwargs) -> float:
        """Scalar shortcut: the ``value`` of a scalar query payload."""
        payload = self.query(sql, **kwargs)
        if payload.get("kind") != "scalar":
            raise ServeError(f"query is not scalar: {sql!r}")
        return float(payload["value"])

    def ping(self) -> dict:
        """Round-trip health check; returns ``{"version": ...}``."""
        response = self.call("ping")
        return {"version": response.get("version")}

    def stats(self) -> dict:
        return self.call("stats")["result"]

    def server_metrics(
        self, *, include_traces: bool = False, include_slow: bool = False
    ) -> dict:
        """The server's metrics view: ``{"prometheus": <text>,
        "snapshot": <dict>}`` plus recent traces / slow-query entries
        on request."""
        fields: dict = {}
        if include_traces:
            fields["include_traces"] = True
        if include_slow:
            fields["include_slow"] = True
        return self.call("metrics", **fields)["result"]

    def describe(self) -> dict:
        return self.call("describe")["result"]

    def reload(self, version: int | None = None, tag: str | None = None) -> int:
        """Ask the server to hot-swap a store version; returns it."""
        fields: dict = {}
        if version is not None:
            fields["version"] = version
        if tag is not None:
            fields["tag"] = tag
        return int(self.call("reload", **fields)["result"]["version"])

    def __repr__(self):
        state = "connected" if self._sock is not None else "disconnected"
        return f"ServeClient({self.host}:{self.port}, {state})"
