"""Closed-loop load generator for the serving layer.

Drives K concurrent clients (threads, one TCP connection and one named
session each) through a shared workload of SQL texts, honoring the
server's admission control (503s back off on the ``Retry-After`` hint
and retry), and reports throughput, latency quantiles, and the
server-side cache hit rate over exactly this run.

Used by ``repro bench-serve`` and ``benchmarks/bench_serve.py`` — the
acceptance benchmark that demonstrates coalescing turning N concurrent
clients into ~1 vectorized pass.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.serve.client import (
    ServeClient,
    ServeError,
    ServerBusy,
    backoff_delay,
)


@dataclass
class LoadReport:
    """What one load run measured (all latencies in milliseconds)."""

    clients: int
    requests: int
    errors: int
    busy_backoffs: int
    seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    max_ms: float
    cache_hit_rate: float
    server: dict = field(default_factory=dict)

    def to_metrics(self) -> dict:
        """Flat numeric dict (the benchmark emitter's currency)."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "busy_backoffs": self.busy_backoffs,
            "seconds": round(self.seconds, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }

    def describe(self) -> str:
        return (
            f"{self.clients} clients x {self.requests // max(self.clients, 1)} "
            f"requests: {self.qps:.0f} q/s, p50 {self.p50_ms:.2f} ms, "
            f"p95 {self.p95_ms:.2f} ms, hit rate {self.cache_hit_rate:.0%}, "
            f"{self.busy_backoffs} backoffs, {self.errors} errors"
        )


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def run_load(
    host: str,
    port: int,
    workload: list[str],
    *,
    clients: int = 8,
    requests_per_client: int = 50,
    timeout: float = 60.0,
    protocol: str = "binary",
    pipeline: int = 1,
) -> LoadReport:
    """Run the closed-loop load and gather the report.

    Each client walks the workload from its own offset (so concurrent
    clients overlap on the same queries — the repeated-workload mix
    coalescing and the shared cache exist for), sending the next
    request as soon as the previous answer lands.  ``protocol`` picks
    the wire format; ``pipeline`` > 1 sends that many statements per
    ``query_batch`` round trip (per-query latency is then the batch
    round trip amortized over its statements).
    """
    if not workload:
        raise ServeError("load generator needs a non-empty workload")
    pipeline = max(int(pipeline), 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    backoffs = [0] * clients
    start_barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        # Per-worker jitter stream: K rejected workers must not sleep
        # the same hint and stampede back in lockstep.
        rng = random.Random(index)
        with ServeClient(
            host,
            port,
            timeout=timeout,
            session=f"load-{index}",
            protocol=protocol,
        ) as client:
            client.ping()  # connect before the clock starts
            start_barrier.wait()
            for step in range(0, requests_per_client, pipeline):
                width = min(pipeline, requests_per_client - step)
                sqls = [
                    workload[(index * 7 + step + lane) % len(workload)]
                    for lane in range(width)
                ]
                begin = time.perf_counter()
                attempt = 0
                while True:
                    try:
                        if width == 1:
                            client.query(sqls[0])
                        else:
                            client.query_many(sqls)
                        # Only served round-trips count toward the
                        # latency quantiles and QPS; a pipelined batch
                        # amortizes its round trip over its statements.
                        each = (time.perf_counter() - begin) / width
                        latencies[index].extend([each] * width)
                        break
                    except ServerBusy as busy:
                        backoffs[index] += 1
                        time.sleep(
                            backoff_delay(attempt, busy.retry_after, rng)
                        )
                        attempt += 1
                    except ServeError:
                        errors[index] += width
                        break

    # The observer speaks the same protocol as the workers — a
    # JSON-only server (``serve --protocol json``) closes binary
    # connections on the first byte.
    with ServeClient(host, port, timeout=timeout, protocol=protocol) as observer:
        before = observer.stats()["cache"]
        threads = [
            threading.Thread(target=worker, args=(index,), daemon=True)
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        after = observer.stats()["cache"]

    flat = sorted(value * 1e3 for batch in latencies for value in batch)
    lookups = (after["hits"] + after["misses"]) - (
        before["hits"] + before["misses"]
    )
    hit_rate = (after["hits"] - before["hits"]) / lookups if lookups else 0.0
    served = sum(len(batch) for batch in latencies)
    failed = sum(errors)
    return LoadReport(
        clients=clients,
        requests=served + failed,  # attempted; QPS counts served only
        errors=failed,
        busy_backoffs=sum(backoffs),
        seconds=elapsed,
        qps=served / elapsed if elapsed > 0 else 0.0,
        p50_ms=_quantile(flat, 0.50),
        p95_ms=_quantile(flat, 0.95),
        max_ms=flat[-1] if flat else 0.0,
        cache_hit_rate=hit_rate,
        server={"cache_before": before, "cache_after": after},
    )


def default_workload(schema) -> list[str]:
    """A repeated-workload mix derived from a schema.

    Point lookups on every attribute plus range scans (and their
    syntactic ``BETWEEN`` variants) on the numeric ones — a stand-in
    for the dashboard-style traffic interactive serving sees: many
    clients, few distinct questions, lots of spelling variety.
    """
    queries = ["SELECT COUNT(*) FROM R"]
    for attr in schema.attribute_names[:4]:
        labels = schema.domain(attr).labels
        middle = labels[len(labels) // 2]
        if isinstance(middle, str):
            queries.append(f"SELECT COUNT(*) FROM R WHERE {attr} = '{middle}'")
            continue
        if not isinstance(middle, int) or isinstance(middle, bool):
            # Binned attributes carry interval labels that SQL text
            # cannot spell; leave them to predicate-level callers.
            continue
        queries.append(f"SELECT COUNT(*) FROM R WHERE {attr} = {middle}")
        queries.append(f"SELECT COUNT(*) FROM R WHERE {attr} >= {middle}")
        queries.append(
            f"SELECT COUNT(*) FROM R WHERE {attr} BETWEEN {labels[0]} "
            f"AND {middle}"
        )
        # The same range spelled as paired comparisons: canonically
        # equal, so it coalesces and caches with the BETWEEN form.
        queries.append(
            f"SELECT COUNT(*) FROM R WHERE {attr} >= {labels[0]} "
            f"AND {attr} <= {middle}"
        )
    return queries
