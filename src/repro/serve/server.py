"""The concurrent session server: summaries as a network service.

The paper's pitch is *interactive* exploration — approximate answers in
milliseconds so many analysts can probe a dataset without touching the
base relation.  :class:`SummaryServer` is that claim as a process: an
asyncio TCP server speaking newline-delimited JSON, hosting many named
sessions over one shared backend loaded from a
:class:`~repro.api.store.SummaryStore`, with

* **request coalescing** — queries arriving within a ~2 ms window
  flush through the planner's batched executor as *one* vectorized
  pass, and same-canonical-key requests are answered by one execution
  (:mod:`repro.serve.coalescer`);
* a **shared result cache** — TTL + LRU keyed on ``(store version,
  canonical predicate key)``, shared across sessions and clients
  (:mod:`repro.serve.cache`);
* **admission control** — bounded queue depth and per-client in-flight
  limits with fast 503-style rejections carrying a ``Retry-After``
  hint (:mod:`repro.serve.admission`);
* **hot reload** — ``SIGHUP`` or the ``reload`` op swaps in another
  store version without dropping in-flight requests (each request
  pins the generation it started on).

Two wire protocols share the port, selected by sniffing each
connection's **first byte** (see :mod:`repro.serve.wire`):

* **binary** (the default client transport) — length-prefixed frames
  whose first byte is the non-ASCII magic ``0xAB``; group-by count
  vectors ship as raw float64 buffers;
* **JSON lines** — anything else; one JSON object per line, answered
  by one JSON line (the debugging protocol, and what pre-binary
  clients already speak)::

      {"id": 1, "op": "query", "sql": "SELECT COUNT(*) FROM R", "session": "a"}
      {"id": 1, "ok": true, "status": 200, "result": {"kind": "scalar", ...},
       "cached": false, "version": 3}

Ops: ``query`` and ``query_batch`` (the admitted/coalesced ones),
``ping``, ``stats``, ``describe``, ``reload`` (optional
``version``/``tag``).  Errors come back with ``ok: false`` and an
HTTP-flavored ``status`` — 400 for bad requests, 503 with
``retry_after`` when saturated, 500 otherwise.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.api.explorer import Explorer
from repro.api.store import SummaryStore
from repro.errors import InjectedFault, QueryError, ReproError
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Trace,
    TraceRing,
    activate,
    current_trace,
    render_prometheus,
    sample_value,
)
from repro.obs import span as stage_span
from repro.obs.trace import Span
from repro.query.results import QueryResult
from repro.serve import wire
from repro.serve.admission import AdmissionController, ServerSaturated
from repro.serve.cache import TTLCache
from repro.serve.coalescer import Coalescer
from repro.serve.watcher import StoreWatcher


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one server (CLI flag in parentheses)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; bound port on server.port after start()
    #: Coalescing window (--window-ms): how long the first request of a
    #: batch waits for company.  Latency floor under light load.
    window_ms: float = 2.0
    #: Distinct canonical keys that force an early flush (--max-batch).
    max_batch: int = 64
    #: Global admitted-but-unfinished bound (--max-queue).
    max_queue: int = 64
    #: Per-client pipelining bound (--max-inflight).
    max_inflight_per_client: int = 16
    #: Shared result-cache entries (--cache-size); 0 disables.
    cache_size: int = 2048
    #: Result time-to-live in seconds (--cache-ttl); None = no expiry.
    cache_ttl: float | None = 60.0
    #: Micro-batching on/off (--no-coalesce turns it off).
    coalesce: bool = True
    #: Paper-style rounding of model estimates (--rounded).
    rounded: bool = False
    #: Store-watcher poll interval in seconds (--watch); None disables.
    #: When set on a store-backed server, newly published versions
    #: (e.g. from ``repro ingest``) are hot-reloaded automatically —
    #: the interval is the serving-staleness bound.
    watch_interval: float | None = None
    #: Accept binary-framed connections (--protocol).  Off, every
    #: connection is treated as JSON lines — the debugging mode
    #: (``repro serve --protocol json``).  JSON clients work either way.
    binary: bool = True
    #: Recent finished request traces kept in memory (--trace-ring);
    #: 0 disables the ring (spans still feed the stage histograms).
    trace_ring: int = 256
    #: Slow-query threshold in milliseconds (--slow-query-ms); None
    #: disables the slow-query log entirely.
    slow_query_ms: float | None = None
    #: JSONL file the slow-query log appends to (--slow-query-log);
    #: None keeps entries only in the in-memory ring.
    slow_query_log: str | None = None
    #: Calibrated per-shard service time in milliseconds
    #: (--shard-service-ms); None disables.  When set, every evaluation
    #: flush is floored at ``shard_service_ms x resident shards`` —
    #: a deterministic stand-in for the per-shard disk/CPU service time
    #: of summaries too large to stay hot (the LSST sizing shape).  The
    #: cluster scaling curve (docs/serving.md) is measured under this
    #: floor so the 1-vs-N comparison is runner-independent: each
    #: worker pays only for the shard slice it owns.
    shard_service_ms: float | None = None

    def validated(self) -> "ServeConfig":
        """Range-check every knob; errors name the CLI flag at fault."""
        checks = [
            (self.window_ms >= 0, "window_ms (--window-ms) must be >= 0"),
            (self.max_batch >= 1, "max_batch (--max-batch) must be >= 1"),
            (self.max_queue >= 1, "max_queue (--max-queue) must be >= 1"),
            (
                self.max_inflight_per_client >= 1,
                "max_inflight_per_client (--max-inflight) must be >= 1",
            ),
            (self.cache_size >= 0, "cache_size (--cache-size) must be >= 0"),
            (
                self.cache_ttl is None or self.cache_ttl > 0,
                "cache_ttl (--cache-ttl) must be > 0",
            ),
            (
                self.watch_interval is None or self.watch_interval > 0,
                "watch_interval (--watch) must be > 0",
            ),
            (1 <= self.port or self.port == 0, "port (--port) must be >= 0"),
            (self.trace_ring >= 0, "trace_ring (--trace-ring) must be >= 0"),
            (
                self.slow_query_ms is None or self.slow_query_ms >= 0,
                "slow_query_ms (--slow-query-ms) must be >= 0",
            ),
            (
                self.shard_service_ms is None or self.shard_service_ms >= 0,
                "shard_service_ms (--shard-service-ms) must be >= 0",
            ),
        ]
        for ok, message in checks:
            if not ok:
                raise ReproError(message)
        return self


class _Generation:
    """One loaded store version: a shared backend plus named sessions.

    Sessions are :class:`Explorer` instances over the *same* backend
    object — each gets its own AST/predicate caches (now thread-safe),
    while results share the server-wide TTL cache keyed on this
    generation's version.  Requests capture the generation they start
    on, so a hot reload never yanks a backend out from under an
    in-flight query.
    """

    __slots__ = ("version", "label", "explorer", "_sessions", "_lock")

    def __init__(self, version: int, explorer: Explorer, label: str):
        self.version = version
        self.label = label
        self.explorer = explorer
        self._sessions: dict[str, Explorer] = {"default": explorer}
        self._lock = threading.Lock()

    def session(self, name: str) -> Explorer:
        with self._lock:
            explorer = self._sessions.get(name)
            if explorer is None:
                explorer = Explorer.attach(
                    self.explorer.backend,
                    table_name=self.explorer.table_name,
                )
                self._sessions[name] = explorer
            return explorer

    @property
    def session_names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)


def _plain(value):
    """Numpy scalars → Python scalars for JSON."""
    return value.item() if hasattr(value, "item") else value


def _wire_label(value):
    """One group label as a wire type (exotic label objects — e.g.
    binned-domain intervals — render to their string form *here*, on
    purpose; the strict encoders refuse to guess downstream)."""
    value = _plain(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def result_payload(result: QueryResult) -> dict:
    """Wire-neutral view of one :class:`QueryResult`.

    Scalars are already plain JSON types.  Grouped results keep the
    label rows and the count vector *separate* — the binary protocol
    ships ``counts`` as a raw float64 buffer (zero-copy), and the JSON
    path renders the documented ``rows`` shape via
    :func:`repro.serve.wire.rows_view` at encode time.
    """
    if result.is_scalar:
        payload: dict = {"kind": "scalar", "value": float(result.scalar)}
        if result.estimate is not None:
            payload["std"] = float(result.std)
            low, high = result.ci95
            payload["ci95"] = [float(low), float(high)]
        return payload
    return {
        "kind": "rows",
        "group_by": list(result.query.group_by),
        "labels": [
            [_wire_label(label) for label in row.labels] for row in result.rows
        ],
        "counts": np.asarray(
            [row.count for row in result.rows], dtype=np.float64
        ),
    }


#: Ops the server answers; anything else gets the metric label "other"
#: so client-controlled op strings cannot explode label cardinality.
_KNOWN_OPS = frozenset(
    {
        "query",
        "query_batch",
        "ping",
        "stats",
        "describe",
        "reload",
        "metrics",
        "partial_batch",
    }
)


def _op_label(request: dict) -> str:
    op = request.get("op", "query")
    return op if op in _KNOWN_OPS else "other"


def _adopt_trace_id(value):
    """Client-supplied trace id (hex string or int), or None."""
    if isinstance(value, str):
        try:
            value = int(value, 16)
        except ValueError:
            return None
    if isinstance(value, int) and not isinstance(value, bool):
        if 0 < value < 2**63:
            return value
    return None


class _Evaluated:
    """One executed payload plus the (possibly shared) evaluate span."""

    __slots__ = ("payload", "span")

    def __init__(self, payload, span):
        self.payload = payload
        self.span = span


async def _read_exactly(reader, count: int):
    """Read exactly ``count`` bytes, or ``None`` on EOF/peer drop."""
    if count == 0:
        return b""
    try:
        return await reader.readexactly(count)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None


class SummaryServer:
    """Serves one summary (or shard set) to many concurrent clients.

    Construct from a store for the full feature set (versioned cache
    keys, hot reload)::

        server = SummaryServer(store="models", name="flights")

    or from an in-memory summary/backend for tests and embedding::

        server = SummaryServer(summary)

    then ``asyncio.run(server.serve_forever())``, or drive it from a
    background thread with :class:`ServerThread`.
    """

    def __init__(
        self,
        source=None,
        *,
        store=None,
        name: str | None = None,
        version: int | None = None,
        tag: str | None = None,
        config: ServeConfig | None = None,
        chaos=None,
    ):
        self.config = (config or ServeConfig()).validated()
        #: Optional :class:`~repro.chaos.FaultInjector` (tests/soak
        #: only).  The hooks below consult it when present; without one
        #: they cost a single ``is None`` check.
        self.chaos = chaos
        if (source is None) == (store is None):
            raise ReproError(
                "serve exactly one thing: an in-memory summary/backend, "
                "or a store (--store) plus a summary name (--name)"
            )
        if store is not None and name is None:
            raise ReproError("a store server needs a summary name (--name)")
        self._store = (
            store
            if store is None or isinstance(store, SummaryStore)
            else SummaryStore(store)
        )
        self._name = name
        if self._store is not None:
            self._generation = self._load_generation(version=version, tag=tag)
        else:
            explorer = Explorer.attach(source, rounded=self.config.rounded)
            self._generation = _Generation(
                0, explorer, label=repr(explorer.backend)
            )
        #: One registry backs every component's counters, so a single
        #: ``snapshot()`` is a consistent view of the whole server (and
        #: one scrape covers it all — see docs/observability.md).
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_requests_total",
            "Statements served, by op (a query_batch counts each "
            "statement it carries).",
            ("op",),
        )
        self._errors_total = self.metrics.counter(
            "repro_errors_total", "Requests answered with ok=false, by op.",
            ("op",),
        )
        self._request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "End-to-end dispatch latency per request, by op.",
            ("op",),
        )
        self._stage_seconds = self.metrics.histogram(
            "repro_stage_seconds",
            "Per-request time spent in each serving stage (trace spans).",
            ("stage",),
        )
        self._reloads_total = self.metrics.counter(
            "repro_reloads_total", "Hot reloads applied."
        )
        self._slow_total = self.metrics.counter(
            "repro_slow_queries_total",
            "Requests recorded by the slow-query log.",
        )
        self._connections_total = self.metrics.counter(
            "repro_connections_total", "Connections accepted, by protocol.",
            ("protocol",),
        )
        self.traces = TraceRing(self.config.trace_ring)
        self.slow_log = SlowQueryLog(
            threshold_ms=self.config.slow_query_ms,
            path=self.config.slow_query_log,
        )
        if self.chaos is not None and hasattr(self.chaos, "bind_metrics"):
            self.chaos.bind_metrics(self.metrics)
        self.cache = TTLCache(
            maxsize=self.config.cache_size,
            ttl=self.config.cache_ttl,
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            max_inflight_per_client=self.config.max_inflight_per_client,
            flush_window=max(self.config.window_ms, 0.5) / 1e3,
            metrics=self.metrics,
        )
        if self.config.watch_interval is not None and self._store is None:
            raise ReproError(
                "watching for new versions (--watch) needs a store-backed "
                "server (start with --store/--name, not an in-memory summary)"
            )
        self.watcher: StoreWatcher | None = None
        self.coalescer: Coalescer | None = None
        self._server: asyncio.base_events.Server | None = None
        self.host = self.config.host
        self.port = self.config.port
        self._started_at: float | None = None

    # -- generations / hot reload -----------------------------------------
    def _load_generation(
        self, version: int | None = None, tag: str | None = None
    ) -> _Generation:
        record, summary = self._store.load_with_record(
            self._name, version=version, tag=tag
        )
        explorer = Explorer.attach(summary, rounded=self.config.rounded)
        return _Generation(record.version, explorer, label=record.describe())

    @property
    def store(self) -> SummaryStore | None:
        """The attached summary store (``None`` for in-memory servers)."""
        return self._store

    @property
    def name(self) -> str | None:
        """The served summary name inside the store, if store-backed."""
        return self._name

    @property
    def version(self) -> int:
        return self._generation.version

    @property
    def schema(self):
        """Schema of the currently served generation's backend."""
        return self._generation.explorer.schema

    @property
    def label(self) -> str:
        """Human-readable description of what is being served."""
        return self._generation.label

    def reload(self, version: int | None = None, tag: str | None = None) -> int:
        """Swap in another store version (latest by default); returns it.

        In-flight requests finish on the generation they started with;
        the shared cache needs no sweep because its keys carry the
        version.  Blocking — call via an executor from async code.
        """
        if self._store is None:
            raise ReproError(
                "hot reload needs a store-backed server "
                "(start with --store/--name, not an in-memory summary)"
            )
        generation = self._load_generation(version=version, tag=tag)
        self._generation = generation  # atomic swap
        self._reloads_total.inc()
        return generation.version

    # -- counters (registry-backed read surface) ----------------------------
    @property
    def requests(self) -> int:
        return int(self._requests_total.total())

    @property
    def errors(self) -> int:
        return int(self._errors_total.total())

    @property
    def reloads(self) -> int:
        return int(self._reloads_total.value)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the coalescer."""
        if self.config.coalesce:
            self.coalescer = Coalescer(
                self._run_flush,
                window=self.config.window_ms / 1e3,
                max_batch=self.config.max_batch,
                metrics=self.metrics,
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        if self.config.watch_interval is not None:
            self.watcher = StoreWatcher(self, self.config.watch_interval)
            self.watcher.start()

    async def stop(self) -> None:
        if self.watcher is not None:
            await self.watcher.stop()
            self.watcher = None
        if self.coalescer is not None:
            await self.coalescer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Run until cancelled; installs a ``SIGHUP`` → reload handler
        when the platform and thread allow it."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        sighup = getattr(signal, "SIGHUP", None)  # absent on Windows
        if sighup is not None:
            try:
                loop.add_signal_handler(
                    sighup,
                    lambda: loop.create_task(self._reload_in_executor()),
                )
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # event loop without signal support, or non-main thread
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def _reload_in_executor(
        self, version: int | None = None, tag: str | None = None
    ) -> int:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.reload(version=version, tag=tag)
        )

    # -- connection handling ------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            # Protocol sniff: the binary magic's first byte is non-ASCII,
            # so no JSON-lines request can ever start with it.  JSON
            # clients keep working with no flag or handshake.
            first = await reader.read(1)
            if first:
                if first == wire.MAGIC[:1]:
                    # Binary framing.  With binary disabled, close right
                    # away — no JSON line starts with the magic byte, and
                    # waiting for a newline that never comes would hang
                    # the client until its socket timeout.
                    if self.config.binary:
                        self._connections_total.labels(protocol="binary").inc()
                        await self._binary_loop(
                            reader, writer, write_lock, client, tasks, first
                        )
                else:
                    self._connections_total.labels(protocol="json").inc()
                    await self._json_loop(
                        reader, writer, write_lock, client, tasks, first
                    )
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # connection teardown racing server shutdown

    async def _json_loop(
        self, reader, writer, write_lock, client, tasks, first: bytes
    ) -> None:
        pending = first
        while True:
            line = pending + await reader.readline()
            pending = b""
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.create_task(
                self._serve_request(writer, write_lock, client, line)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)

    async def _binary_loop(
        self, reader, writer, write_lock, client, tasks, first: bytes
    ) -> None:
        """One binary connection: framed requests, pipelined responses.

        Framing errors that leave the stream aligned (a bad body) are
        answered per-frame; errors that lose alignment (bad magic,
        version mismatch, oversized declared length) are answered once
        with a connection-level error frame, then the connection closes
        — the client reconnects cleanly rather than resyncing."""
        rest = await _read_exactly(reader, wire.HEADER_SIZE - 1)
        header = None if rest is None else first + rest
        while header is not None:
            try:
                opcode, length, request_id = wire.decode_header(header)
            except wire.WireError as error:
                await self._write_frame(
                    writer,
                    write_lock,
                    wire.error_frame(0, 400, str(error)),
                )
                self._errors_total.labels(op="invalid").inc()
                return
            body = await _read_exactly(reader, length)
            if body is None:
                return  # peer vanished mid-frame
            try:
                request = wire.decode_request(opcode, body)
            except wire.WireError as error:
                # Body consumed; the stream is still frame-aligned.
                self._errors_total.labels(op="invalid").inc()
                await self._write_frame(
                    writer,
                    write_lock,
                    wire.error_frame(request_id, 400, str(error)),
                )
            else:
                task = asyncio.create_task(
                    self._serve_binary_request(
                        writer, write_lock, client, request_id, request
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            header = await _read_exactly(reader, wire.HEADER_SIZE)

    async def _write_frame(self, writer, write_lock, frame: bytes) -> None:
        async with write_lock:
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to do

    async def _respond(self, client: str, request: dict) -> dict:
        """Dispatch one request dict, mapping failures to the protocol's
        error envelopes (shared by both wire protocols).  Also the
        request-latency measurement point: every dispatch lands in the
        op-labelled ``repro_request_seconds`` histogram."""
        op = _op_label(request)
        began = time.perf_counter()
        try:
            response = await self._dispatch(client, request)
        except ServerSaturated as busy:
            self._errors_total.labels(op=op).inc()
            response = {
                "ok": False,
                "status": 503,
                "error": str(busy),
                "scope": busy.scope,
                "retry_after": busy.retry_after,
            }
        except InjectedFault as fault:
            # Injected faults are transient by construction: answer
            # like admission control (503 + Retry-After) so clients
            # retry on the hint instead of treating a chaos-killed
            # worker or erroring backend as a bad request.
            self._errors_total.labels(op=op).inc()
            response = {
                "ok": False,
                "status": 503,
                "error": str(fault),
                "scope": "chaos",
                "retry_after": max(self.config.window_ms / 1e3, 0.05),
            }
        except (QueryError, ReproError) as error:
            self._errors_total.labels(op=op).inc()
            response = {"ok": False, "status": 400, "error": str(error)}
        except Exception as error:  # pragma: no cover - defensive
            self._errors_total.labels(op=op).inc()
            response = {
                "ok": False,
                "status": 500,
                "error": f"{type(error).__name__}: {error}",
            }
        self._request_seconds.labels(op=op).observe(
            time.perf_counter() - began
        )
        return response

    def _finish_trace(self, trace: Trace, response: dict) -> None:
        """Fold one finished request's spans into the stage histograms
        and park the trace in the ring.  A coalesced evaluate span is
        attributed to *every* waiter on purpose: each request really did
        spend that time in the evaluate stage, which is what makes the
        per-stage means sum to the end-to-end mean."""
        trace.status = response.get("status")
        if "cached" in response:
            trace.cached = response.get("cached")
        observe = self._stage_seconds
        for entry in list(trace.spans):
            observe.labels(stage=entry.name).observe(entry.duration_s)
        self.traces.record(trace)

    async def _serve_request(
        self, writer, write_lock: asyncio.Lock, client: str, line: bytes
    ) -> None:
        request_id = None
        chaos = self.chaos
        if chaos is not None and chaos.decide("server.drop_connection"):
            # Injected connection drop: close without answering.  The
            # client sees EOF and reconnects — the transport-retry path
            # the soak invariants hold to "zero dropped requests".
            writer.close()
            return
        trace = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise QueryError("request must be a JSON object")
        except (QueryError, json.JSONDecodeError) as error:
            self._errors_total.labels(op="invalid").inc()
            response = {"ok": False, "status": 400, "error": str(error)}
        else:
            request_id = request.get("id")
            session = request.get("session")
            trace = Trace(
                op=_op_label(request),
                session=str(session) if session is not None else None,
                trace_id=_adopt_trace_id(request.get("trace")),
            )
            with activate(trace):
                response = await self._respond(client, request)
            response["trace"] = trace.hex_id
        response["id"] = request_id
        try:
            # Strict encoding: a non-serializable value in a response is
            # a server bug; answer 500 instead of shipping stringified
            # garbage (the old ``default=str`` failure mode).
            if trace is not None:
                with trace.span("encode"):
                    payload = wire.encode_json_line(response)
            else:
                payload = wire.encode_json_line(response)
        except wire.WireError as error:
            self._errors_total.labels(op="invalid").inc()
            payload = wire.encode_json_line(
                {
                    "ok": False,
                    "status": 500,
                    "error": f"response not serializable: {error}",
                    "id": request_id,
                }
            )
        if trace is not None:
            self._finish_trace(trace, response)
        async with write_lock:
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to do

    async def _serve_binary_request(
        self,
        writer,
        write_lock: asyncio.Lock,
        client: str,
        request_id: int,
        request: dict,
    ) -> None:
        chaos = self.chaos
        if chaos is not None and chaos.decide("server.drop_connection"):
            # Injected drop, binary flavor: leave a *partial* frame on
            # the wire before closing so clients exercise the
            # mid-frame-failure path, not just clean EOF.
            async with write_lock:
                writer.write(wire.truncated_frame())
                writer.close()
            return
        # The incoming id's spare upper bits may carry a client trace
        # hint; the reply folds the server's own trace id back in.
        echo_id, client_hint = wire.split_trace_hint(request_id)
        session = request.get("session")
        trace = Trace(
            op=_op_label(request),
            session=str(session) if session is not None else None,
            trace_id=client_hint or None,
        )
        with activate(trace):
            response = await self._respond(client, request)
        response["trace"] = trace.hex_id
        opcode = wire.OP_REPLY if response.get("ok") else wire.OP_ERROR
        reply_id = wire.pack_trace_hint(echo_id, trace.hint)
        try:
            with trace.span("encode"):
                frame = wire.encode_frame(opcode, reply_id, response)
        except wire.WireError as error:
            self._errors_total.labels(op="invalid").inc()
            frame = wire.error_frame(
                reply_id, 500, f"response not serializable: {error}"
            )
        self._finish_trace(trace, response)
        await self._write_frame(writer, write_lock, frame)

    async def _dispatch(self, client: str, request: dict) -> dict:
        op = request.get("op", "query")
        if op == "query":
            self.admission.acquire(client)
            began = time.perf_counter()
            try:
                self._requests_total.labels(op="query").inc()
                return await self._query(request)
            finally:
                self.admission.release(client)
                # Feeds the Retry-After hint's service-time EWMA.
                self.admission.observe(time.perf_counter() - began)
        if op == "query_batch":
            # One admission slot per pipelined batch: the batch is one
            # unit of client-side concurrency, however many statements
            # ride in it.
            self.admission.acquire(client)
            began = time.perf_counter()
            try:
                return await self._query_batch(request)
            finally:
                self.admission.release(client)
                self.admission.observe(time.perf_counter() - began)
        self._requests_total.labels(op=_op_label(request)).inc()
        if op == "ping":
            return {
                "ok": True,
                "status": 200,
                "result": "pong",
                "version": self.version,
            }
        if op == "stats":
            return {"ok": True, "status": 200, "result": self.stats()}
        if op == "metrics":
            # One snapshot backs both views, so the Prometheus text and
            # the structured dict describe the same instant.
            snapshot = self.metrics.snapshot()
            result = {
                "prometheus": render_prometheus(snapshot),
                "snapshot": snapshot,
            }
            if request.get("include_traces"):
                result["traces"] = self.traces.snapshot()
            if request.get("include_slow"):
                result["slow_queries"] = self.slow_log.entries()
            return {
                "ok": True,
                "status": 200,
                "result": result,
                "version": self.version,
            }
        if op == "describe":
            generation = self._generation
            return {
                "ok": True,
                "status": 200,
                "result": generation.explorer.describe(),
                "version": generation.version,
            }
        if op == "reload":
            version = await self._reload_in_executor(
                version=request.get("version"), tag=request.get("tag")
            )
            return {"ok": True, "status": 200, "result": {"version": version}}
        raise QueryError(
            f"unknown op {op!r}; expected query, query_batch, ping, stats, "
            "metrics, describe, or reload"
        )

    # -- the query path ------------------------------------------------------
    async def _query(self, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise QueryError("query op needs a non-empty 'sql' string")
        session_name = str(request.get("session", "default"))
        generation = self._generation  # pin: reloads must not drop us
        explorer = generation.session(session_name)
        plan = explorer.plan(sql)  # parse + normalize (session-cached)
        key = (generation.version, plan.cache_key)
        with stage_span("cache_lookup"):
            payload = self.cache.get(key)
        cached = payload is not None
        trace = current_trace()
        if not cached:
            if self.coalescer is not None:
                # Resolves with the JSON-ready payload: serialization
                # and the cache put happen once per unique key in the
                # flush, not once per coalesced waiter.  The wait span
                # is per-request; the evaluate span inside the
                # ``_Evaluated`` wrapper is shared by every waiter of
                # the flush that answered this key.
                wait = trace.begin("coalesce_wait") if trace else None
                evaluated = await self.coalescer.submit(
                    key, (generation, plan)
                )
                payload = evaluated.payload
                if wait is not None:
                    wait.finish()
                    if evaluated.span is not None:
                        # The wait bracketed the whole submit→resolve
                        # interval; carve the shared evaluation out so
                        # coalesce_wait reports pure queueing and the
                        # per-stage durations sum to the request's
                        # end-to-end time instead of double-counting.
                        wait.duration_s = max(
                            wait.duration_s - evaluated.span.duration_s, 0.0
                        )
                        trace.attach(evaluated.span)
                    trace.attach(wait)
            else:
                loop = asyncio.get_running_loop()
                with stage_span("evaluate"):
                    payload = await loop.run_in_executor(
                        None, self._execute_single, generation, plan
                    )
                self.cache.put(key, payload)
        self._maybe_slow_log(
            trace, sql=sql, plan=plan, cached=cached,
            session=session_name, version=generation.version,
        )
        return {
            "ok": True,
            "status": 200,
            "result": payload,
            "cached": cached,
            "session": session_name,
            "version": generation.version,
        }

    def _maybe_slow_log(self, trace, *, sql, plan, cached, session,
                        version) -> None:
        """Record the in-flight request in the slow-query log when its
        elapsed time already crossed the threshold.  Runs before the
        encode stage — encode time for a slow query is dwarfed by the
        evaluate time that made it slow."""
        log = self.slow_log
        if not log.enabled or trace is None:
            return
        duration_s = trace.elapsed_s
        if duration_s * 1e3 < log.threshold_ms:
            return
        explain = None
        try:
            explain = plan.explain()
        except Exception:
            pass  # never let diagnostics fail the query
        if log.maybe_record(
            duration_s=duration_s,
            sql=sql,
            trace=trace,
            explain=explain,
            cached=cached,
            session=session,
            version=version,
        ):
            self._slow_total.inc()

    async def _query_batch(self, request: dict) -> dict:
        """Pipelined batch: plan every statement against one pinned
        generation, answer cache hits immediately, and coalesce the
        misses into the shared flush.  One response carries all
        results, so a client round-trip amortizes across the batch."""
        sqls = request.get("sqls")
        if not isinstance(sqls, (list, tuple)) or not sqls:
            raise QueryError("query_batch op needs a non-empty 'sqls' list")
        session_name = str(request.get("session", "default"))
        generation = self._generation  # pin: reloads must not drop us
        explorer = generation.session(session_name)
        self._requests_total.labels(op="query_batch").inc(len(sqls))
        plans = []
        for sql in sqls:
            if not isinstance(sql, str) or not sql.strip():
                raise QueryError(
                    "query_batch entries must be non-empty SQL strings"
                )
            plans.append(explorer.plan(sql))
        payloads: list = [None] * len(plans)
        cached_flags = [False] * len(plans)
        misses: list[tuple[int, tuple, object]] = []
        with stage_span("cache_lookup"):
            for index, plan in enumerate(plans):
                key = (generation.version, plan.cache_key)
                payload = self.cache.get(key)
                if payload is not None:
                    payloads[index] = payload
                    cached_flags[index] = True
                else:
                    misses.append((index, key, plan))
        if misses:
            trace = current_trace()
            if self.coalescer is not None:
                wait = trace.begin("coalesce_wait") if trace else None
                outputs = await asyncio.gather(
                    *(
                        self.coalescer.submit(key, (generation, plan))
                        for _, key, plan in misses
                    )
                )
                seen_spans: set[int] = set()
                longest_evaluate = 0.0
                for (index, _, _), output in zip(misses, outputs):
                    payloads[index] = output.payload
                    # A batch's misses may land in one flush or span
                    # several; attach each distinct evaluate span once.
                    if (
                        trace is not None
                        and output.span is not None
                        and output.span.span_id not in seen_spans
                    ):
                        seen_spans.add(output.span.span_id)
                        longest_evaluate = max(
                            longest_evaluate, output.span.duration_s
                        )
                        trace.attach(output.span)
                if wait is not None:
                    wait.finish()
                    # Flushes overlap, so subtracting the longest one
                    # approximates the pure queueing share of the wait.
                    wait.duration_s = max(
                        wait.duration_s - longest_evaluate, 0.0
                    )
                    trace.attach(wait)
            else:
                with stage_span("evaluate"):
                    outputs = await self._run_batch(
                        [(generation, plan) for _, _, plan in misses]
                    )
                for (index, _, _), output in zip(misses, outputs):
                    if isinstance(output, BaseException):
                        raise output
                    payloads[index] = output
        return {
            "ok": True,
            "status": 200,
            "results": payloads,
            "cached": cached_flags,
            "session": session_name,
            "version": generation.version,
        }

    async def _run_batch(self, items: list) -> list:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._execute_items, items)

    async def _run_flush(self, items: list) -> list:
        """The coalescer's ``run_batch``: one evaluate span times the
        whole flush, and every successful payload is wrapped in
        :class:`_Evaluated` carrying that shared span.  Exceptions stay
        unwrapped so the coalescer's per-item fan-out still recognizes
        them."""
        flush_span = Span("evaluate", batch=len(items))
        try:
            outputs = await self._run_batch(items)
        finally:
            flush_span.finish()
        return [
            output
            if isinstance(output, BaseException)
            else _Evaluated(output, flush_span)
            for output in outputs
        ]

    def _inject_backend_chaos(self) -> None:
        """Executor-thread chaos hooks: a ``server.worker_kill`` fault
        raises and the whole flush dies (every coalesced waiter gets a
        retryable 503), a ``server.backend`` fault models a slow or
        erroring backend call.  No injector attached — no effect."""
        chaos = self.chaos
        if chaos is not None:
            chaos.act("server.worker_kill")
            chaos.act("server.backend")

    def _service_floor_s(self, generation: _Generation) -> float:
        """Synthetic per-flush service floor: ``shard_service_ms`` times
        the shards resident in this generation's backend.  Models the
        per-shard service time of disk-resident summaries; a cluster
        worker pays only for its owned slice (see docs/serving.md)."""
        ms = self.config.shard_service_ms
        if not ms:
            return 0.0
        summary = getattr(generation.explorer.backend, "summary", None)
        return ms * getattr(summary, "num_shards", 1) / 1e3

    def _pay_service_floor(self, generation: _Generation, began: float) -> None:
        remaining = self._service_floor_s(generation) - (
            time.perf_counter() - began
        )
        if remaining > 0:
            time.sleep(remaining)

    def _execute_plan(self, generation: _Generation, plan):
        """The non-coalesced executor path (chaos hooks included)."""
        self._inject_backend_chaos()
        return generation.explorer.planner.execute(plan)

    def _execute_single(self, generation: _Generation, plan) -> dict:
        """Payload of one plan outside the coalescer (executor thread).
        The override point the cluster frontend uses to fan a single
        uncoalesced query out to its workers."""
        began = time.perf_counter()
        result = self._execute_plan(generation, plan)
        self._pay_service_floor(generation, began)
        return result_payload(result)

    def _execute_items(self, items: list) -> list:
        """One coalesced flush: group by generation, run each group
        through the planner's batched executor.  A failing query maps
        to its exception instead of poisoning the flush.  Returns
        JSON-ready payloads — each unique result is serialized and
        cached exactly once here, however many waiters coalesced on it.
        """
        began = time.perf_counter()
        self._inject_backend_chaos()
        payloads: list = [None] * len(items)
        groups: dict[int, list[int]] = {}
        for index, (generation, _) in enumerate(items):
            groups.setdefault(id(generation), []).append(index)
        for indices in groups.values():
            generation = items[indices[0]][0]
            plans = [items[index][1] for index in indices]
            try:
                outputs = generation.explorer.planner.execute_many(plans)
            except Exception:
                # Retry singly so only the offending plan(s) fail.
                outputs = []
                for plan in plans:
                    try:
                        outputs.append(generation.explorer.planner.execute(plan))
                    except Exception as error:
                        outputs.append(error)
            for index, output in zip(indices, outputs):
                if isinstance(output, BaseException):
                    payloads[index] = output
                    continue
                payload = result_payload(output)
                self.cache.put(
                    (generation.version, items[index][1].cache_key), payload
                )
                payloads[index] = payload
        if items:
            self._pay_service_floor(items[0][0], began)
        return payloads

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        generation = self._generation
        # One registry snapshot backs every sub-report: all counters in
        # the payload describe the same instant, so derived figures
        # (hit rate, rejection ratios) can't tear across fields the way
        # per-field attribute reads under concurrent traffic could.
        snapshot = self.metrics.snapshot()
        return {
            "version": generation.version,
            "summary": generation.label,
            "sessions": generation.session_names,
            "requests": int(
                sample_value(snapshot, "repro_requests_total")
            ),
            "errors": int(sample_value(snapshot, "repro_errors_total")),
            "reloads": int(sample_value(snapshot, "repro_reloads_total")),
            "uptime_s": (
                round(time.monotonic() - self._started_at, 3)
                if self._started_at is not None
                else None
            ),
            "coalesce": self.config.coalesce,
            "cache": self.cache.stats(snapshot),
            "admission": self.admission.stats(snapshot),
            "coalescer": (
                self.coalescer.stats(snapshot)
                if self.coalescer is not None
                else None
            ),
            "watcher": (
                self.watcher.stats(snapshot)
                if self.watcher is not None
                else None
            ),
            "chaos": self.chaos.stats() if self.chaos is not None else None,
            "slow_queries": self.slow_log.stats(),
            "traces": len(self.traces),
        }

    def __repr__(self):
        return (
            f"SummaryServer({self._generation.label!r}, "
            f"{self.host}:{self.port}, coalesce={self.config.coalesce})"
        )


class ServerThread:
    """Run a :class:`SummaryServer` on a daemon thread.

    The synchronous harness for tests, benchmarks, and the load
    generator::

        with ServerThread(server) as running:
            client = ServeClient(port=running.port)

    ``__enter__`` blocks until the socket is bound (so ``server.port``
    is real) and re-raises any startup failure in the caller's thread.
    """

    def __init__(self, server: SummaryServer):
        self.server = server
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surface in __enter__/stop
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def start(self) -> SummaryServer:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("server did not start within 30s")
        if self._error is not None:
            raise self._error
        return self.server

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=10)

    def __enter__(self) -> SummaryServer:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
