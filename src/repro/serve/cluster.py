"""Multi-worker serving tier: a frontend plus shard-affine workers.

One :class:`~repro.serve.server.SummaryServer` is GIL-bound: every
shard evaluation of every concurrent client competes for a single
interpreter.  This module promotes ``serve/`` to the LSST shape —
partition, replicate, route, degrade gracefully — without rewriting
the stack underneath (the OrpheusDB bolt-on philosophy): the
:class:`ClusterCoordinator` is a ``SummaryServer`` whose *evaluation*
step fans out to worker processes instead of touching a backend.

Topology::

    clients ──> ClusterCoordinator (frontend)
                 │ parse / canonicalize / route / cache / coalesce
                 │ live_shards ∩ shard→worker assignment
                 ├──binary wire──> ShardWorkerServer 0  (shards 0,1)
                 ├──binary wire──> ShardWorkerServer 1  (shards 2,3)
                 └──binary wire──> ...                  (spawn procs)

* **Sharding** — each worker process owns a balanced, contiguous slice
  of the :class:`~repro.core.sharding.ShardedSummary`'s shards (plus
  the replicas of its neighbours' slices) and evaluates them with its
  own models — its own arena, its own caches, its own GIL.
* **Routing** — the frontend plans every query once; the planner's
  ``live_shards`` pruning picks the shards that can contribute, and a
  consistent-hash ring over the canonical cache key picks which
  replica owner answers each shard (:class:`HashRing`): repeats of a
  query land on the same worker, and a worker death only remaps the
  keys it served.
* **Merging** — workers return *partial* aggregates over the exact
  per-shard narrowing the single-process merge path uses
  (:class:`ShardSlice`); the frontend combines them with the same
  algebra (:func:`merge_partials`): COUNT/SUM expectations add,
  variances add in quadrature, AVG is the merged ratio estimator, and
  GROUP BY ORDER/LIMIT applies only after the global merge.
* **Degradation** — when every owner of a live shard is dead, the
  frontend still answers: the missing shard contributes a uniform
  prior over its row count (expectation ``t/2``, variance ``t²/12``),
  the bounds widen accordingly, and the payload carries
  ``degraded: true``.  Requests are never dropped; the monitor thread
  respawns dead workers and the ``repro_cluster_*`` metrics record
  every death, respawn, and degraded answer.

Everything client-facing is inherited unchanged: admission control,
coalescing, the versioned result cache, hot reload (``reload`` fans
out to the pool), tracing, and both wire protocols.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import multiprocessing
import os
import queue as queue_module
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.api.explorer import Explorer
from repro.core.sharding import MergedEstimate, ShardedSummary
from repro.core.summary import EntropySummary
from repro.errors import QueryError, ReproError
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import (
    ServeConfig,
    SummaryServer,
    _Generation,
    _wire_label,
    result_payload,
)
from repro.stats.predicates import (
    Conjunction,
    RangePredicate,
    conjunction_from_masks,
)

#: Environment variable naming a directory for worker stdout/stderr
#: logs (one ``worker-<id>.log`` each) — the cluster-smoke CI job sets
#: it so a failing run uploads diagnosable worker output.
LOG_DIR_ENV = "REPRO_CLUSTER_LOG_DIR"

_BOOT_TIMEOUT_S = 60.0
_MONITOR_INTERVAL_S = 0.25


def _hash64(text: str) -> int:
    """Deterministic 64-bit hash (stable across processes and runs —
    builtin ``hash`` is salted per interpreter)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over worker ids (virtual nodes).

    The coordinator keys the ring with each query's canonical cache
    key: among a shard's replica owners, the owner closest clockwise
    to the key's point answers.  Repeats of a query therefore land on
    the same worker (plan/session-cache affinity), and a worker death
    only remaps the keys that worker served.
    """

    def __init__(self, worker_ids, vnodes: int = 32):
        points = []
        for wid in worker_ids:
            for vnode in range(vnodes):
                points.append((_hash64(f"worker:{wid}:{vnode}"), wid))
        points.sort()
        if not points:
            raise ReproError("a hash ring needs at least one worker")
        self._points = points

    def preferred(self, key: str, candidates) -> list[int]:
        """``candidates`` reordered by ring distance from ``key``."""
        wanted = list(dict.fromkeys(candidates))
        if len(wanted) <= 1:
            return wanted
        remaining = set(wanted)
        ordered: list[int] = []
        start = bisect.bisect_left(self._points, (_hash64(key), -1))
        for step in range(len(self._points)):
            wid = self._points[(start + step) % len(self._points)][1]
            if wid in remaining:
                remaining.discard(wid)
                ordered.append(wid)
                if not remaining:
                    break
        ordered.extend(wid for wid in wanted if wid in remaining)
        return ordered


# ----------------------------------------------------------------------
# Worker-side evaluation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, shipped as pickled data
    through the spawn args — no closures, no live objects (the
    executor-pickle-safety rule in ``tools/analyze`` enforces this
    shape for every worker target in the repo)."""

    worker_id: int
    #: Global indices of the shards this worker owns (primaries plus
    #: the replica slices assigned to it).
    indices: tuple
    shard_by: str | None
    #: Owned domain ranges aligned with ``indices`` (attribute-
    #: partitioned summaries; ``None`` for round-robin).
    ranges: tuple | None
    name: str
    #: In-memory mode: ``EntropySummary.to_payload()`` tuples for the
    #: owned shards, aligned with ``indices``.
    payloads: tuple | None
    #: Store mode: load-and-slice from this store root instead.
    store_root: str | None
    #: Store version to pin at boot (``None`` = latest); respawns after
    #: a reload pin the reloaded version.
    version: int | None
    parent_pid: int
    log_path: str | None


class ShardSlice:
    """The shards one worker owns, evaluated with the exact narrowing
    and pruning of the single-process :class:`ShardedSummary` merge
    path — a shard contributes precisely what it would have
    contributed in one process, so the frontend's merged answers match
    the single-process answers.
    """

    def __init__(self, shards, indices, schema, by_pos=None, ranges=None):
        self.shards = list(shards)
        self.indices = list(indices)
        self.schema = schema
        self.by_pos = by_pos
        self._owned = (
            None
            if ranges is None
            else [RangePredicate(low, high) for low, high in ranges]
        )
        if len(self.shards) != len(self.indices):
            raise ReproError("need exactly one global index per owned shard")
        if self._owned is not None and len(self._owned) != len(self.shards):
            raise ReproError("need exactly one owned range per owned shard")
        self._local = {
            global_index: local
            for local, global_index in enumerate(self.indices)
        }

    @classmethod
    def from_summary(cls, summary: ShardedSummary, indices) -> "ShardSlice":
        ranges = summary.owned_ranges
        return cls(
            [summary.shards[index] for index in indices],
            indices,
            summary.schema,
            by_pos=summary.by_position,
            ranges=(
                None
                if ranges is None
                else [ranges[index] for index in indices]
            ),
        )

    def locals_for(self, shards) -> list[int]:
        """Local positions of the requested global shard indices
        (unknown indices are ignored — the frontend's assignment is
        authoritative for what this worker should evaluate)."""
        if shards is None:
            return list(range(len(self.shards)))
        return [
            self._local[index] for index in shards if index in self._local
        ]

    def _narrowed(self, predicate, locals_) -> list:
        """Per-shard conjunction, ``None`` = provably-zero (mirrors
        :meth:`ShardedSummary.shard_conjunctions` for a subset)."""
        if self._owned is None:
            narrowed = (
                Conjunction(self.schema, {})
                if predicate is None or predicate.is_trivial()
                else predicate
            )
            return [narrowed] * len(locals_)
        size = self.schema.domain(self.by_pos).size
        if predicate is None or predicate.is_trivial():
            return [
                Conjunction(self.schema, {self.by_pos: self._owned[local]})
                for local in locals_
            ]
        base_masks = {
            pos: predicate.predicate_at(pos).mask(self.schema.domain(pos).size)
            for pos in predicate.constrained_positions
        }
        constraint = base_masks.get(self.by_pos)
        conjunctions = []
        for local in locals_:
            owned_mask = self._owned[local].mask(size)
            narrowed_mask = (
                owned_mask if constraint is None else constraint & owned_mask
            )
            if not narrowed_mask.any():
                conjunctions.append(None)
                continue
            masks = dict(base_masks)
            masks[self.by_pos] = narrowed_mask
            conjunctions.append(conjunction_from_masks(self.schema, masks))
        return conjunctions

    def count(self, predicate, shards=None) -> tuple[float, float]:
        """Partial COUNT: summed expectation and variance over the
        requested owned shards."""
        expectation = variance = 0.0
        locals_ = self.locals_for(shards)
        for local, narrowed in zip(locals_, self._narrowed(predicate, locals_)):
            if narrowed is None:
                continue
            estimate = self.shards[local].engine.estimate(narrowed)
            expectation += estimate.expectation
            variance += estimate.variance
        return expectation, variance

    def sum_value(self, attr, predicate, shards=None) -> float:
        """Partial ``E[SUM(attr)]`` over the requested owned shards."""
        from repro.query.linear import numeric_weights

        pos = self.schema.position(attr)
        weights = numeric_weights(self.schema.domain(pos))
        total = 0.0
        locals_ = self.locals_for(shards)
        for local, narrowed in zip(locals_, self._narrowed(predicate, locals_)):
            if narrowed is None:
                continue
            total += self.shards[local].engine.sum_estimate(
                pos, weights, narrowed
            )
        return total

    def group(self, attrs, predicate, shards=None) -> dict:
        """Partial GROUP BY COUNT(*): label → summed expectation over
        the requested owned shards (no order/limit — global top-k is
        only defined after the frontend merge)."""
        positions = [self.schema.position(attr) for attr in attrs]
        merged: dict[tuple, float] = {}
        locals_ = self.locals_for(shards)
        for local, narrowed in zip(locals_, self._narrowed(predicate, locals_)):
            if narrowed is None:
                continue
            # Engine-level grouping keys by domain *indices* — the same
            # keys the single-process arena route serves — so merged
            # cluster rows are byte-identical to single-process rows.
            for labels, estimate in (
                self.shards[local].engine.group_by(positions, narrowed).items()
            ):
                key = tuple(_wire_label(label) for label in labels)
                merged[key] = merged.get(key, 0.0) + estimate.expectation
        return merged

    def __repr__(self):
        return (
            f"ShardSlice(shards={list(self.indices)}, "
            f"by={self.shards and self.by_pos})"
        )


def partial_item(plan) -> dict:
    """Wire-ready fan-out item for one frontend plan: the *canonical*
    predicate as per-position domain-index masks (no SQL round-trip —
    workers evaluate exactly what the frontend planned), plus the
    aggregate shape the merge step needs."""
    query = plan.query
    conjunction = plan.conjunction_or_none()
    masks = {}
    if conjunction is not None:
        masks = {
            str(pos): np.flatnonzero(mask).tolist()
            for pos, mask in conjunction.attribute_masks().items()
        }
    aggregate = (
        getattr(query, "aggregate", "count") if query is not None else "count"
    )
    if query is not None and query.is_grouped:
        item = {
            "kind": "group",
            "masks": masks,
            "group_by": [str(attr) for attr in query.group_by],
        }
    elif aggregate in ("sum", "avg"):
        item = {"kind": aggregate, "masks": masks, "attr": query.aggregate_attr}
    else:
        item = {"kind": "count", "masks": masks}
    return item


def _conjunction_from_item(schema, item):
    """Rebuild the canonical conjunction a fan-out item carries."""
    masks = item.get("masks") or {}
    if not masks:
        return None
    dense = {}
    for pos_text, indices in masks.items():
        pos = int(pos_text)
        mask = np.zeros(schema.domain(pos).size, dtype=bool)
        mask[np.asarray(indices, dtype=np.int64)] = True
        dense[pos] = mask
    return conjunction_from_masks(schema, dense)


def compute_partial(shard_slice: ShardSlice, item: dict) -> dict:
    """One worker-side partial aggregate for one fan-out item."""
    kind = item.get("kind", "count")
    conjunction = _conjunction_from_item(shard_slice.schema, item)
    shards = item.get("shards")
    if kind == "count":
        expectation, variance = shard_slice.count(conjunction, shards)
        return {"kind": "count", "e": float(expectation), "v": float(variance)}
    if kind == "sum":
        total = shard_slice.sum_value(item["attr"], conjunction, shards)
        return {"kind": "sum", "s": float(total)}
    if kind == "avg":
        total = shard_slice.sum_value(item["attr"], conjunction, shards)
        expectation, variance = shard_slice.count(conjunction, shards)
        return {
            "kind": "avg",
            "s": float(total),
            "e": float(expectation),
            "v": float(variance),
        }
    if kind == "group":
        merged = shard_slice.group(item["group_by"], conjunction, shards)
        return {
            "kind": "group",
            "labels": [list(labels) for labels in merged],
            "counts": np.asarray(list(merged.values()), dtype=np.float64),
        }
    raise QueryError(f"unknown partial kind {kind!r}")


def merge_partials(
    plan,
    spec: dict,
    partials,
    *,
    degraded_totals=(),
    total: int,
    rounded: bool = False,
) -> dict:
    """Frontend merge: worker partials → the same wire payload the
    single-process server produces, via the same algebra (expectations
    and variances add; AVG is merged SUM over merged COUNT; GROUP BY
    order/limit applies after the global merge; ``rounded`` applies
    only here, to the merged values).

    ``degraded_totals`` carries the row counts of live shards no
    surviving worker covers: each contributes a uniform prior over
    ``[0, t]`` (expectation ``t/2``, variance ``t²/12``), widening the
    error bounds, and the payload is flagged ``degraded``.
    """
    for partial in partials:
        if partial.get("kind") == "error":
            raise QueryError(str(partial.get("error", "worker partial failed")))
    kind = spec["kind"]
    if kind in ("count", "avg"):
        expectation = sum(partial["e"] for partial in partials)
        variance = sum(partial["v"] for partial in partials)
        for missing_total in degraded_totals:
            expectation += missing_total / 2.0
            variance += (missing_total * missing_total) / 12.0
        merged = MergedEstimate(expectation, variance, total)
        count_value = (
            float(merged.rounded) if rounded else float(merged.expectation)
        )
        if kind == "count":
            low, high = merged.ci95
            payload = {
                "kind": "scalar",
                "value": count_value,
                "std": float(merged.std),
                "ci95": [float(low), float(high)],
            }
        else:
            if count_value <= 0:
                raise QueryError("AVG undefined: no rows match the predicate")
            merged_sum = sum(partial["s"] for partial in partials)
            payload = {"kind": "scalar", "value": float(merged_sum / count_value)}
    elif kind == "sum":
        payload = {
            "kind": "scalar",
            "value": float(sum(partial["s"] for partial in partials)),
        }
    elif kind == "group":
        query = plan.query
        merged_counts: dict[tuple, float] = {}
        for partial in partials:
            counts = np.asarray(partial.get("counts", ()), dtype=np.float64)
            for labels, count in zip(partial.get("labels", ()), counts):
                key = tuple(labels)
                merged_counts[key] = merged_counts.get(key, 0.0) + float(count)
        if rounded:
            from repro.core.inference import round_half_up

            merged_counts = {
                key: float(round_half_up(count))
                for key, count in merged_counts.items()
            }
        rows = list(merged_counts.items())
        if query.order == "desc":
            rows.sort(key=lambda row: (-row[1], str(row[0])))
        elif query.order == "asc":
            rows.sort(key=lambda row: (row[1], str(row[0])))
        else:
            rows.sort(key=lambda row: str(row[0]))
        if query.limit is not None:
            rows = rows[: query.limit]
        payload = {
            "kind": "rows",
            "group_by": list(query.group_by),
            "labels": [list(labels) for labels, _ in rows],
            "counts": np.asarray([count for _, count in rows], dtype=np.float64),
        }
    else:
        raise QueryError(f"unknown partial kind {kind!r}")
    if degraded_totals:
        payload["degraded"] = True
    return payload


# ----------------------------------------------------------------------
# The worker server
# ----------------------------------------------------------------------

def _model_for_slice(shard_slice: ShardSlice, name: str):
    """The slice as a servable model: a subset ``ShardedSummary`` when
    the worker owns two or more shards (same merge semantics, own
    arena), the bare shard otherwise."""
    if len(shard_slice.shards) >= 2:
        shard_by = (
            None
            if shard_slice.by_pos is None
            else shard_slice.schema.attribute_names[shard_slice.by_pos]
        )
        return ShardedSummary(
            shard_slice.shards,
            name=name,
            shard_by=shard_by,
            ranges=(
                None
                if shard_slice._owned is None
                else [(owned.low, owned.high) for owned in shard_slice._owned]
            ),
        )
    return shard_slice.shards[0]


class ShardWorkerServer(SummaryServer):
    """One worker process: a full ``SummaryServer`` over its owned
    shard slice, plus the ``partial_batch`` op the frontend fans out
    to.  Store-backed workers load-and-slice on every (hot) reload, so
    an ingest publish propagates through the pool with the ordinary
    ``reload`` op."""

    def __init__(self, spec: WorkerSpec, *, config=None, chaos=None):
        self._spec = spec
        self.slice: ShardSlice | None = None
        if spec.store_root is not None:
            super().__init__(
                store=spec.store_root,
                name=spec.name,
                version=spec.version,
                config=config,
                chaos=chaos,
            )
        else:
            shards = [
                EntropySummary.from_payload(document, arrays)
                for document, arrays in spec.payloads
            ]
            schema = shards[0].schema
            self.slice = ShardSlice(
                shards,
                list(spec.indices),
                schema,
                by_pos=(
                    None
                    if spec.shard_by is None
                    else schema.position(spec.shard_by)
                ),
                ranges=spec.ranges,
            )
            model = _model_for_slice(
                self.slice, f"{spec.name}:w{spec.worker_id}"
            )
            super().__init__(model, config=config, chaos=chaos)

    def _load_generation(self, version=None, tag=None) -> _Generation:
        record, summary = self._store.load_with_record(
            self._name, version=version, tag=tag
        )
        if not hasattr(summary, "shards"):
            raise ReproError(
                f"store summary {self._name!r} is not sharded; a cluster "
                "worker needs a ShardedSummary"
            )
        spec = self._spec
        for index in spec.indices:
            if not 0 <= index < summary.num_shards:
                raise ReproError(
                    f"worker {spec.worker_id} owns shard {index} but "
                    f"version {record.version} has {summary.num_shards} "
                    "shards; restart the cluster to rebalance"
                )
        shard_slice = ShardSlice.from_summary(summary, list(spec.indices))
        model = _model_for_slice(
            shard_slice, f"{summary.name}:w{spec.worker_id}"
        )
        self.slice = shard_slice  # swaps atomically with the generation
        explorer = Explorer.attach(model, rounded=self.config.rounded)
        return _Generation(
            record.version,
            explorer,
            label=f"{record.describe()} [shards {list(spec.indices)}]",
        )

    async def _dispatch(self, client: str, request: dict) -> dict:
        if request.get("op") == "partial_batch":
            items = request.get("items")
            if not isinstance(items, (list, tuple)) or not items:
                raise QueryError(
                    "partial_batch op needs a non-empty 'items' list"
                )
            self._requests_total.labels(op="partial_batch").inc(len(items))
            shard_slice = self.slice  # pin: reloads must not swap mid-batch
            version = self.version
            loop = asyncio.get_running_loop()
            partials = await loop.run_in_executor(
                None, self._compute_partials, shard_slice, list(items)
            )
            return {
                "ok": True,
                "status": 200,
                "partials": partials,
                "version": version,
            }
        return await super()._dispatch(client, request)

    def _compute_partials(self, shard_slice: ShardSlice, items: list) -> list:
        began = time.perf_counter()
        self._inject_backend_chaos()
        partials = []
        touched: set[int] = set()
        for item in items:
            try:
                partials.append(compute_partial(shard_slice, item))
            except Exception as error:
                # A failing item answers as an error partial instead of
                # poisoning the batch (the frontend re-raises per plan).
                partials.append(
                    {
                        "kind": "error",
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
            shards = item.get("shards")
            touched.update(
                shard_slice.indices if shards is None else shards
            )
        ms = self.config.shard_service_ms
        if ms:
            owned_touched = touched.intersection(shard_slice.indices)
            remaining = ms * len(owned_touched) / 1e3 - (
                time.perf_counter() - began
            )
            if remaining > 0:
                time.sleep(remaining)
        return partials


def _watchdog_main(parent_pid: int) -> None:
    """Exit the worker when the frontend process goes away — an
    orphaned worker would otherwise serve a dead cluster forever."""
    while True:
        time.sleep(1.0)
        if os.getppid() != parent_pid:
            os._exit(0)


def _worker_main(spec: WorkerSpec, config_fields: dict, ready_queue) -> None:
    """Worker-process entry point (module-level so it pickles through
    the spawn context; everything it needs rides in ``spec``)."""
    if spec.log_path:
        log_file = open(spec.log_path, "a", buffering=1)
        sys.stdout = sys.stderr = log_file
    print(
        f"[worker {spec.worker_id}] booting pid={os.getpid()} "
        f"shards={list(spec.indices)}"
    )
    try:
        config = ServeConfig(**config_fields)
        server = ShardWorkerServer(spec, config=config)
    except Exception as error:
        ready_queue.put(
            ("error", spec.worker_id, f"{type(error).__name__}: {error}")
        )
        return
    watchdog = threading.Thread(
        target=_watchdog_main,
        args=(spec.parent_pid,),
        name="repro-cluster-watchdog",
        daemon=True,
    )
    watchdog.start()

    async def _main() -> None:
        await server.start()
        ready_queue.put(("ready", spec.worker_id, server.port))
        print(
            f"[worker {spec.worker_id}] serving on "
            f"{server.host}:{server.port}"
        )
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


# ----------------------------------------------------------------------
# The frontend
# ----------------------------------------------------------------------

class _WorkerHandle:
    """Frontend-side state of one worker process."""

    __slots__ = (
        "worker_id", "indices", "process", "host", "port", "alive",
        "death_counted",
    )

    def __init__(self, worker_id: int, indices):
        self.worker_id = worker_id
        self.indices = tuple(indices)
        self.process = None
        self.host = "127.0.0.1"
        self.port = 0
        self.alive = False
        #: One death increment per process incarnation, wherever the
        #: death is first noticed (kill_worker, fan-out, or monitor).
        self.death_counted = False


class ClusterCoordinator(SummaryServer):
    """Frontend of the worker pool: plans, routes, fans out, merges.

    Construct like a :class:`SummaryServer` (in-memory sharded summary,
    or a store plus name) with a pool shape on top::

        server = ClusterCoordinator(summary, workers=4, replicas=2)

    ``workers`` processes are spawned at :meth:`start`; shard ``s`` is
    owned by ``replicas`` consecutive workers starting from its
    balanced block owner, and each query's canonical key picks the
    serving replica through the consistent-hash ring.  A monitor
    thread respawns dead workers; until a respawn lands, uncovered
    shards degrade (widened bounds, ``degraded: true``) instead of
    failing the request.  ``assignment`` overrides the owner lists per
    shard (tests exercise arbitrary assignments through it).
    """

    def __init__(
        self,
        source=None,
        *,
        store=None,
        name: str | None = None,
        version: int | None = None,
        tag: str | None = None,
        workers: int = 2,
        replicas: int = 1,
        config: ServeConfig | None = None,
        chaos=None,
        assignment=None,
        worker_log_dir: str | None = None,
        worker_timeout: float = 30.0,
    ):
        super().__init__(
            source,
            store=store,
            name=name,
            version=version,
            tag=tag,
            config=config,
            chaos=chaos,
        )
        summary = getattr(self._generation.explorer.backend, "summary", None)
        if summary is None or not hasattr(summary, "shards"):
            raise ReproError(
                "a cluster serves a sharded summary; build one with "
                "SummaryBuilder.shards or lower --workers to 1"
            )
        if not 1 <= workers <= summary.num_shards:
            raise ReproError(
                f"workers (--workers) must be in [1, {summary.num_shards}] "
                f"(one shard cannot split across workers), got {workers}"
            )
        if not 1 <= replicas <= workers:
            raise ReproError(
                f"replicas (--replicas) must be in [1, {workers}], "
                f"got {replicas}"
            )
        self._pool_size = workers
        self._replicas = replicas
        self._worker_timeout = worker_timeout
        self._worker_log_dir = (
            worker_log_dir
            if worker_log_dir is not None
            else os.environ.get(LOG_DIR_ENV) or None
        )
        num_shards = summary.num_shards
        if assignment is not None:
            owners = [list(entry) for entry in assignment]
            if len(owners) != num_shards:
                raise ReproError(
                    f"assignment needs one owner list per shard "
                    f"({num_shards}), got {len(owners)}"
                )
            for shard, entry in enumerate(owners):
                if not entry or not all(
                    isinstance(wid, int) and 0 <= wid < workers
                    for wid in entry
                ):
                    raise ReproError(
                        f"assignment for shard {shard} must name workers "
                        f"in [0, {workers})"
                    )
        else:
            # Balanced contiguous blocks (affinity-friendly for range-
            # partitioned summaries), then the next replicas-1 workers.
            owners = []
            for shard in range(num_shards):
                primary = shard * workers // num_shards
                owners.append(
                    [(primary + step) % workers for step in range(replicas)]
                )
        #: Ordered owner workers per shard (primary first).
        self._owners = owners
        self._ring = HashRing(range(workers))
        self._desired_version: int | None = (
            self.version if self._store is not None else None
        )
        owned: list[list[int]] = [[] for _ in range(workers)]
        for shard, entry in enumerate(owners):
            for wid in entry:
                if shard not in owned[wid]:
                    owned[wid].append(shard)
        for wid, shard_list in enumerate(owned):
            if not shard_list:
                raise ReproError(
                    f"worker {wid} owns no shards under this assignment; "
                    "lower --workers or raise --replicas"
                )
        self._handles = [
            _WorkerHandle(wid, sorted(owned[wid])) for wid in range(workers)
        ]
        self._ctx = multiprocessing.get_context("spawn")
        self._ready_queue = None
        self._ready_buffer: dict[int, int] = {}
        self._fanout_pool: ThreadPoolExecutor | None = None
        self._monitor: threading.Thread | None = None
        self._pool_shutdown = threading.Event()
        self._pool_lock = threading.Lock()
        self._cluster_workers = self.metrics.gauge(
            "repro_cluster_workers", "Live worker processes in the pool."
        )
        self._worker_deaths = self.metrics.counter(
            "repro_cluster_worker_deaths_total",
            "Worker processes observed dead (killed, crashed, or OOMed).",
        )
        self._respawns = self.metrics.counter(
            "repro_cluster_respawns_total",
            "Worker processes respawned by the monitor.",
        )
        self._degraded_total = self.metrics.counter(
            "repro_cluster_degraded_total",
            "Requests answered with widened bounds because no live "
            "worker covered a live shard.",
        )
        self._fanout_seconds = self.metrics.histogram(
            "repro_cluster_fanout_seconds",
            "Frontend fan-out + merge latency per evaluation flush.",
        )
        self._partial_calls = self.metrics.counter(
            "repro_cluster_partial_calls_total",
            "partial_batch calls sent to workers, by outcome.",
            ("outcome",),
        )
        self._version_skew_total = self.metrics.counter(
            "repro_cluster_version_skew_total",
            "Worker partials answered at a different store version than "
            "the frontend's pinned generation (transient during reload).",
        )

    # -- pool construction -------------------------------------------------
    @property
    def _summary(self):
        return self._generation.explorer.backend.summary

    def worker_ports(self) -> list[int]:
        """Bound port of each worker (0 = not started); every port is
        ephemeral — the pool never claims fixed ports."""
        return [handle.port for handle in self._handles]

    def _worker_config_fields(self) -> dict:
        cfg = self.config
        return dict(
            host="127.0.0.1",
            port=0,  # always ephemeral; the ready message reports it
            coalesce=False,  # the frontend already batched the flush
            cache_size=0,  # results cache lives at the frontend
            cache_ttl=None,
            rounded=False,  # rounding applies to merged values only
            binary=True,
            trace_ring=0,
            shard_service_ms=cfg.shard_service_ms,
        )

    def _worker_spec(self, worker_id: int) -> WorkerSpec:
        handle = self._handles[worker_id]
        summary = self._summary
        log_path = None
        if self._worker_log_dir:
            os.makedirs(self._worker_log_dir, exist_ok=True)
            log_path = os.path.join(
                self._worker_log_dir, f"worker-{worker_id}.log"
            )
        if self._store is not None:
            return WorkerSpec(
                worker_id=worker_id,
                indices=handle.indices,
                shard_by=summary.shard_by,
                ranges=None,
                name=self._name,
                payloads=None,
                store_root=str(self._store.root),
                version=self._desired_version,
                parent_pid=os.getpid(),
                log_path=log_path,
            )
        ranges = summary.owned_ranges
        return WorkerSpec(
            worker_id=worker_id,
            indices=handle.indices,
            shard_by=summary.shard_by,
            ranges=(
                None
                if ranges is None
                else tuple(tuple(ranges[index]) for index in handle.indices)
            ),
            name=summary.name,
            payloads=tuple(
                summary.shards[index].to_payload() for index in handle.indices
            ),
            store_root=None,
            version=None,
            parent_pid=os.getpid(),
            log_path=log_path,
        )

    def _spawn_process(self, worker_id: int):
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._worker_spec(worker_id),
                self._worker_config_fields(),
                self._ready_queue,
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return process

    def _await_ready(self, worker_id: int, deadline: float) -> int:
        """Wait for one worker's ready message; returns its port.
        Messages arrive in boot order, not ask order — other workers'
        readiness is buffered for their own waits, never dropped."""
        while True:
            if worker_id in self._ready_buffer:
                return self._ready_buffer.pop(worker_id)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(
                    f"cluster worker {worker_id} did not start within "
                    f"{_BOOT_TIMEOUT_S:.0f}s"
                )
            try:
                kind, wid, value = self._ready_queue.get(timeout=remaining)
            except queue_module.Empty:
                continue
            if kind == "error":
                raise ReproError(f"cluster worker {wid} failed: {value}")
            self._ready_buffer[wid] = int(value)

    def _start_pool(self) -> None:
        self._ready_queue = self._ctx.Queue()
        self._ready_buffer.clear()
        for handle in self._handles:
            handle.process = self._spawn_process(handle.worker_id)
        deadline = time.monotonic() + _BOOT_TIMEOUT_S
        try:
            for handle in self._handles:
                handle.port = self._await_ready(handle.worker_id, deadline)
                handle.alive = True
        except ReproError:
            self._stop_pool()
            raise
        self._cluster_workers.set(self._pool_size)
        self._monitor = threading.Thread(
            target=self._monitor_main, name="repro-cluster-monitor",
            daemon=True,
        )
        self._monitor.start()

    def _stop_pool(self) -> None:
        self._pool_shutdown.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=10)
            self._monitor = None
        for handle in self._handles:
            handle.alive = False
            process = handle.process
            if process is None:
                continue
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
            handle.process = None
        if self._ready_queue is not None:
            self._ready_queue.close()
            self._ready_queue = None
        pool = self._fanout_pool
        self._fanout_pool = None
        if pool is not None:
            pool.shutdown(wait=False)
        self._cluster_workers.set(0)

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._fanout_pool = ThreadPoolExecutor(
            max_workers=max(self._pool_size, 2),
            thread_name_prefix="repro-cluster-fanout",
        )
        await loop.run_in_executor(None, self._start_pool)
        await super().start()

    async def stop(self) -> None:
        await super().stop()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._stop_pool)

    # -- worker liveness ---------------------------------------------------
    def _live_workers(self) -> set[int]:
        return {
            handle.worker_id for handle in self._handles if handle.alive
        }

    def _monitor_main(self) -> None:
        """Respawn loop: notices dead worker processes, spawns fresh
        ones, and re-admits suspects that answer a ping.  Joined by
        :meth:`_stop_pool` on shutdown."""
        while not self._pool_shutdown.wait(_MONITOR_INTERVAL_S):
            for handle in self._handles:
                if self._pool_shutdown.is_set():
                    break
                process = handle.process
                if process is None:
                    continue
                if not process.is_alive():
                    handle.alive = False
                    if not handle.death_counted:
                        handle.death_counted = True
                        self._worker_deaths.inc()
                    self._cluster_workers.set(len(self._live_workers()))
                    try:
                        self._respawn(handle)
                    except ReproError:
                        continue  # retried on the next tick
                elif not handle.alive:
                    # Suspected from a failed fan-out call but the
                    # process lives: probe and re-admit.
                    try:
                        with ServeClient(
                            handle.host, handle.port, timeout=2.0
                        ) as client:
                            client.ping()
                    except (ServeError, OSError):
                        pass
                    else:
                        handle.alive = True
                        self._cluster_workers.set(len(self._live_workers()))

    def _respawn(self, handle: _WorkerHandle) -> None:
        old = handle.process
        if old is not None:
            old.join(timeout=1.0)
        handle.process = self._spawn_process(handle.worker_id)
        handle.port = self._await_ready(
            handle.worker_id, time.monotonic() + _BOOT_TIMEOUT_S
        )
        handle.alive = True
        handle.death_counted = False
        self._respawns.inc()
        self._cluster_workers.set(len(self._live_workers()))

    def kill_worker(self, worker_id: int | None = None) -> int:
        """Hard-kill one live worker (chaos hook / tests): SIGKILL, no
        goodbye — the monitor notices and respawns it.  Returns the
        killed worker's id."""
        with self._pool_lock:
            candidates = [
                handle
                for handle in self._handles
                if handle.alive
                and (worker_id is None or handle.worker_id == worker_id)
            ]
            if not candidates:
                raise ReproError("no live worker to kill")
            handle = candidates[0]
            handle.alive = False  # route around it immediately
            if not handle.death_counted:
                handle.death_counted = True
                self._worker_deaths.inc()
            self._cluster_workers.set(len(self._live_workers()))
            if handle.process is not None:
                handle.process.kill()
            return handle.worker_id

    # -- hot reload --------------------------------------------------------
    def reload(self, version: int | None = None, tag: str | None = None) -> int:
        """Reload the frontend's planning generation, then fan the same
        version out to every worker.  A worker that fails to reload is
        killed so the monitor respawns it at the reloaded version —
        the pool converges instead of serving mixed generations."""
        target = super().reload(version=version, tag=tag)
        self._desired_version = target

        def _reload_worker(handle: _WorkerHandle):
            try:
                with ServeClient(
                    handle.host, handle.port, timeout=self._worker_timeout
                ) as client:
                    client.reload(version=target)
            except (ServeError, OSError):
                try:
                    self.kill_worker(handle.worker_id)
                except ReproError:
                    pass  # already dead; the monitor handles it

        pool = self._fanout_pool
        handles = [handle for handle in self._handles if handle.alive]
        if pool is not None and handles:
            list(pool.map(_reload_worker, handles))
        return target

    # -- the fan-out evaluation path ---------------------------------------
    def _execute_single(self, generation, plan):
        output = self._execute_items([(generation, plan)])[0]
        if isinstance(output, BaseException):
            raise output
        return output

    def _execute_items(self, items: list) -> list:
        began = time.perf_counter()
        self._inject_backend_chaos()
        chaos = self.chaos
        if chaos is not None and chaos.decide("cluster.worker_kill") is not None:
            try:
                self.kill_worker()
            except ReproError:
                pass  # pool already fully down; degraded answers follow
        payloads: list = [None] * len(items)
        groups: dict[int, list[int]] = {}
        for index, (generation, _) in enumerate(items):
            groups.setdefault(id(generation), []).append(index)
        for indices in groups.values():
            generation = items[indices[0]][0]
            fanout: list[int] = []
            for index in indices:
                plan = items[index][1]
                if plan.route.target != "sharded":
                    # Contradictions (EmptyOp) and defensive fallbacks
                    # run on the frontend's resident planning model.
                    try:
                        result = generation.explorer.planner.execute(plan)
                    except Exception as error:
                        payloads[index] = error
                    else:
                        payload = result_payload(result)
                        self.cache.put(
                            (generation.version, plan.cache_key), payload
                        )
                        payloads[index] = payload
                else:
                    fanout.append(index)
            if not fanout:
                continue
            outputs = self._fan_out(
                generation, [items[index][1] for index in fanout]
            )
            for index, output in zip(fanout, outputs):
                if not isinstance(output, BaseException):
                    self.cache.put(
                        (generation.version, items[index][1].cache_key),
                        output,
                    )
                payloads[index] = output
        self._fanout_seconds.observe(time.perf_counter() - began)
        return payloads

    def _call_worker(
        self, handle: _WorkerHandle, batch: dict, specs: list, version: int
    ) -> dict:
        """One ``partial_batch`` round-trip; returns plan-position →
        partial.  Raises on transport failure (the caller reroutes the
        worker's shards)."""
        positions = sorted(batch)
        items = []
        for position in positions:
            item = dict(specs[position])
            item["shards"] = sorted(batch[position])
            items.append(item)
        with ServeClient(
            handle.host, handle.port, timeout=self._worker_timeout
        ) as client:
            response = client.call("partial_batch", items=items)
        if response.get("version") != version:
            self._version_skew_total.inc()
        partials = response.get("partials") or []
        if len(partials) != len(positions):
            raise ServeError(
                f"worker {handle.worker_id} answered {len(partials)} "
                f"partials for {len(positions)} items"
            )
        return dict(zip(positions, partials))

    def _fan_out(self, generation, plans: list) -> list:
        """Evaluate one flush's sharded plans across the pool."""
        version = generation.version
        summary = generation.explorer.backend.summary
        specs = [partial_item(plan) for plan in plans]
        partials: list[list] = [[] for _ in plans]
        degraded: list[set] = [set() for _ in plans]
        live = self._live_workers()
        pending: dict[int, dict[int, set]] = {}

        def _assign(position: int, shard: int, exclude: set) -> None:
            candidates = [
                wid
                for wid in self._ring.preferred(
                    repr(plans[position].cache_key), self._owners[shard]
                )
                if wid in live and wid not in exclude
            ]
            if not candidates:
                degraded[position].add(shard)
                return
            pending.setdefault(candidates[0], {}).setdefault(
                position, set()
            ).add(shard)

        for position, plan in enumerate(plans):
            for shard in plan.route.detail.get("live_shards", ()):
                _assign(position, shard, exclude=set())

        excluded: set[int] = set()
        pool = self._fanout_pool
        while pending:
            current, pending = pending, {}
            futures = {}
            for wid, batch in current.items():
                handle = self._handles[wid]
                if pool is not None:
                    futures[wid] = pool.submit(
                        self._call_worker, handle, batch, specs, version
                    )
            for wid, future in futures.items():
                try:
                    answered = future.result()
                except (ServeError, OSError, ReproError):
                    self._partial_calls.labels(outcome="failed").inc()
                    excluded.add(wid)
                    handle = self._handles[wid]
                    handle.alive = False  # monitor probes / respawns
                    live.discard(wid)
                    self._cluster_workers.set(len(self._live_workers()))
                    for position, shards in current[wid].items():
                        for shard in shards:
                            _assign(position, shard, exclude=excluded)
                else:
                    self._partial_calls.labels(outcome="ok").inc()
                    for position, partial in answered.items():
                        partials[position].append(partial)

        outputs: list = []
        for position, plan in enumerate(plans):
            if degraded[position]:
                self._degraded_total.inc()
            try:
                outputs.append(
                    merge_partials(
                        plan,
                        specs[position],
                        partials[position],
                        degraded_totals=[
                            summary.shards[shard].total
                            for shard in sorted(degraded[position])
                        ],
                        total=summary.total,
                        rounded=self.config.rounded,
                    )
                )
            except Exception as error:
                outputs.append(error)
        return outputs

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        report = super().stats()
        snapshot = self.metrics.snapshot()
        from repro.obs import sample_value

        report["cluster"] = {
            "workers": self._pool_size,
            "replicas": self._replicas,
            "live": len(self._live_workers()),
            "assignment": {
                str(handle.worker_id): list(handle.indices)
                for handle in self._handles
            },
            "deaths": int(
                sample_value(snapshot, "repro_cluster_worker_deaths_total")
            ),
            "respawns": int(
                sample_value(snapshot, "repro_cluster_respawns_total")
            ),
            "degraded": int(
                sample_value(snapshot, "repro_cluster_degraded_total")
            ),
        }
        return report

    def __repr__(self):
        return (
            f"ClusterCoordinator({self._generation.label!r}, "
            f"{self.host}:{self.port}, workers={self._pool_size}, "
            f"replicas={self._replicas})"
        )
