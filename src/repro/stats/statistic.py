"""Statistics ``Φ = {(c_j, s_j)}`` over a relation (paper Sec 3.1).

A :class:`Statistic` couples a counting-query predicate with its
observed value on the data.  A :class:`StatisticSet` holds the complete
1D statistics plus the budgeted multi-dimensional ones and validates
the structural assumptions the compression relies on:

* every 1D domain value has exactly one point statistic;
* every multi-dimensional statistic is a conjunction of *range*
  predicates;
* multi-dimensional statistics over the same attribute set are
  pairwise disjoint.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import StatisticError
from repro.stats.predicates import Conjunction, RangePredicate


class Statistic:
    """One ``(c_j, s_j)`` pair: a conjunctive counting query and its
    asserted value on the summarized instance."""

    __slots__ = ("predicate", "value")

    def __init__(self, predicate: Conjunction, value: float):
        if value < 0:
            raise StatisticError(f"statistic value must be >= 0, got {value}")
        self.predicate = predicate
        self.value = float(value)

    @property
    def positions(self) -> tuple[int, ...]:
        """Constrained attribute positions (the statistic's dimension)."""
        return tuple(self.predicate.constrained_positions)

    @property
    def dimension(self) -> int:
        return len(self.positions)

    def range_at(self, pos: int) -> RangePredicate:
        """The range predicate at an attribute position.

        Statistics used by the MaxEnt polynomial must be conjunctions
        of ranges; anything else is a :class:`StatisticError`.
        """
        predicate = self.predicate.predicate_at(pos)
        if predicate.is_true:
            size = self.predicate.schema.domain(pos).size
            return RangePredicate(0, size - 1)
        if not isinstance(predicate, RangePredicate):
            raise StatisticError(
                "polynomial statistics must use range predicates, "
                f"found {type(predicate).__name__}"
            )
        return predicate

    def measure(self, relation: Relation) -> int:
        """Evaluate the counting query on actual data."""
        return relation.count_where(self.predicate.attribute_masks())

    def __repr__(self):
        return f"Statistic({self.predicate!r}, s={self.value:g})"


def point_statistic(schema: Schema, attr, index: int, value: float) -> Statistic:
    """1D statistic ``A = v`` with asserted count ``value``."""
    pos = schema.position(attr)
    predicate = Conjunction(schema, {pos: RangePredicate.point(index)})
    return Statistic(predicate, value)


def range_statistic_2d(
    schema: Schema,
    attr_a,
    range_a: tuple[int, int],
    attr_b,
    range_b: tuple[int, int],
    value: float,
) -> Statistic:
    """2D statistic ``A ∈ [u1,v1] ∧ B ∈ [u2,v2]`` with asserted count."""
    pos_a = schema.position(attr_a)
    pos_b = schema.position(attr_b)
    if pos_a == pos_b:
        raise StatisticError("2D statistic needs two distinct attributes")
    predicate = Conjunction(
        schema,
        {
            pos_a: RangePredicate(*range_a),
            pos_b: RangePredicate(*range_b),
        },
    )
    return Statistic(predicate, value)


class StatisticSet:
    """The full statistic collection Φ backing one summary.

    Parameters
    ----------
    schema:
        Relation schema.
    total:
        Relation cardinality ``n`` (known and fixed, Sec 3.1).
    one_dim:
        For each attribute position, a sequence of per-value counts
        (length = domain size).  These become the complete 1D point
        statistics; overcompleteness requires them to sum to ``total``.
    multi_dim:
        Multi-dimensional :class:`Statistic` objects (typically 2D range
        statistics from the selection heuristics).
    """

    def __init__(
        self,
        schema: Schema,
        total: int,
        one_dim: Sequence[Sequence[float]],
        multi_dim: Iterable[Statistic] = (),
    ):
        if total <= 0:
            raise StatisticError(f"relation cardinality must be positive, got {total}")
        if len(one_dim) != schema.num_attributes:
            raise StatisticError(
                "need one 1D count vector per attribute "
                f"({schema.num_attributes}), got {len(one_dim)}"
            )
        self.schema = schema
        self.total = int(total)
        self.one_dim: list[list[float]] = []
        for pos, counts in enumerate(one_dim):
            counts = [float(count) for count in counts]
            size = schema.domain(pos).size
            if len(counts) != size:
                raise StatisticError(
                    f"1D counts for {schema.attribute_names[pos]!r} must have "
                    f"length {size}, got {len(counts)}"
                )
            if any(count < 0 for count in counts):
                raise StatisticError("1D counts must be non-negative")
            if abs(sum(counts) - total) > 1e-6 * max(total, 1):
                raise StatisticError(
                    f"1D counts for {schema.attribute_names[pos]!r} sum to "
                    f"{sum(counts):g}, expected n = {total} (overcompleteness)"
                )
            self.one_dim.append(counts)
        self.multi_dim: list[Statistic] = []
        for statistic in multi_dim:
            self.add_multi_dim(statistic)

    # ------------------------------------------------------------------
    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        multi_dim: Iterable[Statistic] = (),
    ) -> "StatisticSet":
        """Extract the complete 1D statistics from data and attach the
        given multi-dimensional statistics."""
        one_dim = [
            relation.marginal(pos).astype(float).tolist()
            for pos in range(relation.schema.num_attributes)
        ]
        return cls(relation.schema, relation.num_rows, one_dim, multi_dim)

    def add_multi_dim(self, statistic: Statistic) -> None:
        """Add one multi-dimensional statistic, enforcing the Sec 4.1
        disjointness assumption within an attribute set."""
        if statistic.dimension < 2:
            raise StatisticError(
                "multi-dimensional statistics must constrain >= 2 attributes"
            )
        if statistic.value > self.total:
            raise StatisticError(
                f"statistic value {statistic.value:g} exceeds cardinality {self.total}"
            )
        positions = statistic.positions
        for existing in self.multi_dim:
            if existing.positions != positions:
                continue
            if all(
                existing.range_at(pos).intersect(statistic.range_at(pos)) is not None
                for pos in positions
            ):
                raise StatisticError(
                    "multi-dimensional statistics over the same attribute set "
                    f"must be disjoint; {statistic!r} overlaps {existing!r}"
                )
        self.multi_dim.append(statistic)

    # ------------------------------------------------------------------
    @property
    def num_one_dim(self) -> int:
        return sum(len(counts) for counts in self.one_dim)

    @property
    def num_multi_dim(self) -> int:
        return len(self.multi_dim)

    @property
    def num_statistics(self) -> int:
        """``k`` — total number of statistics."""
        return self.num_one_dim + self.num_multi_dim

    def attribute_pairs(self) -> set[tuple[int, ...]]:
        """Distinct multi-dimensional attribute sets (``B_a`` of them)."""
        return {statistic.positions for statistic in self.multi_dim}

    def verify_against(self, relation: Relation, tolerance: float = 0.0) -> None:
        """Check that every statistic matches the data it claims to
        describe (used by tests and dataset builders)."""
        for pos in range(self.schema.num_attributes):
            observed = relation.marginal(pos).astype(float)
            for index, expected in enumerate(self.one_dim[pos]):
                if abs(observed[index] - expected) > tolerance:
                    raise StatisticError(
                        f"1D statistic mismatch at attribute {pos}, value "
                        f"{index}: asserted {expected:g}, observed {observed[index]:g}"
                    )
        for statistic in self.multi_dim:
            observed = statistic.measure(relation)
            if abs(observed - statistic.value) > tolerance:
                raise StatisticError(
                    f"multi-dim statistic mismatch: {statistic!r} observed {observed}"
                )

    def __repr__(self):
        return (
            f"StatisticSet(n={self.total}, one_dim={self.num_one_dim}, "
            f"multi_dim={self.num_multi_dim})"
        )
