"""2D statistic selection heuristics (Sec 4.3): LARGE, ZERO, COMPOSITE.

Each heuristic takes the true 2D contingency table of an attribute pair
and a budget ``Bs`` and returns :class:`~repro.stats.statistic.Statistic`
objects — point statistics for LARGE/ZERO, disjoint range rectangles
for COMPOSITE.
"""

from __future__ import annotations

import numpy as np

from repro.data.relation import Relation
from repro.errors import BudgetError
from repro.stats.kdtree import composite_rectangles
from repro.stats.statistic import Statistic, range_statistic_2d

#: Heuristic names accepted by :func:`select_pair_statistics`.
HEURISTICS = ("large", "zero", "composite")


def large_single_cell(
    relation: Relation, attr_a, attr_b, budget: int
) -> list[Statistic]:
    """LARGE SINGLE CELL: the ``Bs`` most popular (u1, u2) cells as
    point statistics."""
    counts = relation.contingency(attr_a, attr_b)
    budget = _check_budget(budget, counts.size)
    order = np.argsort(counts, axis=None, kind="stable")[::-1][:budget]
    return _cells_to_statistics(relation, attr_a, attr_b, counts, order)


def zero_single_cell(
    relation: Relation, attr_a, attr_b, budget: int, seed: int = 0
) -> list[Statistic]:
    """ZERO SINGLE CELL: up to ``Bs`` empty cells (count 0) as point
    statistics; remaining budget is filled with the most popular cells
    as in LARGE.  Empty cells are sampled uniformly with ``seed`` when
    there are more than the budget."""
    counts = relation.contingency(attr_a, attr_b)
    budget = _check_budget(budget, counts.size)
    zero_cells = np.flatnonzero(counts.ravel() == 0)
    rng = np.random.default_rng(seed)
    if zero_cells.size > budget:
        chosen = rng.choice(zero_cells, size=budget, replace=False)
    else:
        chosen = zero_cells
    statistics = _cells_to_statistics(relation, attr_a, attr_b, counts, chosen)
    remaining = budget - len(statistics)
    if remaining > 0:
        nonzero_order = np.argsort(counts, axis=None, kind="stable")[::-1]
        nonzero_order = nonzero_order[counts.ravel()[nonzero_order] > 0]
        statistics.extend(
            _cells_to_statistics(
                relation, attr_a, attr_b, counts, nonzero_order[:remaining]
            )
        )
    return statistics


def composite(
    relation: Relation, attr_a, attr_b, budget: int
) -> list[Statistic]:
    """COMPOSITE: partition the pair grid into ``Bs`` disjoint
    rectangles with the modified KD-tree and emit one range statistic
    per rectangle."""
    counts = relation.contingency(attr_a, attr_b)
    _check_budget(budget, counts.size)
    statistics = []
    for rect in composite_rectangles(counts, budget):
        (a_lo, a_hi), (b_lo, b_hi) = rect.ranges
        statistics.append(
            range_statistic_2d(
                relation.schema,
                attr_a,
                (a_lo, a_hi),
                attr_b,
                (b_lo, b_hi),
                rect.count,
            )
        )
    return statistics


def select_pair_statistics(
    relation: Relation,
    attr_a,
    attr_b,
    budget: int,
    heuristic: str = "composite",
    seed: int = 0,
) -> list[Statistic]:
    """Dispatch to one of the three heuristics by name."""
    if heuristic == "large":
        return large_single_cell(relation, attr_a, attr_b, budget)
    if heuristic == "zero":
        return zero_single_cell(relation, attr_a, attr_b, budget, seed=seed)
    if heuristic == "composite":
        return composite(relation, attr_a, attr_b, budget)
    raise BudgetError(
        f"unknown heuristic {heuristic!r}; expected one of {HEURISTICS}"
    )


def _check_budget(budget: int, num_cells: int) -> int:
    if budget < 1:
        raise BudgetError(f"per-pair budget must be >= 1, got {budget}")
    return min(budget, num_cells)


def _cells_to_statistics(relation, attr_a, attr_b, counts, flat_cells):
    size_b = counts.shape[1]
    statistics = []
    for flat in np.asarray(flat_cells, dtype=np.int64).tolist():
        u1, u2 = divmod(flat, size_b)
        statistics.append(
            range_statistic_2d(
                relation.schema,
                attr_a,
                (u1, u1),
                attr_b,
                (u2, u2),
                float(counts[u1, u2]),
            )
        )
    return statistics
