"""Attribute correlation measures for statistic selection (Sec 4.3).

The paper checks "the chi-squared coefficient" to decide whether a pair
is worth a 2D statistic and ranks pairs by correlation strength.  We
implement the chi-squared statistic and its normalized form, Cramér's
V, which is comparable across pairs with different domain sizes.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.data.relation import Relation


def chi_squared(table: np.ndarray) -> float:
    """Pearson chi-squared statistic of a contingency table.

    Cells whose expected count is zero (an empty marginal row/column)
    contribute nothing.
    """
    table = np.asarray(table, dtype=float)
    total = table.sum()
    if total <= 0:
        return 0.0
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / total
    mask = expected > 0
    diff = table[mask] - expected[mask]
    return float((diff * diff / expected[mask]).sum())


def cramers_v(table: np.ndarray, bias_corrected: bool = True) -> float:
    """Cramér's V in ``[0, 1]``; 0 = independent, 1 = perfectly
    associated.

    With ``bias_corrected`` (the default) the Bergsma small-sample
    correction is applied: under independence the raw statistic has
    expectation ``≈ sqrt(df / (n·(k−1)))``, which for wide tables (e.g.
    307×54) swamps genuine weak associations; the correction subtracts
    that floor so independent pairs score ≈ 0.
    """
    table = np.asarray(table, dtype=float)
    total = table.sum()
    if total <= 0:
        return 0.0
    # Drop empty rows/columns: they carry no association information
    # and would inflate the normalizing dimension.
    table = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
    rows, cols = table.shape
    if min(rows, cols) < 2:
        return 0.0
    chi2 = chi_squared(table)
    if not bias_corrected:
        return float(np.sqrt(chi2 / (total * (min(rows, cols) - 1))))
    phi2 = chi2 / total
    phi2_corrected = max(0.0, phi2 - (rows - 1) * (cols - 1) / (total - 1))
    rows_corrected = rows - (rows - 1) ** 2 / (total - 1)
    cols_corrected = cols - (cols - 1) ** 2 / (total - 1)
    k = min(rows_corrected, cols_corrected) - 1.0
    if k <= 0:
        return 0.0
    return float(np.sqrt(phi2_corrected / k))


def pair_correlations(
    relation: Relation, attrs: list | None = None
) -> list[tuple[tuple[int, int], float]]:
    """Cramér's V for every attribute pair, sorted most-correlated first.

    Parameters
    ----------
    relation:
        The data.
    attrs:
        Optional subset of attributes (names or positions) to restrict
        the pair enumeration to.

    Returns
    -------
    list of ``((pos_a, pos_b), v)`` with ``pos_a < pos_b``.
    """
    schema = relation.schema
    if attrs is None:
        positions = list(range(schema.num_attributes))
    else:
        positions = sorted({schema.position(attr) for attr in attrs})
    scored = []
    for pos_a, pos_b in itertools.combinations(positions, 2):
        table = relation.contingency(pos_a, pos_b)
        scored.append(((pos_a, pos_b), cramers_v(table)))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


def is_nearly_uniform_pair(table: np.ndarray, threshold: float = 0.05) -> bool:
    """Paper's footnote-5 check: a pair is "uniform" (not worth a 2D
    statistic) when its chi-squared coefficient is close to 0.  We use
    Cramér's V below ``threshold`` as the scale-free version."""
    return cramers_v(table) < threshold
