"""Statistic model and selection: predicates, 1D/2D statistics,
correlation ranking, and the LARGE / ZERO / COMPOSITE heuristics."""

from repro.stats.correlation import (
    chi_squared,
    cramers_v,
    is_nearly_uniform_pair,
    pair_correlations,
)
from repro.stats.heuristics import (
    HEURISTICS,
    composite,
    large_single_cell,
    select_pair_statistics,
    zero_single_cell,
)
from repro.stats.kdtree import KDRectangle, best_split, composite_rectangles
from repro.stats.onedim import one_dim_counts, one_dim_statistics
from repro.stats.predicates import (
    TRUE,
    Conjunction,
    Predicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
    conjunction_from_masks,
)
from repro.stats.selection import (
    build_statistic_set,
    choose_pairs_by_correlation,
    choose_pairs_by_cover,
    select_statistics,
)
from repro.stats.statistic import (
    Statistic,
    StatisticSet,
    point_statistic,
    range_statistic_2d,
)

__all__ = [
    "HEURISTICS",
    "TRUE",
    "Conjunction",
    "KDRectangle",
    "Predicate",
    "RangePredicate",
    "SetPredicate",
    "Statistic",
    "StatisticSet",
    "TruePredicate",
    "best_split",
    "build_statistic_set",
    "chi_squared",
    "choose_pairs_by_correlation",
    "choose_pairs_by_cover",
    "composite",
    "composite_rectangles",
    "conjunction_from_masks",
    "cramers_v",
    "is_nearly_uniform_pair",
    "large_single_cell",
    "one_dim_counts",
    "one_dim_statistics",
    "pair_correlations",
    "point_statistic",
    "range_statistic_2d",
    "select_pair_statistics",
    "select_statistics",
    "zero_single_cell",
]
