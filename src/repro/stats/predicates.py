"""Per-attribute predicates and their conjunctions.

The paper's model (Sec 4.1, Eq. 16) restricts every statistic and every
query to a conjunction ``π = ρ_1 ∧ ... ∧ ρ_m`` with one predicate per
attribute (``ρ_i ≡ true`` when the attribute is unconstrained).  All
predicates operate on dense domain indices; label translation happens
at the query front-end.

Every predicate exposes:

* ``mask(size)`` — boolean vector over the domain (``True`` = passes),
* ``is_true`` — whether it is the trivial predicate,
* interval accessors for range predicates (the compression needs them).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.schema import Schema
from repro.errors import StatisticError


class Predicate:
    """Abstract per-attribute predicate over domain indices."""

    is_true = False

    def mask(self, size: int) -> np.ndarray:
        raise NotImplementedError

    def matches(self, index: int) -> bool:
        raise NotImplementedError


class TruePredicate(Predicate):
    """``ρ ≡ true`` — the attribute is unconstrained."""

    is_true = True

    def mask(self, size: int) -> np.ndarray:
        return np.ones(size, dtype=bool)

    def matches(self, index: int) -> bool:
        return True

    def __eq__(self, other):
        return isinstance(other, TruePredicate)

    def __hash__(self):
        return hash("TruePredicate")

    def __repr__(self):
        return "true"


#: Shared trivial predicate instance.
TRUE = TruePredicate()


class RangePredicate(Predicate):
    """``A ∈ [low, high]`` over dense indices, both ends inclusive.

    Point predicates are ranges with ``low == high``; the compression
    assumptions of Sec 4.1 (every ``ρ_ij`` is a range) are therefore
    satisfied by construction.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: int, high: int):
        if low > high:
            raise StatisticError(f"empty range [{low}, {high}]")
        if low < 0:
            raise StatisticError(f"range lower bound must be >= 0, got {low}")
        self.low = int(low)
        self.high = int(high)

    @classmethod
    def point(cls, index: int) -> "RangePredicate":
        return cls(index, index)

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    def mask(self, size: int) -> np.ndarray:
        out = np.zeros(size, dtype=bool)
        out[self.low : self.high + 1] = True
        return out

    def matches(self, index: int) -> bool:
        return self.low <= index <= self.high

    def intersect(self, other: "RangePredicate") -> "RangePredicate | None":
        """Intersection as a range, or ``None`` when empty."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return RangePredicate(low, high)

    def contains_range(self, other: "RangePredicate") -> bool:
        return self.low <= other.low and other.high <= self.high

    def width(self) -> int:
        return self.high - self.low + 1

    def __eq__(self, other):
        if not isinstance(other, RangePredicate):
            return NotImplemented
        return (self.low, self.high) == (other.low, other.high)

    def __hash__(self):
        return hash((self.low, self.high))

    def __repr__(self):
        if self.is_point:
            return f"=[{self.low}]"
        return f"in[{self.low},{self.high}]"


class SetPredicate(Predicate):
    """``A ∈ {v1, v2, ...}`` over dense indices.

    Used only by the *query* side (e.g. SQL ``IN`` lists); statistics
    are restricted to ranges per the paper's assumptions.
    """

    __slots__ = ("indices",)

    def __init__(self, indices: Iterable[int]):
        indices = frozenset(int(index) for index in indices)
        if not indices:
            raise StatisticError("empty set predicate")
        if min(indices) < 0:
            raise StatisticError("set predicate indices must be >= 0")
        self.indices = indices

    def mask(self, size: int) -> np.ndarray:
        out = np.zeros(size, dtype=bool)
        out[list(self.indices)] = True
        return out

    def matches(self, index: int) -> bool:
        return index in self.indices

    def __eq__(self, other):
        if not isinstance(other, SetPredicate):
            return NotImplemented
        return self.indices == other.indices

    def __hash__(self):
        return hash(self.indices)

    def __repr__(self):
        return f"in{{{','.join(map(str, sorted(self.indices)))}}}"


class Conjunction:
    """``π = ∧_i ρ_i`` — a per-attribute conjunction over a schema.

    Attributes not mentioned are unconstrained.  Immutable.
    """

    __slots__ = ("schema", "_predicates")

    def __init__(self, schema: Schema, predicates: Mapping | None = None):
        self.schema = schema
        resolved: dict[int, Predicate] = {}
        for attr, predicate in (predicates or {}).items():
            pos = schema.position(attr)
            if not isinstance(predicate, Predicate):
                raise StatisticError(
                    f"predicate for attribute {attr!r} must be a Predicate, "
                    f"got {type(predicate).__name__}"
                )
            if not predicate.is_true:
                resolved[pos] = predicate
        self._predicates = resolved

    @property
    def constrained_positions(self) -> list[int]:
        """Positions with a non-trivial predicate, sorted."""
        return sorted(self._predicates)

    def predicate_at(self, pos: int) -> Predicate:
        return self._predicates.get(pos, TRUE)

    def attribute_masks(self) -> dict[int, np.ndarray]:
        """Masks for the constrained attributes only."""
        return {
            pos: predicate.mask(self.schema.domain(pos).size)
            for pos, predicate in self._predicates.items()
        }

    def matches_tuple(self, indices) -> bool:
        """Does a full tuple of domain indices satisfy the conjunction?"""
        return all(
            predicate.matches(indices[pos])
            for pos, predicate in self._predicates.items()
        )

    def is_trivial(self) -> bool:
        return not self._predicates

    def __eq__(self, other):
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self.schema == other.schema and self._predicates == other._predicates

    def __hash__(self):
        return hash((self.schema, tuple(sorted(self._predicates.items(), key=lambda kv: kv[0]))))

    def __repr__(self):
        if not self._predicates:
            return "Conjunction(true)"
        names = self.schema.attribute_names
        parts = " AND ".join(
            f"{names[pos]}{self._predicates[pos]!r}"
            for pos in self.constrained_positions
        )
        return f"Conjunction({parts})"


def conjunction_from_masks(schema: Schema, masks: Mapping) -> Conjunction:
    """Build a conjunction from per-attribute boolean masks, choosing
    the tightest predicate class (point/range/set) for each mask."""
    predicates: dict[int, Predicate] = {}
    for attr, mask in masks.items():
        pos = schema.position(attr)
        mask = np.asarray(mask, dtype=bool)
        hits = np.flatnonzero(mask)
        if hits.size == 0:
            raise StatisticError(
                f"mask for {schema.attribute_names[pos]!r} selects nothing"
            )
        if hits.size == mask.size:
            continue
        if hits[-1] - hits[0] + 1 == hits.size:
            predicates[pos] = RangePredicate(int(hits[0]), int(hits[-1]))
        else:
            predicates[pos] = SetPredicate(hits.tolist())
    return Conjunction(schema, predicates)
