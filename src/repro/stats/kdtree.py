"""COMPOSITE statistic selection: a modified KD-tree (Sec 4.3, Fig 2a).

The method partitions the 2D value grid ``D_a × D_b`` into ``Bs``
disjoint rectangles.  Unlike a traditional KD-tree, which splits on the
median, each split picks the position that minimizes the *sum of
squared deviations from the per-side mean* ("lowest sum squared average
value difference"), so the tree tracks the true cell counts as closely
as possible.  Split dimensions alternate with depth, falling back to
the other dimension when the preferred one has width 1.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.errors import BudgetError


class KDRectangle:
    """A leaf rectangle ``[a_lo, a_hi] × [b_lo, b_hi]`` (inclusive)."""

    __slots__ = ("a_lo", "a_hi", "b_lo", "b_hi", "depth", "count", "sse")

    def __init__(self, a_lo, a_hi, b_lo, b_hi, depth, count, sse):
        self.a_lo = a_lo
        self.a_hi = a_hi
        self.b_lo = b_lo
        self.b_hi = b_hi
        self.depth = depth
        self.count = count
        self.sse = sse

    @property
    def ranges(self) -> tuple[tuple[int, int], tuple[int, int]]:
        return (self.a_lo, self.a_hi), (self.b_lo, self.b_hi)

    def num_cells(self) -> int:
        return (self.a_hi - self.a_lo + 1) * (self.b_hi - self.b_lo + 1)

    def __repr__(self):
        return (
            f"KDRectangle([{self.a_lo},{self.a_hi}]x[{self.b_lo},{self.b_hi}], "
            f"count={self.count:g})"
        )


def region_sse(region: np.ndarray) -> float:
    """Sum of squared deviations of cell counts from the region mean."""
    if region.size == 0:
        return 0.0
    flat = region.astype(float).ravel()
    mean = flat.mean()
    return float(((flat - mean) ** 2).sum())


def best_split(region: np.ndarray, axis: int) -> tuple[int, float] | None:
    """Best split position along ``axis`` for a count matrix.

    Returns ``(offset, combined_sse)`` where the left part covers
    ``[0..offset]`` along the axis, or ``None`` when the axis has width
    1.  The combined SSE is the sum of the two halves' SSEs — the
    quantity the paper's modified KD-tree minimizes.
    """
    if axis == 1:
        region = region.T
    width = region.shape[0]
    if width < 2:
        return None
    flat = region.astype(float)
    # Row aggregates let us evaluate every split in O(width) after an
    # O(cells) prefix pass.
    row_sum = flat.sum(axis=1)
    row_sq = (flat * flat).sum(axis=1)
    row_cells = flat.shape[1]
    prefix_sum = np.cumsum(row_sum)
    prefix_sq = np.cumsum(row_sq)
    total_sum = prefix_sum[-1]
    total_sq = prefix_sq[-1]
    offsets = np.arange(width - 1)
    left_cells = (offsets + 1) * row_cells
    right_cells = (width - offsets - 1) * row_cells
    left_sum = prefix_sum[offsets]
    right_sum = total_sum - left_sum
    left_sq = prefix_sq[offsets]
    right_sq = total_sq - left_sq
    # SSE = Σx² − (Σx)²/cells for each side.
    sse = (
        left_sq
        - left_sum * left_sum / left_cells
        + right_sq
        - right_sum * right_sum / right_cells
    )
    best = int(np.argmin(sse))
    return best, float(sse[best])


def composite_rectangles(
    counts: np.ndarray, budget: int
) -> list[KDRectangle]:
    """Partition a 2D count grid into at most ``budget`` rectangles.

    Splitting is greedy: the leaf with the largest internal SSE is
    refined first, so the budget concentrates where the uniformity
    assumption is most wrong.  Returns the final leaves.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2:
        raise BudgetError("composite selection needs a 2D count grid")
    if budget < 1:
        raise BudgetError(f"budget must be >= 1, got {budget}")

    root = KDRectangle(
        0,
        counts.shape[0] - 1,
        0,
        counts.shape[1] - 1,
        depth=0,
        count=float(counts.sum()),
        sse=region_sse(counts),
    )
    # Heap orders leaves by -SSE; tie-break by an insertion counter so
    # the heap never compares KDRectangle objects.
    counter = itertools.count()
    heap: list[tuple[float, int, KDRectangle]] = [(-root.sse, next(counter), root)]
    leaves: list[KDRectangle] = []

    while heap and len(heap) + len(leaves) < budget:
        neg_sse, _, leaf = heapq.heappop(heap)
        if -neg_sse <= 0.0:
            # Perfectly uniform region — nothing to gain by splitting.
            leaves.append(leaf)
            continue
        region = counts[leaf.a_lo : leaf.a_hi + 1, leaf.b_lo : leaf.b_hi + 1]
        children = _split_leaf(leaf, region)
        if children is None:
            leaves.append(leaf)
            continue
        for child in children:
            heapq.heappush(heap, (-child.sse, next(counter), child))

    leaves.extend(leaf for _, _, leaf in heap)
    return leaves


def _split_leaf(leaf: KDRectangle, region: np.ndarray):
    """Split one leaf along its preferred (alternating) axis, falling
    back to the other axis; ``None`` when the leaf is a single cell."""
    preferred = leaf.depth % 2
    for axis in (preferred, 1 - preferred):
        result = best_split(region, axis)
        if result is None:
            continue
        offset, _ = result
        if axis == 0:
            cut = leaf.a_lo + offset
            bounds = [
                (leaf.a_lo, cut, leaf.b_lo, leaf.b_hi),
                (cut + 1, leaf.a_hi, leaf.b_lo, leaf.b_hi),
            ]
        else:
            cut = leaf.b_lo + offset
            bounds = [
                (leaf.a_lo, leaf.a_hi, leaf.b_lo, cut),
                (leaf.a_lo, leaf.a_hi, cut + 1, leaf.b_hi),
            ]
        children = []
        for a_lo, a_hi, b_lo, b_hi in bounds:
            sub = region[
                a_lo - leaf.a_lo : a_hi - leaf.a_lo + 1,
                b_lo - leaf.b_lo : b_hi - leaf.b_lo + 1,
            ]
            children.append(
                KDRectangle(
                    a_lo,
                    a_hi,
                    b_lo,
                    b_hi,
                    depth=leaf.depth + 1,
                    count=float(sub.sum()),
                    sse=region_sse(sub),
                )
            )
        return children
    return None
