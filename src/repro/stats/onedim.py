"""Complete 1D statistics (Sec 3.1).

For every attribute ``A_i`` and every value ``v`` in its active domain,
Φ contains one point statistic ``A_i = v`` whose value is the marginal
count.  Overcompleteness — the per-attribute statistics summing to
``n`` — is what lets the polynomial be written as ``Σ_{j∈J_i} α_j P_j``
(Eq. 7) and drives both the compression and the optimized query
answering.
"""

from __future__ import annotations

import numpy as np

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import StatisticError
from repro.stats.statistic import Statistic, point_statistic


def one_dim_counts(relation: Relation) -> list[np.ndarray]:
    """Marginal counts per attribute — the 1D statistic values."""
    return [
        relation.marginal(pos)
        for pos in range(relation.schema.num_attributes)
    ]


def one_dim_statistics(relation: Relation) -> list[Statistic]:
    """The complete 1D statistics as explicit :class:`Statistic`
    objects (one per attribute value), in (attribute, value) order."""
    statistics = []
    for pos in range(relation.schema.num_attributes):
        marginal = relation.marginal(pos)
        for index, count in enumerate(marginal.tolist()):
            statistics.append(
                point_statistic(relation.schema, pos, index, float(count))
            )
    return statistics


def check_overcomplete(schema: Schema, one_dim, total: int) -> None:
    """Validate the overcompleteness invariant ``Σ_{j∈J_i} s_j = n``
    for every attribute."""
    for pos, counts in enumerate(one_dim):
        observed = float(np.asarray(counts, dtype=float).sum())
        if abs(observed - total) > 1e-6 * max(total, 1):
            raise StatisticError(
                f"attribute {schema.attribute_names[pos]!r}: 1D statistics "
                f"sum to {observed:g}, expected {total}"
            )
