"""Attribute-pair selection under a budget ``B = Ba × Bs`` (Sec 4.3).

Two strategies from the paper:

* **correlation** — greedily take the most-correlated non-uniform
  pairs, requiring each new pair to contribute at least one attribute
  not already covered by a previously chosen (more correlated) pair.
* **cover** — prefer pairs that extend the set of covered attributes
  (the paper's example: given BC, AB, CD, AD ranked by correlation and
  ``Ba = 2``, correlation picks {BC, AB} while cover picks {AB, CD}).

The evaluation (Sec 6.4) concludes *cover* gives more precise answers
for the same budget; both are available.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.relation import Relation
from repro.errors import BudgetError
from repro.stats.correlation import is_nearly_uniform_pair, pair_correlations
from repro.stats.heuristics import select_pair_statistics
from repro.stats.statistic import Statistic, StatisticSet


def choose_pairs_by_correlation(
    ranked_pairs: Sequence[tuple[tuple[int, int], float]],
    num_pairs: int,
) -> list[tuple[int, int]]:
    """Correlation-first choice: walk pairs from most to least
    correlated, keeping a pair if it has at least one attribute not in
    any previously kept pair."""
    if num_pairs < 1:
        raise BudgetError(f"num_pairs must be >= 1, got {num_pairs}")
    chosen: list[tuple[int, int]] = []
    covered: set[int] = set()
    for pair, _ in ranked_pairs:
        if len(chosen) == num_pairs:
            break
        if not covered or not set(pair) <= covered:
            chosen.append(pair)
            covered.update(pair)
    return chosen


def choose_pairs_by_cover(
    ranked_pairs: Sequence[tuple[tuple[int, int], float]],
    num_pairs: int,
) -> list[tuple[int, int]]:
    """Cover-first choice: at each step prefer the pair adding the most
    uncovered attributes, breaking ties by correlation rank."""
    if num_pairs < 1:
        raise BudgetError(f"num_pairs must be >= 1, got {num_pairs}")
    remaining = list(ranked_pairs)
    chosen: list[tuple[int, int]] = []
    covered: set[int] = set()
    while remaining and len(chosen) < num_pairs:
        best_index = None
        best_gain = -1
        for index, (pair, _) in enumerate(remaining):
            gain = len(set(pair) - covered)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        pair, _ = remaining.pop(best_index)
        chosen.append(pair)
        covered.update(pair)
    return chosen


def select_statistics(
    relation: Relation,
    budget: int,
    num_pairs: int,
    strategy: str = "cover",
    heuristic: str = "composite",
    exclude_attrs: Sequence = (),
    uniform_threshold: float = 0.05,
    seed: int = 0,
) -> list[Statistic]:
    """End-to-end statistic selection.

    Ranks attribute pairs by Cramér's V, drops nearly uniform pairs,
    chooses ``num_pairs`` of them with the given strategy, splits the
    budget evenly (``Bs = B // Ba``), and runs the per-pair heuristic.

    Parameters
    ----------
    exclude_attrs:
        Attributes never used in 2D statistics (the paper excludes
        ``fl_date`` because it is uniform).
    """
    if budget < num_pairs:
        raise BudgetError(
            f"budget {budget} cannot fund {num_pairs} pairs with >= 1 "
            "statistic each"
        )
    schema = relation.schema
    excluded = {schema.position(attr) for attr in exclude_attrs}
    candidates = [
        pos for pos in range(schema.num_attributes) if pos not in excluded
    ]
    ranked = pair_correlations(relation, candidates)
    ranked = [
        (pair, score)
        for pair, score in ranked
        if not is_nearly_uniform_pair(
            relation.contingency(*pair), uniform_threshold
        )
    ]
    if not ranked:
        return []
    if strategy == "correlation":
        pairs = choose_pairs_by_correlation(ranked, num_pairs)
    elif strategy == "cover":
        pairs = choose_pairs_by_cover(ranked, num_pairs)
    else:
        raise BudgetError(
            f"unknown strategy {strategy!r}; expected 'correlation' or 'cover'"
        )
    per_pair = budget // max(len(pairs), 1)
    statistics: list[Statistic] = []
    for pair in pairs:
        statistics.extend(
            select_pair_statistics(
                relation, pair[0], pair[1], per_pair, heuristic, seed=seed
            )
        )
    return statistics


def build_statistic_set(
    relation: Relation,
    budget: int = 0,
    num_pairs: int = 0,
    pairs: Sequence[tuple] | None = None,
    per_pair_budget: int | None = None,
    strategy: str = "cover",
    heuristic: str = "composite",
    exclude_attrs: Sequence = (),
    seed: int = 0,
) -> StatisticSet:
    """Build a complete :class:`StatisticSet` from data.

    Either give explicit ``pairs`` (attribute name/position pairs) with
    a ``per_pair_budget`` — the paper's Fig. 4 configurations — or a
    global ``budget``/``num_pairs`` for automatic selection.
    """
    multi_dim: list[Statistic] = []
    if pairs is not None:
        if per_pair_budget is None:
            if budget and len(pairs):
                per_pair_budget = budget // len(pairs)
            else:
                raise BudgetError("explicit pairs need a per_pair_budget or budget")
        for attr_a, attr_b in pairs:
            multi_dim.extend(
                select_pair_statistics(
                    relation, attr_a, attr_b, per_pair_budget, heuristic, seed=seed
                )
            )
    elif budget and num_pairs:
        multi_dim = select_statistics(
            relation,
            budget,
            num_pairs,
            strategy=strategy,
            heuristic=heuristic,
            exclude_attrs=exclude_attrs,
            seed=seed,
        )
    return StatisticSet.from_relation(relation, multi_dim)
