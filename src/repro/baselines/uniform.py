"""Uniform sampling baseline (the paper's ``Uni``, Sec 6.2).

A simple random sample without replacement; every sampled row carries
weight ``n / sample_size``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sampling import WeightedSampleBackend
from repro.data.relation import Relation
from repro.errors import ReproError


def uniform_sample(
    relation: Relation,
    fraction: float | None = None,
    size: int | None = None,
    seed: int = 0,
    name: str = "Uni",
) -> WeightedSampleBackend:
    """Draw a uniform sample of ``fraction`` (e.g. 0.01 for the paper's
    1% samples) or an absolute ``size``."""
    total = relation.num_rows
    if total == 0:
        raise ReproError("cannot sample an empty relation")
    if (fraction is None) == (size is None):
        raise ReproError("give exactly one of fraction or size")
    if size is None:
        if not 0 < fraction <= 1:
            raise ReproError(f"fraction must be in (0, 1], got {fraction}")
        size = max(1, int(round(fraction * total)))
    if not 0 < size <= total:
        raise ReproError(f"sample size must be in [1, {total}], got {size}")
    rng = np.random.default_rng(seed)
    rows = rng.choice(total, size=size, replace=False)
    sample = relation.sample_rows(np.sort(rows))
    weights = np.full(size, total / size, dtype=float)
    return WeightedSampleBackend(sample, weights, name=name)
