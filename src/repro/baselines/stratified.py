"""Stratified sampling baseline (the paper's ``Strat1``–``Strat4``).

Strata are the distinct value combinations of a chosen attribute set
(the paper stratifies on the same attribute pairs its summaries use for
2D statistics).  Allocation follows the BlinkDB-style house allocation:
every stratum receives up to ``cap`` rows, where ``cap`` is the largest
value whose total stays within the sample budget — small strata are
fully kept (rare groups survive), large strata are capped.  Weights are
``stratum_size / rows_kept``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.sampling import WeightedSampleBackend
from repro.data.relation import Relation
from repro.errors import ReproError


def _house_allocation_cap(sizes: np.ndarray, budget: int) -> int:
    """Largest per-stratum cap whose Σ min(size, cap) ≤ budget."""
    low, high = 1, int(sizes.max())
    best = 1
    while low <= high:
        mid = (low + high) // 2
        used = int(np.minimum(sizes, mid).sum())
        if used <= budget:
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return best


def stratified_sample(
    relation: Relation,
    attrs: Sequence,
    fraction: float | None = None,
    size: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> WeightedSampleBackend:
    """Stratified sample over the given attributes.

    Parameters
    ----------
    attrs:
        Stratification attributes (names or positions), typically an
        attribute pair.
    fraction / size:
        Total sample budget (exactly one must be given).
    """
    total = relation.num_rows
    if total == 0:
        raise ReproError("cannot sample an empty relation")
    if (fraction is None) == (size is None):
        raise ReproError("give exactly one of fraction or size")
    if size is None:
        if not 0 < fraction <= 1:
            raise ReproError(f"fraction must be in (0, 1], got {fraction}")
        size = max(1, int(round(fraction * total)))
    if not 0 < size <= total:
        raise ReproError(f"sample size must be in [1, {total}], got {size}")

    positions = [relation.schema.position(attr) for attr in attrs]
    if not positions:
        raise ReproError("stratified sampling needs at least one attribute")

    sizes_per_pos = [relation.schema.domain(pos).size for pos in positions]
    flat = np.zeros(total, dtype=np.int64)
    for pos, domain_size in zip(positions, sizes_per_pos):
        flat = flat * domain_size + relation.column(pos)
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    boundaries = np.flatnonzero(np.diff(flat_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [total]])
    stratum_sizes = ends - starts

    cap = _house_allocation_cap(stratum_sizes, size)
    rng = np.random.default_rng(seed)
    chosen_rows: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        stratum = order[start:end]
        keep = min(cap, stratum.shape[0])
        if keep == stratum.shape[0]:
            picked = stratum
        else:
            picked = rng.choice(stratum, size=keep, replace=False)
        chosen_rows.append(picked)
        weights.append(np.full(keep, stratum.shape[0] / keep, dtype=float))

    rows = np.concatenate(chosen_rows)
    weight = np.concatenate(weights)
    sorter = np.argsort(rows)
    sample = relation.sample_rows(rows[sorter])
    if name is None:
        names = [relation.schema.attribute_names[pos] for pos in positions]
        name = "Strat(" + ",".join(names) + ")"
    return WeightedSampleBackend(sample, weight[sorter], name=name)
