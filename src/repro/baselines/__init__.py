"""Baselines the paper compares against: exact execution, uniform
sampling, and stratified sampling."""

from repro.baselines.exact import ExactBackend
from repro.baselines.sampling import WeightedSampleBackend
from repro.baselines.stratified import stratified_sample
from repro.baselines.uniform import uniform_sample

__all__ = [
    "ExactBackend",
    "WeightedSampleBackend",
    "stratified_sample",
    "uniform_sample",
]
