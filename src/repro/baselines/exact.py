"""Exact query execution — the ground truth every method is scored
against."""

from __future__ import annotations

from typing import Sequence

from repro.api.backend import Backend
from repro.data.relation import Relation
from repro.stats.predicates import Conjunction


class ExactBackend(Backend):
    """Answers counting queries by scanning the full relation."""

    supports_sum = True
    is_exact = True

    def __init__(self, relation: Relation):
        self.relation = relation
        self.schema = relation.schema
        self.name = "exact"

    def count(self, predicate: Conjunction) -> float:
        return float(self.relation.count_where(predicate.attribute_masks()))

    def sum_values(self, attr, weights, predicate: Conjunction | None) -> float:
        """Exact ``SUM(w(attr))`` under a conjunction."""
        import numpy as np

        pos = self.schema.position(attr)
        weights = np.asarray(weights, dtype=float)
        if predicate is not None and not predicate.is_trivial():
            keep = self.relation.select_mask(predicate.attribute_masks())
        else:
            keep = np.ones(self.relation.num_rows, dtype=bool)
        return float(weights[self.relation.column(pos)[keep]].sum())

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        relation = self.relation
        if predicate is not None and not predicate.is_trivial():
            relation = relation.filter(predicate.attribute_masks())
        positions = [self.schema.position(attr) for attr in attrs]
        domains = [self.schema.domain(pos) for pos in positions]
        raw = relation.group_by_counts(positions)
        return {
            tuple(
                domain.label_of(index) for domain, index in zip(domains, key)
            ): float(count)
            for key, count in raw.items()
        }

    def __repr__(self):
        return f"ExactBackend(n={self.relation.num_rows})"
