"""Shared machinery for sampling baselines: weighted sample backends.

A sample is a sub-relation plus one Horvitz–Thompson weight per sampled
row (``weight = 1 / inclusion probability``).  Counting queries sum the
weights of matching rows, which makes uniform and stratified estimators
the same code path with different weight constructions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.backend import Backend
from repro.data.relation import Relation
from repro.errors import ReproError
from repro.stats.predicates import Conjunction


class WeightedSampleBackend(Backend):
    """A materialized sample with per-row weights."""

    supports_sum = True
    is_exact = False

    def __init__(self, sample: Relation, weights: np.ndarray, name: str = "sample"):
        weights = np.asarray(weights, dtype=float)
        if weights.shape[0] != sample.num_rows:
            raise ReproError("one weight per sampled row required")
        if weights.size and weights.min() <= 0:
            raise ReproError("sample weights must be positive")
        self.sample = sample
        self.weights = weights
        self.schema = sample.schema
        self.name = name

    @property
    def num_rows(self) -> int:
        return self.sample.num_rows

    def storage_bytes(self) -> int:
        """Approximate storage: 8-byte codes per cell plus the weights
        (how the evaluation compares sample size with summary size)."""
        return self.num_rows * (self.schema.num_attributes + 1) * 8

    # -- CountBackend interface -----------------------------------------
    def count(self, predicate: Conjunction) -> float:
        mask = self.sample.select_mask(predicate.attribute_masks())
        return float(self.weights[mask].sum())

    def sum_values(self, attr, value_weights, predicate: Conjunction | None) -> float:
        """Horvitz–Thompson ``SUM(w(attr))``: Σ row_weight · w(value)."""
        pos = self.schema.position(attr)
        value_weights = np.asarray(value_weights, dtype=float)
        if predicate is not None and not predicate.is_trivial():
            keep = self.sample.select_mask(predicate.attribute_masks())
        else:
            keep = np.ones(self.num_rows, dtype=bool)
        values = value_weights[self.sample.column(pos)[keep]]
        return float((self.weights[keep] * values).sum())

    def group_counts(
        self, attrs: Sequence[str], predicate: Conjunction | None
    ) -> dict[tuple, float]:
        positions = [self.schema.position(attr) for attr in attrs]
        domains = [self.schema.domain(pos) for pos in positions]
        if predicate is not None and not predicate.is_trivial():
            keep = self.sample.select_mask(predicate.attribute_masks())
        else:
            keep = np.ones(self.num_rows, dtype=bool)
        if not keep.any():
            return {}
        sizes = [domain.size for domain in domains]
        flat = np.zeros(self.num_rows, dtype=np.int64)
        for pos, size in zip(positions, sizes):
            flat = flat * size + self.sample.column(pos)
        flat = flat[keep]
        weights = self.weights[keep]
        order = np.argsort(flat, kind="stable")
        flat = flat[order]
        weights = weights[order]
        boundaries = np.flatnonzero(np.diff(flat)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [flat.shape[0]]])
        result: dict[tuple, float] = {}
        for start, end in zip(starts.tolist(), ends.tolist()):
            key_flat = int(flat[start])
            key = []
            for size in reversed(sizes):
                key.append(key_flat % size)
                key_flat //= size
            labels = tuple(
                domain.label_of(index)
                for domain, index in zip(domains, reversed(key))
            )
            result[labels] = float(weights[start:end].sum())
        return result

    def __repr__(self):
        return f"WeightedSampleBackend({self.name!r}, rows={self.num_rows})"
