"""Synthetic datasets reproducing the paper's evaluation data
structure (see DESIGN.md §5 for the substitution rationale)."""

from repro.datasets.flights import (
    FlightsDataset,
    STATE_CODES,
    flights_restricted,
    generate_flights,
)
from repro.datasets.particles import (
    PARTICLE_TYPES,
    ParticlesDataset,
    generate_particles,
)

__all__ = [
    "FlightsDataset",
    "PARTICLE_TYPES",
    "ParticlesDataset",
    "STATE_CODES",
    "flights_restricted",
    "generate_flights",
    "generate_particles",
]
