"""Synthetic N-body particle snapshots (substitute for the 210 GB
ChaNGa astronomy simulation of Sec 6.1/6.3).

The relation is ``Particles(density, mass, x, y, z, grp, type,
snapshot)`` with the Fig. 3 domain sizes (58, 52, 21, 21, 21, 2, 3, 3).
The generator is a drifting Gaussian-mixture model that reproduces the
structure Fig. 7's experiments depend on:

* ``grp`` flags cluster membership; in-cluster particles have much
  higher density — the strong (density, grp) correlation the paper's
  stratified baseline exploits;
* positions cluster around mixture centers that drift between the
  three snapshots, so (x, y), (x, z), (y, z) are correlated;
* ``type`` (gas / dark / star) has cluster-dependent frequencies and
  determines the mass scale, correlating (mass, type) and
  (density, mass).

Each snapshot contributes ``rows_per_snapshot`` rows; Fig. 7's scaling
experiment selects the one-, two-, and three-snapshot prefixes.
"""

from __future__ import annotations

import numpy as np

from repro.data.binning import EquiWidthBinner
from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError

NUM_DENSITY_BUCKETS = 58
NUM_MASS_BUCKETS = 52
NUM_POSITION_BUCKETS = 21
NUM_SNAPSHOTS = 3

PARTICLE_TYPES = ["gas", "dark", "star"]

#: Mixture configuration.
_NUM_CLUSTERS = 12
_CLUSTER_FRACTION = 0.55
_CLUSTER_SPREAD = 0.035
_DRIFT_SCALE = 0.05

#: Mass scale (log-space mean, std) per particle type.
_MASS_PARAMS = {"gas": (0.0, 0.35), "dark": (2.2, 0.4), "star": (1.1, 0.5)}

#: Type mixture inside and outside clusters.
_TYPE_PROBS_CLUSTER = np.asarray([0.25, 0.45, 0.30])
_TYPE_PROBS_FIELD = np.asarray([0.45, 0.50, 0.05])


class ParticlesDataset:
    """Generated particle snapshots with snapshot-prefix selection."""

    def __init__(self, relation: Relation, rows_per_snapshot: int):
        self.relation = relation
        self.rows_per_snapshot = rows_per_snapshot

    def snapshots(self, count: int) -> Relation:
        """Relation restricted to the first ``count`` snapshots (the
        Fig. 7 subsets of growing size)."""
        if not 1 <= count <= NUM_SNAPSHOTS:
            raise ReproError(
                f"snapshot count must be in [1, {NUM_SNAPSHOTS}], got {count}"
            )
        pos = self.relation.schema.position("snapshot")
        mask = np.zeros(NUM_SNAPSHOTS, dtype=bool)
        mask[:count] = True
        return self.relation.filter({pos: mask})


def generate_particles(
    rows_per_snapshot: int = 100_000, seed: int = 11
) -> ParticlesDataset:
    """Generate all three snapshots."""
    if rows_per_snapshot < 1:
        raise ReproError("rows_per_snapshot must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15, 0.85, size=(_NUM_CLUSTERS, 3))
    cluster_weights = rng.dirichlet(np.full(_NUM_CLUSTERS, 1.2))

    columns = {
        name: [] for name in ("density", "mass", "x", "y", "z", "grp", "type", "snap")
    }
    for snapshot in range(NUM_SNAPSHOTS):
        drift = rng.normal(0.0, _DRIFT_SCALE, size=centers.shape)
        centers = np.clip(centers + drift, 0.05, 0.95)
        snap = _generate_snapshot(rng, centers, cluster_weights, rows_per_snapshot)
        for name, values in snap.items():
            columns[name].append(values)
        columns["snap"].append(np.full(rows_per_snapshot, snapshot, dtype=np.int64))

    raw = {name: np.concatenate(parts) for name, parts in columns.items()}

    density_binner = EquiWidthBinner(
        "density", 0.0, float(raw["density"].max()) + 1e-6, NUM_DENSITY_BUCKETS
    )
    mass_binner = EquiWidthBinner(
        "mass", 0.0, float(raw["mass"].max()) + 1e-6, NUM_MASS_BUCKETS
    )
    position_binners = {
        axis: EquiWidthBinner(axis, 0.0, 1.0, NUM_POSITION_BUCKETS)
        for axis in ("x", "y", "z")
    }

    schema = Schema(
        [
            density_binner.domain,
            mass_binner.domain,
            position_binners["x"].domain,
            position_binners["y"].domain,
            position_binners["z"].domain,
            Domain("grp", [0, 1]),
            Domain("type", PARTICLE_TYPES),
            Domain("snapshot", list(range(NUM_SNAPSHOTS))),
        ]
    )
    relation = Relation(
        schema,
        [
            density_binner.bin_values(raw["density"]),
            mass_binner.bin_values(raw["mass"]),
            position_binners["x"].bin_values(raw["x"]),
            position_binners["y"].bin_values(raw["y"]),
            position_binners["z"].bin_values(raw["z"]),
            raw["grp"],
            raw["type"],
            raw["snap"],
        ],
    )
    return ParticlesDataset(relation, rows_per_snapshot)


def _generate_snapshot(rng, centers, cluster_weights, num_rows):
    in_cluster = rng.random(num_rows) < _CLUSTER_FRACTION
    num_clustered = int(in_cluster.sum())

    positions = rng.uniform(0.0, 1.0, size=(num_rows, 3))
    assignment = rng.choice(_NUM_CLUSTERS, size=num_clustered, p=cluster_weights)
    positions[in_cluster] = np.clip(
        centers[assignment] + rng.normal(0.0, _CLUSTER_SPREAD, (num_clustered, 3)),
        0.0,
        1.0,
    )

    # Density: log-normal, boosted inside clusters and near centers.
    log_density = rng.normal(0.6, 0.5, num_rows)
    log_density[in_cluster] += rng.normal(2.3, 0.6, num_clustered)
    density = np.exp(log_density)

    # Types: different mixtures inside and outside clusters.
    types = np.empty(num_rows, dtype=np.int64)
    types[in_cluster] = rng.choice(3, size=num_clustered, p=_TYPE_PROBS_CLUSTER)
    types[~in_cluster] = rng.choice(
        3, size=num_rows - num_clustered, p=_TYPE_PROBS_FIELD
    )

    # Mass: type-dependent log-normal.
    mass = np.empty(num_rows, dtype=float)
    for type_index, type_name in enumerate(PARTICLE_TYPES):
        rows = types == type_index
        mean, std = _MASS_PARAMS[type_name]
        mass[rows] = np.exp(rng.normal(mean, std, int(rows.sum())))

    return {
        "density": density,
        "mass": mass,
        "x": positions[:, 0],
        "y": positions[:, 1],
        "z": positions[:, 2],
        "grp": in_cluster.astype(np.int64),
        "type": types,
    }
