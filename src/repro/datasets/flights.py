"""Synthetic US-flights dataset (substitute for the 5 GB BTS dump).

The paper's evaluation (Sec 6.1) uses flights with attributes
``(fl_date, origin, dest, fl_time, distance)`` at two granularities:

* **FlightsCoarse** — origin/dest are states (54 values),
* **FlightsFine** — origin/dest are cities binned to the top-2 per
  state plus ``'Other'`` (147 values).

and the Fig. 3 domain sizes: 307 dates, 62 flight-time buckets, 81
distance buckets.  This generator reproduces the *structure* the
experiments rely on:

* a synthetic geography: every state has planar coordinates, so route
  distance is a deterministic function of (origin, dest) — making
  pairs (origin, distance), (dest, distance), (origin, dest) strongly
  correlated, like the real data;
* flight time ≈ distance / speed + taxi overhead + noise — the paper's
  most correlated pair 3 (fl_time, distance);
* Zipf-skewed state and route popularity — heavy hitters, light
  hitters, and plenty of empty cells;
* uniform flight dates — the attribute the paper deliberately leaves
  out of 2D statistics.

The substitution preserves the comparative behaviour of the methods
(see DESIGN.md §5); absolute counts differ from the BTS data.
"""

from __future__ import annotations

import numpy as np

from repro.data.binning import EquiWidthBinner, TopKGroupBinner
from repro.data.domain import Domain, integer_domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError

#: 50 states + DC + 3 territories = 54 location values (Fig. 3).
STATE_CODES = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
    "DC", "PR", "VI", "GU",
]

NUM_DATES = 307
NUM_TIME_BUCKETS = 62
NUM_DISTANCE_BUCKETS = 81

#: Cruise speed and overhead used to derive flight time from distance.
_SPEED_MILES_PER_MIN = 7.5
_OVERHEAD_MIN = 35.0

#: States with a single airport city (keeps the fine domain at
#: 39·3 + 15·2 = 147 values, matching Fig. 3).
_NUM_SINGLE_CITY_STATES = 15


class FlightsDataset:
    """Generated flights with both granularities and their binners."""

    def __init__(
        self,
        coarse: Relation,
        fine: Relation,
        time_binner: EquiWidthBinner,
        distance_binner: EquiWidthBinner,
        city_binner: TopKGroupBinner,
    ):
        self.coarse = coarse
        self.fine = fine
        self.time_binner = time_binner
        self.distance_binner = distance_binner
        self.city_binner = city_binner

    @property
    def num_rows(self) -> int:
        return self.coarse.num_rows


def generate_flights(num_rows: int = 200_000, seed: int = 7) -> FlightsDataset:
    """Generate the synthetic flights data at both granularities."""
    if num_rows < 1:
        raise ReproError("num_rows must be positive")
    rng = np.random.default_rng(seed)
    num_states = len(STATE_CODES)

    # Synthetic geography: coordinates in miles over a 2800 x 1500 box.
    coords = np.column_stack(
        [rng.uniform(0, 2800, num_states), rng.uniform(0, 1500, num_states)]
    )
    # State popularity: Zipf-like with random permutation of ranks.
    ranks = rng.permutation(num_states) + 1
    popularity = 1.0 / ranks**1.1
    popularity /= popularity.sum()

    # Route gravity: popularity product damped by distance, no self loops.
    pairwise = np.sqrt(
        ((coords[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2)
    )
    gravity = np.outer(popularity, popularity) / (1.0 + (pairwise / 450.0) ** 2)
    np.fill_diagonal(gravity, 0.0)
    route_probs = (gravity / gravity.sum()).ravel()

    routes = rng.choice(route_probs.size, size=num_rows, p=route_probs)
    origin_state = (routes // num_states).astype(np.int64)
    dest_state = (routes % num_states).astype(np.int64)

    # Distance: geography plus jitter for airport placement.
    raw_distance = pairwise[origin_state, dest_state]
    raw_distance = raw_distance + rng.normal(0.0, 25.0, num_rows)
    raw_distance = np.clip(raw_distance, 30.0, None)

    # Flight time: linear in distance plus noise (pair 3's correlation).
    raw_time = (
        raw_distance / _SPEED_MILES_PER_MIN
        + _OVERHEAD_MIN
        + rng.normal(0.0, 12.0, num_rows)
    )
    raw_time = np.clip(raw_time, 20.0, None)

    # Dates: uniform over the 307 binned days.
    fl_date = rng.integers(0, NUM_DATES, num_rows)

    distance_binner = EquiWidthBinner(
        "distance", 0.0, float(raw_distance.max()) + 1.0, NUM_DISTANCE_BUCKETS
    )
    time_binner = EquiWidthBinner(
        "fl_time", 0.0, float(raw_time.max()) + 1.0, NUM_TIME_BUCKETS
    )
    distance = distance_binner.bin_values(raw_distance)
    fl_time = time_binner.bin_values(raw_time)

    coarse_schema = Schema(
        [
            integer_domain("fl_date", NUM_DATES),
            Domain("origin_state", STATE_CODES),
            Domain("dest_state", STATE_CODES),
            time_binner.domain,
            distance_binner.domain,
        ]
    )
    coarse = Relation(
        coarse_schema,
        [fl_date, origin_state, dest_state, fl_time, distance],
    )

    fine, city_binner = _build_fine(
        rng, origin_state, dest_state, fl_date, fl_time, distance,
        time_binner, distance_binner,
    )
    return FlightsDataset(coarse, fine, time_binner, distance_binner, city_binner)


def _build_fine(
    rng, origin_state, dest_state, fl_date, fl_time, distance,
    time_binner, distance_binner,
):
    """Assign cities within states and apply the top-2 + 'Other' binning."""
    num_states = len(STATE_CODES)
    num_rows = origin_state.shape[0]

    # City inventory: the first _NUM_SINGLE_CITY_STATES states in a
    # shuffled order have one city; the rest have 4-8 with Zipf
    # popularity inside the state.
    shuffled = rng.permutation(num_states)
    single_city = set(shuffled[:_NUM_SINGLE_CITY_STATES].tolist())
    city_names: dict[int, list[str]] = {}
    city_probs: dict[int, np.ndarray] = {}
    for state in range(num_states):
        count = 1 if state in single_city else int(rng.integers(4, 9))
        city_names[state] = [
            f"{STATE_CODES[state]}-City{index}" for index in range(count)
        ]
        weights = 1.0 / (np.arange(count) + 1.0) ** 1.3
        city_probs[state] = weights / weights.sum()

    def assign_cities(states: np.ndarray) -> list[str]:
        cities = np.empty(num_rows, dtype=object)
        for state in range(num_states):
            rows = np.flatnonzero(states == state)
            if rows.size == 0:
                continue
            picks = rng.choice(
                len(city_names[state]), size=rows.size, p=city_probs[state]
            )
            names = city_names[state]
            for row, pick in zip(rows.tolist(), picks.tolist()):
                cities[row] = names[pick]
        return cities.tolist()

    origin_city_raw = assign_cities(origin_state)
    dest_city_raw = assign_cities(dest_state)
    origin_groups = [STATE_CODES[state] for state in origin_state.tolist()]
    dest_groups = [STATE_CODES[state] for state in dest_state.tolist()]

    # One binner learned from the union of both endpoints so origin and
    # dest share the same city domain.
    city_binner = TopKGroupBinner(
        "city",
        origin_groups + dest_groups,
        origin_city_raw + dest_city_raw,
        k=2,
    )
    origin_city = city_binner.bin_rows(origin_groups, origin_city_raw)
    dest_city = city_binner.bin_rows(dest_groups, dest_city_raw)

    origin_domain = Domain("origin_city", city_binner.domain.labels)
    dest_domain = Domain("dest_city", city_binner.domain.labels)
    fine_schema = Schema(
        [
            integer_domain("fl_date", NUM_DATES),
            origin_domain,
            dest_domain,
            time_binner.domain,
            distance_binner.domain,
        ]
    )
    fine = Relation(
        fine_schema,
        [fl_date, origin_city, dest_city, fl_time, distance],
    )
    return fine, city_binner


def flights_restricted(dataset: FlightsDataset) -> Relation:
    """The Sec 4.3 experiment relation: flights restricted to
    ``(fl_date, fl_time, distance)``."""
    return dataset.coarse.project(["fl_date", "fl_time", "distance"])
