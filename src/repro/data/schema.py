"""Relation schemas: an ordered list of named, discrete attributes.

A :class:`Schema` is the shared vocabulary between the data layer, the
statistics layer, and the MaxEnt polynomial: attributes are addressed
by position (``0..m-1``) internally and by name at the API surface.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.data.domain import Domain
from repro.errors import SchemaError


class Schema:
    """Ordered collection of attribute :class:`Domain` objects.

    Parameters
    ----------
    domains:
        One domain per attribute, in attribute order.  Domain names
        must be unique.
    """

    __slots__ = ("_domains", "_position")

    def __init__(self, domains: Sequence[Domain]) -> None:
        domains = list(domains)
        if not domains:
            raise SchemaError("a schema needs at least one attribute")
        position: dict[str, int] = {}
        for pos, domain in enumerate(domains):
            if domain.name in position:
                raise SchemaError(f"duplicate attribute name {domain.name!r}")
            position[domain.name] = pos
        self._domains = domains
        self._position = position

    @property
    def num_attributes(self) -> int:
        """``m`` in the paper."""
        return len(self._domains)

    @property
    def attribute_names(self) -> list[str]:
        return [domain.name for domain in self._domains]

    @property
    def domains(self) -> list[Domain]:
        return list(self._domains)

    def domain(self, attr) -> Domain:
        """Domain of an attribute given by name or position."""
        return self._domains[self.position(attr)]

    def position(self, attr) -> int:
        """Dense position of an attribute given by name or position."""
        if isinstance(attr, int):
            if not 0 <= attr < len(self._domains):
                raise SchemaError(
                    f"attribute position {attr} out of range "
                    f"(schema has {len(self._domains)} attributes)"
                )
            return attr
        try:
            return self._position[attr]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {attr!r}; schema has "
                f"{self.attribute_names}"
            ) from None

    def sizes(self) -> list[int]:
        """Domain sizes ``[N_1, ..., N_m]``."""
        return [domain.size for domain in self._domains]

    def num_possible_tuples(self) -> int:
        """``|Tup| = Π N_i`` — size of the full cross product."""
        return math.prod(domain.size for domain in self._domains)

    def project(self, attrs: Sequence) -> "Schema":
        """Schema restricted to the given attributes (order preserved
        as given)."""
        return Schema([self.domain(attr) for attr in attrs])

    def __contains__(self, name) -> bool:
        return name in self._position

    def __eq__(self, other):
        if not isinstance(other, Schema):
            return NotImplemented
        return self._domains == other._domains

    def __hash__(self):
        return hash(tuple(self._domains))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{domain.name}[{domain.size}]" for domain in self._domains
        )
        return f"Schema({parts})"
