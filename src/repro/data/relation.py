"""Column-store relation substrate.

The evaluation needs a small but real analytic engine to (a) compute
the ground truth for every query, (b) extract statistics (1D marginals,
2D contingency tables), and (c) feed the sampling baselines.  A
:class:`Relation` stores one dense ``int64`` index column per attribute
(values are positions in the attribute's :class:`~repro.data.domain.Domain`),
which makes counting operations ``numpy.bincount`` calls rather than
Python loops.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.schema import Schema
from repro.errors import SchemaError


class Relation:
    """An ordered bag of tuples over a :class:`Schema`, stored columnar.

    Parameters
    ----------
    schema:
        The relation's schema.
    columns:
        One ``int64`` array of domain indices per attribute, all the
        same length.  Arrays are not copied; callers hand over
        ownership.
    """

    __slots__ = ("schema", "_columns")

    def __init__(self, schema: Schema, columns: Sequence[np.ndarray]):
        if len(columns) != schema.num_attributes:
            raise SchemaError(
                f"expected {schema.num_attributes} columns, got {len(columns)}"
            )
        length = None
        converted = []
        for pos, column in enumerate(columns):
            array = np.asarray(column, dtype=np.int64)
            if array.ndim != 1:
                raise SchemaError("columns must be one-dimensional arrays")
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise SchemaError("all columns must have the same length")
            size = schema.domain(pos).size
            if array.size and (array.min() < 0 or array.max() >= size):
                raise SchemaError(
                    f"column {schema.attribute_names[pos]!r} contains indices "
                    f"outside [0, {size})"
                )
            converted.append(array)
        self.schema = schema
        self._columns = converted

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Relation":
        """Build a relation from label rows (labels looked up per domain)."""
        domains = schema.domains
        materialized = [
            [domain.index_of(value) for domain, value in zip(domains, row)]
            for row in rows
        ]
        if materialized:
            matrix = np.asarray(materialized, dtype=np.int64)
            columns = [matrix[:, pos].copy() for pos in range(schema.num_attributes)]
        else:
            columns = [np.empty(0, dtype=np.int64) for _ in domains]
        return cls(schema, columns)

    @classmethod
    def from_index_rows(cls, schema: Schema, rows: np.ndarray) -> "Relation":
        """Build a relation from an ``(n, m)`` matrix of domain indices."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] != schema.num_attributes:
            raise SchemaError(
                f"expected an (n, {schema.num_attributes}) index matrix, "
                f"got shape {rows.shape}"
            )
        return cls(schema, [rows[:, pos].copy() for pos in range(rows.shape[1])])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Cardinality ``n``."""
        return int(self._columns[0].shape[0]) if self._columns else 0

    def __len__(self) -> int:
        return self.num_rows

    def column(self, attr) -> np.ndarray:
        """Index column of an attribute (no copy — treat as read-only)."""
        return self._columns[self.schema.position(attr)]

    def row_labels(self, row: int) -> tuple:
        """One tuple of labels, mainly for debugging and examples."""
        return tuple(
            domain.label_of(int(column[row]))
            for domain, column in zip(self.schema.domains, self._columns)
        )

    # ------------------------------------------------------------------
    # Relational operations used by the evaluation
    # ------------------------------------------------------------------
    def select_mask(self, masks: Mapping) -> np.ndarray:
        """Boolean row mask for a conjunction of per-attribute masks.

        ``masks`` maps attribute name/position to a boolean array of the
        attribute's domain size (``True`` = value passes).
        """
        keep = np.ones(self.num_rows, dtype=bool)
        for attr, value_mask in masks.items():
            pos = self.schema.position(attr)
            value_mask = np.asarray(value_mask, dtype=bool)
            if value_mask.shape[0] != self.schema.domain(pos).size:
                raise SchemaError(
                    f"mask for {self.schema.attribute_names[pos]!r} has wrong size"
                )
            keep &= value_mask[self._columns[pos]]
        return keep

    def count_where(self, masks: Mapping) -> int:
        """``|σ_π(I)|`` for a conjunctive per-attribute predicate."""
        return int(self.select_mask(masks).sum())

    def filter(self, masks: Mapping) -> "Relation":
        """New relation with only the rows passing ``masks``."""
        keep = self.select_mask(masks)
        return Relation(self.schema, [column[keep] for column in self._columns])

    def sample_rows(self, row_indices: np.ndarray) -> "Relation":
        """New relation restricted to the given row positions."""
        row_indices = np.asarray(row_indices, dtype=np.int64)
        return Relation(
            self.schema, [column[row_indices] for column in self._columns]
        )

    @classmethod
    def concat(cls, relations: Sequence["Relation"]) -> "Relation":
        """Row-wise concatenation of same-schema relations (bag union).

        The ingest layer's append primitive: base rows followed by the
        batch rows, in order.
        """
        if not relations:
            raise SchemaError("concat needs at least one relation")
        schema = relations[0].schema
        for relation in relations[1:]:
            if relation.schema != schema:
                raise SchemaError("concat needs relations over one schema")
        return cls(
            schema,
            [
                np.concatenate(
                    [relation._columns[pos] for relation in relations]
                )
                for pos in range(schema.num_attributes)
            ],
        )

    def marginal(self, attr) -> np.ndarray:
        """1D value counts for an attribute (length = domain size)."""
        pos = self.schema.position(attr)
        return np.bincount(
            self._columns[pos], minlength=self.schema.domain(pos).size
        )

    def contingency(self, attr_a, attr_b) -> np.ndarray:
        """2D contingency table of counts, shape ``(N_a, N_b)``."""
        pos_a = self.schema.position(attr_a)
        pos_b = self.schema.position(attr_b)
        size_a = self.schema.domain(pos_a).size
        size_b = self.schema.domain(pos_b).size
        flat = self._columns[pos_a] * size_b + self._columns[pos_b]
        counts = np.bincount(flat, minlength=size_a * size_b)
        return counts.reshape(size_a, size_b)

    def group_by_counts(self, attrs: Sequence) -> dict[tuple, int]:
        """Counts per distinct combination of the given attributes.

        Returns a dict from index tuples to counts; only non-empty
        groups appear.
        """
        positions = [self.schema.position(attr) for attr in attrs]
        if not positions:
            raise SchemaError("group_by_counts needs at least one attribute")
        sizes = [self.schema.domain(pos).size for pos in positions]
        flat = np.zeros(self.num_rows, dtype=np.int64)
        for pos, size in zip(positions, sizes):
            flat = flat * size + self._columns[pos]
        values, counts = np.unique(flat, return_counts=True)
        result: dict[tuple, int] = {}
        for value, count in zip(values.tolist(), counts.tolist()):
            key = []
            for size in reversed(sizes):
                key.append(value % size)
                value //= size
            result[tuple(reversed(key))] = count
        return result

    def project(self, attrs: Sequence) -> "Relation":
        """Relation restricted to the given attributes (bag semantics —
        duplicates are kept, matching the paper's restricted Flights
        relation of Sec 4.3)."""
        positions = [self.schema.position(attr) for attr in attrs]
        return Relation(
            self.schema.project(attrs),
            [self._columns[pos].copy() for pos in positions],
        )

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, n={self.num_rows})"
