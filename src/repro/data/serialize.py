"""Serialization of domains, schemas, and relations.

Labels are persisted with a small tag system so the non-JSON-native
kinds survive round trips: numeric :class:`~repro.data.binning.Bucket`
intervals and composite tuple labels (the top-k city binning).
Relations persist as a JSON schema next to an NPZ of index columns.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.binning import Bucket
from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import ReproError


def encode_label(label):
    """Tagged JSON form of one domain label."""
    if isinstance(label, Bucket):
        return {
            "t": "bucket",
            "lo": label.low,
            "hi": label.high,
            "cr": label.closed_right,
        }
    if isinstance(label, tuple):
        return {"t": "pair", "v": [encode_label(part) for part in label]}
    if isinstance(label, bool):
        return {"t": "bool", "v": label}
    if isinstance(label, (int, np.integer)):
        return {"t": "int", "v": int(label)}
    if isinstance(label, (float, np.floating)):
        return {"t": "float", "v": float(label)}
    if isinstance(label, str):
        return {"t": "str", "v": label}
    raise ReproError(f"cannot serialize domain label {label!r}")


def decode_label(encoded):
    """Inverse of :func:`encode_label`."""
    kind = encoded["t"]
    if kind == "bucket":
        return Bucket(encoded["lo"], encoded["hi"], encoded["cr"])
    if kind == "pair":
        return tuple(decode_label(part) for part in encoded["v"])
    if kind in ("int", "float", "str", "bool"):
        return encoded["v"]
    raise ReproError(f"unknown label tag {kind!r}")


def encode_schema(schema: Schema):
    return [
        {
            "name": domain.name,
            "labels": [encode_label(label) for label in domain.labels],
        }
        for domain in schema.domains
    ]


def decode_schema(encoded) -> Schema:
    return Schema(
        [
            Domain(entry["name"], [decode_label(label) for label in entry["labels"]])
            for entry in encoded
        ]
    )


def save_relation(relation: Relation, prefix) -> None:
    """Write ``<prefix>.schema.json`` + ``<prefix>.columns.npz``."""
    prefix = Path(prefix)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    prefix.with_suffix(".schema.json").write_text(
        json.dumps(encode_schema(relation.schema))
    )
    arrays = {
        f"col_{pos}": relation.column(pos)
        for pos in range(relation.schema.num_attributes)
    }
    np.savez_compressed(prefix.with_suffix(".columns.npz"), **arrays)


def load_relation(prefix) -> Relation:
    """Inverse of :func:`save_relation`."""
    prefix = Path(prefix)
    schema = decode_schema(
        json.loads(prefix.with_suffix(".schema.json").read_text())
    )
    with np.load(prefix.with_suffix(".columns.npz")) as arrays:
        columns = [
            arrays[f"col_{pos}"] for pos in range(schema.num_attributes)
        ]
    return Relation(schema, columns)
