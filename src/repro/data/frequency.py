"""Frequency vectors — the ``n^I`` view of an instance (paper Sec 3.1).

A frequency vector assigns a count to every possible tuple of the
schema's cross product.  It is only materializable for small schemas
(``|Tup| = Π N_i`` entries) and is used by the naive polynomial oracle
and by tests; large-schema code paths work from marginals and
contingency tables instead (:class:`~repro.data.relation.Relation`).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import SchemaError

#: Refuse to materialize cross products bigger than this; callers that
#: need more are using the wrong abstraction.
MAX_MATERIALIZED_TUPLES = 2_000_000


def tuple_index(schema: Schema, indices) -> int:
    """Row-major position of a tuple of per-attribute indices in ``Tup``."""
    sizes = schema.sizes()
    if len(indices) != len(sizes):
        raise SchemaError("tuple arity does not match schema")
    flat = 0
    for index, size in zip(indices, sizes):
        if not 0 <= index < size:
            raise SchemaError(f"index {index} out of domain range [0, {size})")
        flat = flat * size + index
    return flat


def unflatten_index(schema: Schema, flat: int) -> tuple[int, ...]:
    """Inverse of :func:`tuple_index`."""
    sizes = schema.sizes()
    out = []
    for size in reversed(sizes):
        out.append(flat % size)
        flat //= size
    return tuple(reversed(out))


def all_tuples(schema: Schema):
    """Iterate over all possible tuples (as index tuples) in row-major
    order — the enumeration of ``Tup`` used by the naive polynomial."""
    if schema.num_possible_tuples() > MAX_MATERIALIZED_TUPLES:
        raise SchemaError(
            "refusing to enumerate more than "
            f"{MAX_MATERIALIZED_TUPLES} possible tuples"
        )
    return itertools.product(*[range(size) for size in schema.sizes()])


def frequency_vector(relation: Relation) -> np.ndarray:
    """Dense frequency vector ``n^I`` of a relation (length ``|Tup|``)."""
    total = relation.schema.num_possible_tuples()
    if total > MAX_MATERIALIZED_TUPLES:
        raise SchemaError(
            "refusing to materialize a frequency vector with "
            f"{total} entries"
        )
    flat = np.zeros(relation.num_rows, dtype=np.int64)
    for pos, size in enumerate(relation.schema.sizes()):
        flat = flat * size + relation.column(pos)
    return np.bincount(flat, minlength=total)


def relation_from_frequency(schema: Schema, freq: np.ndarray) -> Relation:
    """Materialize *one* relation whose frequency vector is ``freq``.

    The instance-to-vector mapping is many-to-one (instances are
    ordered); this returns the canonical instance with tuples emitted
    in row-major ``Tup`` order.
    """
    freq = np.asarray(freq)
    if freq.shape[0] != schema.num_possible_tuples():
        raise SchemaError("frequency vector length does not match schema")
    if freq.size and freq.min() < 0:
        raise SchemaError("frequency vector must be non-negative")
    rows = np.repeat(np.arange(freq.shape[0], dtype=np.int64), freq.astype(np.int64))
    matrix = np.empty((rows.shape[0], schema.num_attributes), dtype=np.int64)
    remaining = rows
    for pos in range(schema.num_attributes - 1, -1, -1):
        size = schema.sizes()[pos]
        matrix[:, pos] = remaining % size
        remaining = remaining // size
    return Relation.from_index_rows(schema, matrix)
