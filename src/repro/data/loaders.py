"""Loading external data into discrete relations.

The paper's pipeline starts from a CSV dump (the BTS on-time flights
data): load, drop nulls, bin real-valued attributes into equi-width
buckets, and optionally fold high-cardinality categoricals with the
top-k-per-group scheme (Sec 6.1).  :func:`load_csv` reproduces that
pipeline for arbitrary CSVs driven by a per-column spec:

* :class:`CategoricalColumn` — distinct values become the domain
  (ordered by first appearance or sorted);
* :class:`NumericColumn` — equi-width buckets over the observed (or
  given) range;
* :class:`GroupedColumn` — top-k values per group column, rest folded
  into ``'Other'`` (the paper's city binning).

Rows with empty cells in any used column are dropped, matching the
paper's "remove null values".
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.binning import EquiWidthBinner, TopKGroupBinner
from repro.data.domain import Domain
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import DomainError, SchemaError


class CategoricalColumn:
    """Use the column's distinct strings as the domain."""

    def __init__(self, name: str, sort_labels: bool = True):
        self.name = name
        self.sort_labels = sort_labels

    def columns_used(self) -> list[str]:
        return [self.name]

    def build(self, rows: dict[str, list[str]]):
        values = rows[self.name]
        if self.sort_labels:
            labels = sorted(set(values))
        else:
            labels = list(dict.fromkeys(values))
        domain = Domain(self.name, labels)
        indices = np.asarray(domain.indices_of(values), dtype=np.int64)
        return domain, indices


class NumericColumn:
    """Parse floats and bin into equi-width buckets."""

    def __init__(
        self,
        name: str,
        num_buckets: int,
        low: float | None = None,
        high: float | None = None,
    ):
        if num_buckets < 1:
            raise DomainError("num_buckets must be >= 1")
        self.name = name
        self.num_buckets = num_buckets
        self.low = low
        self.high = high

    def columns_used(self) -> list[str]:
        return [self.name]

    def build(self, rows: dict[str, list[str]]):
        try:
            values = np.asarray([float(value) for value in rows[self.name]])
        except ValueError as error:
            raise DomainError(
                f"column {self.name!r} has a non-numeric value: {error}"
            ) from None
        low = self.low if self.low is not None else float(values.min())
        high = self.high if self.high is not None else float(values.max())
        if low == high:
            high = low + 1.0
        binner = EquiWidthBinner(self.name, low, high, self.num_buckets)
        return binner.domain, binner.bin_values(values)


class GroupedColumn:
    """Top-k values per group, rest folded (the paper's city binning)."""

    def __init__(self, name: str, group_column: str, k: int = 2):
        self.name = name
        self.group_column = group_column
        self.k = k

    def columns_used(self) -> list[str]:
        return [self.name, self.group_column]

    def build(self, rows: dict[str, list[str]]):
        groups = rows[self.group_column]
        values = rows[self.name]
        binner = TopKGroupBinner(self.name, groups, values, k=self.k)
        return binner.domain, binner.bin_rows(groups, values)


def load_csv(
    path,
    columns: Sequence,
    delimiter: str = ",",
    max_rows: int | None = None,
) -> Relation:
    """Load a CSV into a discrete :class:`Relation`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    columns:
        Column specs (``CategoricalColumn`` / ``NumericColumn`` /
        ``GroupedColumn``), in the order the relation's attributes
        should appear.
    max_rows:
        Optional row cap (after null filtering).
    """
    if not columns:
        raise SchemaError("need at least one column spec")
    needed: list[str] = []
    for spec in columns:
        for name in spec.columns_used():
            if name not in needed:
                needed.append(name)

    raw: dict[str, list[str]] = {name: [] for name in needed}
    kept = 0
    with open(Path(path), newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise SchemaError(f"{path} has no header row")
        missing = [name for name in needed if name not in reader.fieldnames]
        if missing:
            raise SchemaError(
                f"{path} is missing columns {missing}; header has "
                f"{reader.fieldnames}"
            )
        for row in reader:
            cells = [row[name] for name in needed]
            if any(cell is None or cell.strip() == "" for cell in cells):
                continue  # the paper drops null rows
            for name, cell in zip(needed, cells):
                raw[name].append(cell.strip())
            kept += 1
            if max_rows is not None and kept >= max_rows:
                break
    if kept == 0:
        raise SchemaError(f"{path} has no complete rows for {needed}")

    domains = []
    index_columns = []
    for spec in columns:
        domain, indices = spec.build(raw)
        domains.append(domain)
        index_columns.append(indices)
    return Relation(Schema(domains), index_columns)
