"""Active domains of attributes.

The MaxEnt model of the paper (Sec 3.1) treats every attribute as
discrete and ordered.  A :class:`Domain` maps between *labels* (what the
user sees: state codes, bucket intervals, ...) and dense integer
*indices* ``0..size-1`` (what the polynomial machinery uses).

Continuous attributes are supported through bucketization
(:mod:`repro.data.binning`); the resulting :class:`Domain` stores one
label per bucket.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import DomainError


class Domain:
    """An ordered active domain for one attribute.

    Parameters
    ----------
    name:
        Attribute name this domain belongs to.
    labels:
        Ordered sequence of distinct, hashable labels.  Position in the
        sequence is the integer index used throughout the model.
    """

    __slots__ = ("name", "_labels", "_index")

    def __init__(self, name: str, labels: Sequence) -> None:
        labels = list(labels)
        if not labels:
            raise DomainError(f"domain {name!r} must have at least one value")
        index = {}
        for pos, label in enumerate(labels):
            if label in index:
                raise DomainError(
                    f"domain {name!r} has duplicate label {label!r}"
                )
            index[label] = pos
        self.name = name
        self._labels = labels
        self._index = index

    @property
    def size(self) -> int:
        """Number of distinct values (``N_i`` in the paper)."""
        return len(self._labels)

    @property
    def labels(self) -> list:
        """All labels in index order (a copy; mutating it is safe)."""
        return list(self._labels)

    def index_of(self, label) -> int:
        """Return the dense index of ``label``.

        Raises :class:`DomainError` when the label is not part of the
        active domain.
        """
        try:
            return self._index[label]
        except KeyError:
            raise DomainError(
                f"value {label!r} is not in the active domain of "
                f"attribute {self.name!r}"
            ) from None

    def __contains__(self, label) -> bool:
        return label in self._index

    def label_of(self, index: int) -> object:
        """Return the label stored at ``index``."""
        if not 0 <= index < len(self._labels):
            raise DomainError(
                f"index {index} out of range for domain {self.name!r} "
                f"of size {self.size}"
            )
        return self._labels[index]

    def indices_of(self, labels: Iterable) -> list[int]:
        """Map an iterable of labels to their indices, preserving order."""
        return [self.index_of(label) for label in labels]

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self):
        return iter(self._labels)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self.name == other.name and self._labels == other._labels

    def __hash__(self):
        return hash((self.name, tuple(self._labels)))

    def __repr__(self) -> str:
        preview = ", ".join(repr(label) for label in self._labels[:4])
        if self.size > 4:
            preview += ", ..."
        return f"Domain({self.name!r}, size={self.size}, [{preview}])"


def integer_domain(name: str, size: int) -> Domain:
    """Build a domain whose labels are the integers ``0..size-1``.

    Convenient for synthetic data and for tests where the labels carry
    no meaning beyond their order.
    """
    if size <= 0:
        raise DomainError(f"domain {name!r} must have positive size, got {size}")
    return Domain(name, range(size))
