"""Data substrate: domains, binning, schemas, and the column-store
relation used for ground truth and statistic extraction."""

from repro.data.binning import Bucket, EquiWidthBinner, TopKGroupBinner
from repro.data.domain import Domain, integer_domain
from repro.data.loaders import (
    CategoricalColumn,
    GroupedColumn,
    NumericColumn,
    load_csv,
)
from repro.data.serialize import load_relation, save_relation
from repro.data.frequency import (
    all_tuples,
    frequency_vector,
    relation_from_frequency,
    tuple_index,
    unflatten_index,
)
from repro.data.relation import Relation
from repro.data.schema import Schema

__all__ = [
    "Bucket",
    "CategoricalColumn",
    "GroupedColumn",
    "NumericColumn",
    "Domain",
    "EquiWidthBinner",
    "Relation",
    "Schema",
    "TopKGroupBinner",
    "all_tuples",
    "frequency_vector",
    "integer_domain",
    "load_csv",
    "load_relation",
    "save_relation",
    "relation_from_frequency",
    "tuple_index",
    "unflatten_index",
]
