"""Bucketization strategies for continuous and high-cardinality attributes.

The paper (Sec 6.1) prepares its datasets by:

* binning real-valued attributes into **equi-width buckets**, and
* reducing city cardinality by keeping the **top-2 most popular cities
  per state** and folding the rest into an ``'Other'`` city
  (the *FlightsFine* relation).

Both strategies are implemented here.  A binner converts a raw numpy
column into dense bucket indices plus a :class:`~repro.data.domain.Domain`
whose labels describe the buckets, so downstream code never sees raw
values.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

import numpy as np

from repro.data.domain import Domain
from repro.errors import DomainError


class Bucket:
    """A half-open numeric interval ``[low, high)`` used as a bin label.

    The last bucket of an equi-width binning is closed on the right so
    the maximum value falls inside it.
    """

    __slots__ = ("low", "high", "closed_right")

    def __init__(self, low: float, high: float, closed_right: bool = False):
        if not low < high:
            raise DomainError(f"bucket bounds must satisfy low < high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)
        self.closed_right = bool(closed_right)

    def __contains__(self, value) -> bool:
        if self.closed_right:
            return self.low <= value <= self.high
        return self.low <= value < self.high

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.low + self.high)

    def __eq__(self, other):
        if not isinstance(other, Bucket):
            return NotImplemented
        return (self.low, self.high, self.closed_right) == (
            other.low, other.high, other.closed_right,
        )

    def __hash__(self):
        return hash((self.low, self.high, self.closed_right))

    def __repr__(self) -> str:
        bracket = "]" if self.closed_right else ")"
        return f"[{self.low:g}, {self.high:g}{bracket}"


class EquiWidthBinner:
    """Equi-width bucketizer over a numeric range.

    Parameters
    ----------
    name:
        Attribute name (used for the produced domain).
    low, high:
        Inclusive range of raw values covered by the buckets.
    num_buckets:
        Number of equal-width buckets (``N_i`` of the bucketized domain).
    """

    def __init__(self, name: str, low: float, high: float, num_buckets: int):
        if num_buckets <= 0:
            raise DomainError(f"num_buckets must be positive, got {num_buckets}")
        if not low < high:
            raise DomainError(f"binner range must satisfy low < high, got [{low}, {high}]")
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.num_buckets = int(num_buckets)
        self._width = (self.high - self.low) / self.num_buckets
        edges = self.low + self._width * np.arange(self.num_buckets + 1)
        edges[-1] = self.high
        self.edges = edges
        buckets = [
            Bucket(edges[i], edges[i + 1], closed_right=(i == self.num_buckets - 1))
            for i in range(self.num_buckets)
        ]
        self.domain = Domain(name, buckets)

    def bin_values(self, values: np.ndarray) -> np.ndarray:
        """Map raw numeric values to bucket indices.

        Values outside ``[low, high]`` raise :class:`DomainError`; the
        model has no bucket for them.
        """
        values = np.asarray(values, dtype=float)
        if values.size and (values.min() < self.low or values.max() > self.high):
            raise DomainError(
                f"values for {self.name!r} fall outside the binned range "
                f"[{self.low}, {self.high}]"
            )
        indices = np.floor((values - self.low) / self._width).astype(np.int64)
        # The maximum raw value lands exactly on the final edge; clamp it
        # into the last (right-closed) bucket.
        np.clip(indices, 0, self.num_buckets - 1, out=indices)
        return indices

    def bucket_of(self, value: float) -> int:
        """Bucket index for a single raw value."""
        return int(self.bin_values(np.asarray([value]))[0])


class TopKGroupBinner:
    """Keep the top-``k`` most frequent values per group; fold the rest.

    This reproduces the paper's city binning: "binning cities such that
    the two most popular cities in each state are separated and the
    remaining less popular cities are grouped into a city called
    'Other'".  Labels of kept values are ``(group, value)`` pairs and
    the folded label is ``(group, other_label)``.

    Parameters
    ----------
    name:
        Attribute name for the produced domain.
    groups, values:
        Parallel sequences: ``groups[r]`` is the group (state) of row
        ``r`` and ``values[r]`` the raw value (city).
    k:
        Number of most-popular values kept per group.
    other_label:
        Label used for folded values within each group.
    """

    def __init__(
        self,
        name: str,
        groups: Sequence,
        values: Sequence,
        k: int = 2,
        other_label: str = "Other",
    ):
        if k <= 0:
            raise DomainError(f"k must be positive, got {k}")
        if len(groups) != len(values):
            raise DomainError("groups and values must have equal length")
        self.name = name
        self.k = int(k)
        self.other_label = other_label

        counts: dict = defaultdict(Counter)
        for group, value in zip(groups, values):
            counts[group][value] += 1

        self._kept: dict = {}
        labels = []
        for group in sorted(counts, key=str):
            top = [value for value, _ in counts[group].most_common(self.k)]
            self._kept[group] = set(top)
            for value in sorted(top, key=str):
                labels.append((group, value))
            labels.append((group, other_label))
        self.domain = Domain(name, labels)

    def bin_pair(self, group, value):
        """Map one (group, value) pair to its domain label."""
        kept = self._kept.get(group)
        if kept is None:
            raise DomainError(f"unknown group {group!r} for attribute {self.name!r}")
        if value in kept:
            return (group, value)
        return (group, self.other_label)

    def bin_rows(self, groups: Sequence, values: Sequence) -> np.ndarray:
        """Map parallel (group, value) columns to dense domain indices."""
        out = np.empty(len(groups), dtype=np.int64)
        index_of = self.domain.index_of
        for row, (group, value) in enumerate(zip(groups, values)):
            out[row] = index_of(self.bin_pair(group, value))
        return out
