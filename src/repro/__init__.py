"""EntropyDB reproduction: probabilistic database summarization for
interactive data exploration (Orr, Balazinska, Suciu — VLDB 2017).

The public API centers on three steps:

1. load or generate a discrete :class:`~repro.data.relation.Relation`,
2. build an :class:`~repro.core.summary.EntropySummary` (choose 2D
   statistics, compress the polynomial, fit with Mirror Descent),
3. ask counting/group-by queries — via predicates or the SQL front-end
   in :mod:`repro.query`.

See ``examples/quickstart.py`` for a complete tour.
"""

from repro.core import (
    CompressedPolynomial,
    EntropySummary,
    InferenceEngine,
    MirrorDescentSolver,
    ModelParameters,
    NaivePolynomial,
    QueryEstimate,
    SolverReport,
)
from repro.data import (
    Bucket,
    Domain,
    EquiWidthBinner,
    Relation,
    Schema,
    TopKGroupBinner,
    integer_domain,
)
from repro.errors import (
    BudgetError,
    DomainError,
    QueryError,
    ReproError,
    SchemaError,
    SolverError,
    StatisticError,
)
from repro.stats import (
    Conjunction,
    RangePredicate,
    SetPredicate,
    Statistic,
    StatisticSet,
    build_statistic_set,
)

__version__ = "1.0.0"

__all__ = [
    "BudgetError",
    "Bucket",
    "CompressedPolynomial",
    "Conjunction",
    "Domain",
    "DomainError",
    "EntropySummary",
    "EquiWidthBinner",
    "InferenceEngine",
    "MirrorDescentSolver",
    "ModelParameters",
    "NaivePolynomial",
    "QueryError",
    "QueryEstimate",
    "RangePredicate",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "SetPredicate",
    "SolverError",
    "SolverReport",
    "Statistic",
    "StatisticError",
    "StatisticSet",
    "TopKGroupBinner",
    "build_statistic_set",
    "integer_domain",
    "__version__",
]
