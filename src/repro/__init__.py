"""EntropyDB reproduction: probabilistic database summarization for
interactive data exploration (Orr, Balazinska, Suciu — VLDB 2017).

The canonical public API lives in :mod:`repro.api` and is
session-oriented:

1. load or generate a discrete :class:`~repro.data.relation.Relation`,
2. fit a summary with the fluent :class:`~repro.api.SummaryBuilder`
   (choose 2D statistics, compress the polynomial, fit with Mirror
   Descent)::

       summary = (
           SummaryBuilder(relation)
           .pairs(("origin_state", "distance"))
           .per_pair_budget(150)
           .fit()
       )

3. open an :class:`~repro.api.Explorer` session and ask questions —
   chainable queries, plain SQL, or batched ``run_many()`` (one
   vectorized inference pass per batch)::

       ex = Explorer.attach(summary)
       ex.query().where(distance__ge=1000).group_by("origin_state") \\
         .order("desc").limit(10).run()

4. persist fitted models as named, versioned artifacts in a
   :class:`~repro.api.SummaryStore` and reopen them with
   ``Explorer.open(store, name)``.

Every estimation method — the exact relation, uniform/stratified
samples, MaxEnt summaries — implements the :class:`~repro.api.Backend`
ABC, so the same query text runs against any of them.  The lower-level
layers (``repro.core``, ``repro.query``, ``repro.stats``) remain
importable for tests and experiments; ``EntropySummary.build`` is
deprecated in favor of the builder.

See ``examples/quickstart.py`` for a complete tour.
"""

from repro.api import (
    Backend,
    Explorer,
    Query,
    SummaryBuilder,
    SummaryRecord,
    SummaryStore,
)
from repro.core import (
    CompressedPolynomial,
    EntropySummary,
    InferenceEngine,
    MirrorDescentSolver,
    ModelParameters,
    NaivePolynomial,
    QueryEstimate,
    SolverReport,
)
from repro.data import (
    Bucket,
    Domain,
    EquiWidthBinner,
    Relation,
    Schema,
    TopKGroupBinner,
    integer_domain,
)
from repro.errors import (
    BudgetError,
    DomainError,
    QueryError,
    ReproError,
    SchemaError,
    SolverError,
    StatisticError,
)
from repro.stats import (
    Conjunction,
    RangePredicate,
    SetPredicate,
    Statistic,
    StatisticSet,
    build_statistic_set,
)

__version__ = "1.1.0"

__all__ = [
    "Backend",
    "BudgetError",
    "Bucket",
    "CompressedPolynomial",
    "Conjunction",
    "Domain",
    "DomainError",
    "EntropySummary",
    "EquiWidthBinner",
    "Explorer",
    "InferenceEngine",
    "MirrorDescentSolver",
    "ModelParameters",
    "NaivePolynomial",
    "Query",
    "QueryError",
    "QueryEstimate",
    "RangePredicate",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "SetPredicate",
    "SolverError",
    "SolverReport",
    "Statistic",
    "StatisticError",
    "StatisticSet",
    "SummaryBuilder",
    "SummaryRecord",
    "SummaryStore",
    "TopKGroupBinner",
    "build_statistic_set",
    "integer_domain",
    "__version__",
]
