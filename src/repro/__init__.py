"""EntropyDB reproduction: probabilistic database summarization for
interactive data exploration (Orr, Balazinska, Suciu — VLDB 2017).

A *summary* is a maximum-entropy probabilistic model of one relation,
fitted to a budgeted set of 1D/2D statistics; counting queries are
answered in milliseconds by evaluating a compressed polynomial instead
of scanning data.  This package reproduces the paper's models and
experiments, then grows them into a small analytic system.

The canonical public API lives in :mod:`repro.api` and is
session-oriented:

1. load or generate a discrete :class:`~repro.data.relation.Relation`,
2. fit a summary with the fluent :class:`~repro.api.SummaryBuilder`
   (choose 2D statistics, compress the polynomial, fit with Mirror
   Descent)::

       summary = (
           SummaryBuilder(relation)
           .pairs(("origin_state", "distance"))
           .per_pair_budget(150)
           .fit()
       )

   Add ``.shards(4, by="origin_state")`` before ``fit()`` to partition
   the relation and fit one model per shard in parallel worker
   processes — queries evaluate the shards independently and merge
   (counts add, error bounds combine in quadrature), and shards whose
   partition cannot match the predicate are pruned.

3. open an :class:`~repro.api.Explorer` session and ask questions —
   chainable queries, plain SQL, or batched ``run_many()`` (one
   vectorized inference pass per batch, fanned across shards for
   sharded models)::

       ex = Explorer.attach(summary)
       ex.query().where(distance__ge=1000).group_by("origin_state") \\
         .order("desc").limit(10).run()

   Every query — from the Explorer, the SQL engine, the CLI, or the
   evaluation harness — flows through the :mod:`repro.plan` query
   planner: the WHERE clause normalizes to a canonical predicate
   (``BETWEEN 3 AND 7`` and ``x >= 3 AND x <= 7`` share one cache
   key, contradictions answer ``0`` without touching a backend), a
   cost/capability model routes it (exact scan vs summary vs sharded
   fan-out with pruning), and shared physical operators execute it.
   ``ex.explain(q)`` shows the three stages for any query.

4. persist fitted models — plain or sharded — as named, versioned
   artifacts in a :class:`~repro.api.SummaryStore` and reopen them
   with ``Explorer.open(store, name)``.

5. serve a stored model to many concurrent clients with
   :mod:`repro.serve` (``python -m repro serve``): an asyncio
   JSON-lines server with request coalescing (same-window queries
   flush as one vectorized pass, same-canonical-key queries share one
   execution), a process-wide TTL result cache keyed on the store
   version, admission control with ``Retry-After`` backpressure, and
   ``SIGHUP``/``reload`` hot version swaps.

6. keep the served model fresh with :mod:`repro.ingest`
   (``python -m repro ingest``): appended rows route to the shards
   whose value ranges they touch, only those shards delta-refit (each
   solver warm-started from its previous solution, bucket structure
   reused — ~1/N of a rebuild), the refreshed shard set publishes to
   the store as a child version with lineage metadata, and a server
   started with ``--watch`` hot-reloads it without dropping requests.
   Unseen labels widen the domains instead of forcing a rebuild.

Every estimation method — the exact relation, uniform/stratified
samples, single MaxEnt summaries, sharded summaries — implements the
:class:`~repro.api.Backend` ABC, so the same query text runs against
any of them.  The lower-level layers (``repro.core``, ``repro.query``,
``repro.stats``) remain importable for tests and experiments;
construct summaries with :class:`~repro.api.SummaryBuilder` (the old
``EntropySummary.build`` shim only warns and delegates to it).

Verify an installation with the tier-1 suite::

    PYTHONPATH=src python -m pytest -x -q

See ``README.md`` for a quickstart, ``docs/`` for the architecture and
API reference, and ``examples/quickstart.py`` /
``examples/sharded_exploration.py`` for complete tours.
"""

from repro.api import (
    Backend,
    Explorer,
    Query,
    SummaryBuilder,
    SummaryRecord,
    SummaryStore,
)
from repro.core import (
    CompressedPolynomial,
    EntropySummary,
    InferenceEngine,
    MergedEstimate,
    MirrorDescentSolver,
    ModelParameters,
    NaivePolynomial,
    QueryEstimate,
    ShardedSummary,
    SolverReport,
    partition_relation,
)
from repro.data import (
    Bucket,
    Domain,
    EquiWidthBinner,
    Relation,
    Schema,
    TopKGroupBinner,
    integer_domain,
)
from repro.errors import (
    BudgetError,
    DomainError,
    IngestError,
    QueryError,
    ReproError,
    SchemaError,
    SolverError,
    StatisticError,
)
from repro.stats import (
    Conjunction,
    RangePredicate,
    SetPredicate,
    Statistic,
    StatisticSet,
    build_statistic_set,
)

__version__ = "1.8.0"

__all__ = [
    "Backend",
    "BudgetError",
    "Bucket",
    "CompressedPolynomial",
    "Conjunction",
    "Domain",
    "DomainError",
    "EntropySummary",
    "EquiWidthBinner",
    "Explorer",
    "InferenceEngine",
    "IngestError",
    "MergedEstimate",
    "MirrorDescentSolver",
    "ModelParameters",
    "NaivePolynomial",
    "Query",
    "QueryError",
    "QueryEstimate",
    "RangePredicate",
    "Relation",
    "ReproError",
    "Schema",
    "SchemaError",
    "SetPredicate",
    "ShardedSummary",
    "SolverError",
    "SolverReport",
    "Statistic",
    "StatisticError",
    "StatisticSet",
    "SummaryBuilder",
    "SummaryRecord",
    "SummaryStore",
    "TopKGroupBinner",
    "build_statistic_set",
    "integer_domain",
    "partition_relation",
    "__version__",
]
