"""Workload builders for the accuracy experiments (Sec 6.2).

The paper's query template is::

    SELECT A1, ..., Am, COUNT(*) FROM R
    WHERE A1 = 'v1' AND ... AND Am = 'vm'

evaluated on three value populations over the chosen attributes:

* **heavy hitters** — the combinations with the largest true counts,
* **light hitters** — the smallest *non-zero* counts,
* **nonexistent / null values** — combinations with true count 0.

This module extracts those populations from the ground-truth data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.relation import Relation
from repro.errors import ReproError
from repro.stats.predicates import Conjunction, RangePredicate


class PointQuery:
    """One workload item: a point predicate and its true count."""

    __slots__ = ("attrs", "indices", "labels", "true_count")

    def __init__(self, attrs, indices, labels, true_count):
        self.attrs = attrs
        self.indices = indices
        self.labels = labels
        self.true_count = true_count

    def conjunction(self, schema) -> Conjunction:
        return Conjunction(
            schema,
            {
                attr: RangePredicate.point(index)
                for attr, index in zip(self.attrs, self.indices)
            },
        )

    def __repr__(self):
        pairs = ", ".join(
            f"{attr}={label!r}" for attr, label in zip(self.attrs, self.labels)
        )
        return f"PointQuery({pairs}; true={self.true_count:g})"


class Workload:
    """A named list of point queries over fixed attributes."""

    def __init__(self, kind: str, attrs: Sequence[str], queries: list[PointQuery]):
        self.kind = kind
        self.attrs = list(attrs)
        self.queries = queries

    def __len__(self):
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __repr__(self):
        return f"Workload({self.kind!r}, attrs={self.attrs}, n={len(self.queries)})"


def _sorted_groups(relation: Relation, attrs: Sequence) -> list[tuple[tuple, int]]:
    """Existing value combinations with counts, largest first; ties are
    broken by key so workloads are deterministic."""
    counts = relation.group_by_counts(attrs)
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def _to_queries(relation, attrs, items) -> list[PointQuery]:
    schema = relation.schema
    positions = [schema.position(attr) for attr in attrs]
    domains = [schema.domain(pos) for pos in positions]
    queries = []
    for indices, count in items:
        labels = tuple(
            domain.label_of(index) for domain, index in zip(domains, indices)
        )
        queries.append(PointQuery(positions, tuple(indices), labels, float(count)))
    return queries


def heavy_hitters(relation: Relation, attrs: Sequence, count: int) -> Workload:
    """The ``count`` most frequent value combinations."""
    groups = _sorted_groups(relation, attrs)
    return Workload("heavy", attrs, _to_queries(relation, attrs, groups[:count]))


def light_hitters(relation: Relation, attrs: Sequence, count: int) -> Workload:
    """The ``count`` least frequent combinations with non-zero count."""
    groups = [item for item in _sorted_groups(relation, attrs) if item[1] > 0]
    picked = groups[-count:] if count < len(groups) else groups
    return Workload("light", attrs, _to_queries(relation, attrs, picked))


def nonexistent_values(
    relation: Relation,
    attrs: Sequence,
    count: int,
    seed: int = 0,
    allow_fewer: bool = False,
) -> Workload:
    """``count`` random value combinations with true count 0.

    Raises :class:`ReproError` when the cross product has fewer than
    ``count`` empty cells, unless ``allow_fewer`` is set (then all
    available empty cells are returned — dense templates like
    (origin, dest) can have nearly full coverage).
    """
    schema = relation.schema
    positions = [schema.position(attr) for attr in attrs]
    sizes = [schema.domain(pos).size for pos in positions]
    total_cells = int(np.prod(sizes))
    existing = set(relation.group_by_counts(positions))
    num_empty = total_cells - len(existing)
    if num_empty < count:
        if not allow_fewer:
            raise ReproError(
                f"only {num_empty} empty cells exist over {attrs}; cannot "
                f"pick {count}"
            )
        count = num_empty
    if count == 0:
        return Workload("null", attrs, [])
    rng = np.random.default_rng(seed)
    chosen: list[tuple] = []
    seen: set[tuple] = set()
    # Rejection-sample when emptiness is abundant; otherwise enumerate.
    if num_empty >= 4 * count:
        while len(chosen) < count:
            candidate = tuple(int(rng.integers(0, size)) for size in sizes)
            if candidate in existing or candidate in seen:
                continue
            seen.add(candidate)
            chosen.append(candidate)
    else:
        empties = [
            _unflatten(flat, sizes)
            for flat in range(total_cells)
            if _unflatten(flat, sizes) not in existing
        ]
        picks = rng.choice(len(empties), size=count, replace=False)
        chosen = [empties[pick] for pick in picks.tolist()]
    items = [(indices, 0) for indices in chosen]
    return Workload("null", attrs, _to_queries(relation, attrs, items))


def _unflatten(flat: int, sizes) -> tuple:
    out = []
    for size in reversed(sizes):
        out.append(flat % size)
        flat //= size
    return tuple(reversed(out))


def standard_workloads(
    relation: Relation,
    attrs: Sequence,
    num_heavy: int = 100,
    num_light: int = 100,
    num_null: int = 200,
    seed: int = 0,
) -> dict[str, Workload]:
    """The paper's standard split: 100 heavy + 100 light + 200 null."""
    return {
        "heavy": heavy_hitters(relation, attrs, num_heavy),
        "light": light_hitters(relation, attrs, num_light),
        "null": nonexistent_values(relation, attrs, num_null, seed=seed),
    }
