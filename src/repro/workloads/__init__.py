"""Workload builders: heavy hitters, light hitters, nonexistent values."""

from repro.workloads.selection_queries import (
    PointQuery,
    Workload,
    heavy_hitters,
    light_hitters,
    nonexistent_values,
    standard_workloads,
)

__all__ = [
    "PointQuery",
    "Workload",
    "heavy_hitters",
    "light_hitters",
    "nonexistent_values",
    "standard_workloads",
]
